//! Time-sharded inverted-index log store — the OpenSearch stand-in.
//!
//! Records land in fixed-width time shards; each shard keeps its documents
//! plus an inverted index token → local doc offsets. Shards take a
//! `parking_lot::RwLock` each, so concurrent ingest threads writing to
//! different shards don't contend and queries proceed under read locks.
//!
//! Time sharding alone does not help the *live* path: a real-time stream
//! lands every record in the current hour, so N pipeline shards writing
//! concurrently would all serialize on one time shard's write lock. Each
//! time slot is therefore split into [`LogStore::with_lanes`] independent
//! **lanes** — one `RwLock<Shard>` each — and a pipeline shard passes its
//! own index to [`LogStore::insert_batch_affine`] so its batches take a
//! lane lock no other shard touches (store-shard affinity). Queries and
//! retention see the union of lanes; a single-lane store (the default) is
//! exactly the old layout.
//!
//! # Sealed columnar tier
//!
//! Verbatim storage is the scaling wall at millions-of-users traffic, so
//! hot shards **seal** into template-mined columnar segments
//! ([`crate::columnar::Segment`], DESIGN.md §6): automatically when a
//! lane shard reaches the [`LogStore::with_sealing`] document threshold,
//! or explicitly via [`LogStore::seal_before`] / [`LogStore::seal_all`]
//! (the hot-tier eviction path — records stay queryable, ~10–40×
//! smaller). Sealed rows remain visible to every query
//! ([`LogStore::scan`] decodes on demand), participate in
//! [`LogStore::len`] / [`LogStore::export_jsonl`], and are dropped by
//! [`LogStore::evict_before`] like hot rows. Template-native queries —
//! [`LogStore::count_by_template`], [`LogStore::variable_histogram`],
//! [`LogStore::template_scan`] — answer from segment dictionaries and
//! single variable columns without decompressing whole segments.
//!
//! # Lock order
//!
//! `shards` map → lane `Shard` → `sealed` map → (no lock) metrics.
//! Telemetry handles are only ever touched with no storage lock held,
//! except the coherence rule documented on
//! [`LogStore::attach_telemetry`].

use crate::columnar::Segment;
use crate::record::LogRecord;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use textproc::template::TemplateMiner;

/// Width of one time shard, seconds (hourly, like a rotating index).
pub const DEFAULT_SHARD_SECONDS: i64 = 3600;

#[derive(Debug, Default)]
struct Shard {
    docs: Vec<LogRecord>,
    /// token → offsets into `docs`, ascending.
    index: HashMap<String, Vec<u32>>,
}

impl Shard {
    fn insert(&mut self, record: LogRecord) {
        let offset = self.docs.len() as u32;
        // Stream tokens and look the index up by `&str`: a token String is
        // allocated only the first time a term is ever seen, not once per
        // occurrence. Indexing is on the hot ingest path in front of the
        // classifier, so per-token allocations dominate otherwise.
        let index = &mut self.index;
        textproc::Tokenizer::default()
            .tokenize_each(&record.message, |token| Self::post(index, token, offset));
        // Node and app are searchable terms too (Grafana-style filters).
        Self::post(index, &record.node, offset);
        Self::post(index, &record.app, offset);
        self.docs.push(record);
    }

    fn post(index: &mut HashMap<String, Vec<u32>>, token: &str, offset: u32) {
        if let Some(postings) = index.get_mut(token) {
            postings.push(offset);
        } else {
            index.insert(token.to_string(), vec![offset]);
        }
    }

    /// Offsets matching all `terms` (AND semantics); all offsets when
    /// `terms` is empty.
    fn matching(&self, terms: &[String]) -> Vec<u32> {
        if terms.is_empty() {
            return (0..self.docs.len() as u32).collect();
        }
        let mut postings: Vec<&Vec<u32>> = Vec::with_capacity(terms.len());
        for t in terms {
            match self.index.get(t) {
                Some(p) => postings.push(p),
                None => return Vec::new(),
            }
        }
        // Intersect starting from the rarest posting list.
        postings.sort_by_key(|p| p.len());
        let mut result: Vec<u32> = postings[0].clone();
        result.dedup();
        for p in &postings[1..] {
            result.retain(|o| p.binary_search(o).is_ok());
            if result.is_empty() {
                break;
            }
        }
        result
    }
}

/// The sealed-tier equivalent of the inverted-index match: `record`
/// satisfies every term when each term equals the node, equals the app,
/// or occurs among the message's tokens — exactly the postings the hot
/// tier would have indexed for it.
fn record_matches(record: &LogRecord, terms: &[String]) -> bool {
    terms.iter().all(|term| {
        if record.node == *term || record.app == *term {
            return true;
        }
        let mut hit = false;
        textproc::Tokenizer::default().tokenize_each(&record.message, |token| {
            hit |= token == term;
        });
        hit
    })
}

/// Registered instrument handles for the insert path, present once
/// [`LogStore::attach_telemetry`] has run. Un-attached stores pay one
/// read-lock check per insert call and nothing else.
#[derive(Debug)]
struct StoreMetrics {
    records: Arc<obs::Counter>,
    shards: Arc<obs::Gauge>,
    insert_us: Arc<obs::Histogram>,
    seal_us: Arc<obs::Histogram>,
    segments_sealed: Arc<obs::Counter>,
    segment_rows: Arc<obs::Counter>,
    segments_live: Arc<obs::Gauge>,
    segment_bytes: Arc<obs::Gauge>,
    segment_raw_bytes: Arc<obs::Gauge>,
    templates_mined: Arc<obs::Counter>,
    templates_live: Arc<obs::Gauge>,
}

/// One time window: `lanes` independently locked shards whose union is
/// the window's contents.
type TimeSlot = Vec<RwLock<Shard>>;

/// What one seal produced — metric updates are deferred until every
/// storage lock is released (see the module lock-order note).
struct SealOutcome {
    rows: u64,
    templates: u64,
    seal_time: std::time::Duration,
}

/// Monotonic totals mirrored onto the telemetry counters. Kept on the
/// store itself so [`LogStore::attach_telemetry`] can carry an exact
/// snapshot: they are only ever bumped while the `metrics` read lock is
/// held, and the attach path holds the write lock (see the race note
/// there).
#[derive(Debug, Default)]
struct StoreTotals {
    records: AtomicU64,
    segments_sealed: AtomicU64,
    segment_rows: AtomicU64,
    templates_mined: AtomicU64,
}

/// The sharded store.
#[derive(Debug)]
pub struct LogStore {
    shards: RwLock<BTreeMap<i64, TimeSlot>>,
    /// Sealed columnar segments, keyed by time-slot like `shards`; a slot
    /// accumulates one segment per seal event.
    sealed: RwLock<BTreeMap<i64, Vec<Arc<Segment>>>>,
    shard_seconds: i64,
    lanes: usize,
    /// Documents per lane shard that trigger an automatic seal
    /// (0 = never seal automatically).
    seal_threshold: usize,
    /// Mining similarity threshold for sealed segments.
    template_threshold: f64,
    next_id: AtomicU64,
    totals: StoreTotals,
    metrics: RwLock<Option<StoreMetrics>>,
}

impl Default for LogStore {
    fn default() -> LogStore {
        LogStore::new()
    }
}

impl LogStore {
    /// A store with hourly shards and a single lane.
    pub fn new() -> LogStore {
        LogStore::with_config(DEFAULT_SHARD_SECONDS, 1)
    }

    /// A store with custom shard width and a single lane.
    pub fn with_shard_seconds(shard_seconds: i64) -> LogStore {
        LogStore::with_config(shard_seconds, 1)
    }

    /// A store with hourly shards split into `lanes` write lanes — one per
    /// pipeline shard, so concurrent live writers never share a lock.
    pub fn with_lanes(lanes: usize) -> LogStore {
        LogStore::with_config(DEFAULT_SHARD_SECONDS, lanes)
    }

    /// A store with custom shard width and lane count.
    pub fn with_config(shard_seconds: i64, lanes: usize) -> LogStore {
        LogStore {
            shards: RwLock::new(BTreeMap::new()),
            sealed: RwLock::new(BTreeMap::new()),
            shard_seconds: shard_seconds.max(1),
            lanes: lanes.max(1),
            seal_threshold: 0,
            template_threshold: TemplateMiner::DEFAULT_THRESHOLD,
            next_id: AtomicU64::new(0),
            totals: StoreTotals::default(),
            metrics: RwLock::new(None),
        }
    }

    /// Enable the sealed columnar tier: a lane shard reaching
    /// `threshold` documents is sealed into a columnar segment during the
    /// insert that crossed the threshold (builder-style; pass 0 to keep
    /// sealing manual via [`LogStore::seal_before`]).
    pub fn with_sealing(mut self, threshold: usize) -> LogStore {
        self.seal_threshold = threshold;
        self
    }

    /// Override the template-mining similarity threshold (builder-style;
    /// default [`TemplateMiner::DEFAULT_THRESHOLD`]).
    pub fn with_template_threshold(mut self, threshold: f64) -> LogStore {
        self.template_threshold = threshold;
        self
    }

    /// Write lanes per time slot.
    pub fn n_lanes(&self) -> usize {
        self.lanes
    }

    fn new_slot(&self) -> TimeSlot {
        (0..self.lanes)
            .map(|_| RwLock::new(Shard::default()))
            .collect()
    }

    /// Register the store's instruments (record counter, shard gauge,
    /// insert/seal latency, `hetsyslog_segment_*` / `hetsyslog_template_*`
    /// families) on a shared telemetry registry. Prior state is carried
    /// onto the instruments so counters always match the store's ledger;
    /// re-attaching never double-counts.
    ///
    /// Coherence with in-flight inserts: every insert/seal path bumps the
    /// [`StoreTotals`] atomics and the instrument *while holding the
    /// `metrics` read lock*; this method holds the write lock, so each
    /// concurrent insert is either fully reflected in the carried totals
    /// or lands entirely on the newly attached instruments — never both,
    /// never neither. (Attaching used to carry `self.len()`, which let an
    /// insert that was past its shard update but before its counter add
    /// be counted twice.)
    pub fn attach_telemetry(&self, registry: &obs::Registry) {
        let mut slot = self.metrics.write();
        let metrics = StoreMetrics {
            records: registry.counter(
                "hetsyslog_store_records_total",
                "Records inserted into the time-sharded store",
                &[],
            ),
            shards: registry.gauge("hetsyslog_store_shards", "Open time shards", &[]),
            insert_us: registry.histogram(
                "hetsyslog_stage_duration_us",
                "Per-stage batch processing time in microseconds",
                &[("stage", "store_insert")],
            ),
            seal_us: registry.histogram(
                "hetsyslog_stage_duration_us",
                "Per-stage batch processing time in microseconds",
                &[("stage", "segment_seal")],
            ),
            segments_sealed: registry.counter(
                "hetsyslog_segment_sealed_total",
                "Columnar segments sealed from the hot tier",
                &[],
            ),
            segment_rows: registry.counter(
                "hetsyslog_segment_rows_total",
                "Records sealed into columnar segments",
                &[],
            ),
            segments_live: registry.gauge(
                "hetsyslog_segment_live",
                "Columnar segments currently queryable",
                &[],
            ),
            segment_bytes: registry.gauge(
                "hetsyslog_segment_bytes",
                "Encoded bytes across live columnar segments",
                &[],
            ),
            segment_raw_bytes: registry.gauge(
                "hetsyslog_segment_raw_bytes",
                "JSONL-equivalent bytes of the rows in live columnar segments",
                &[],
            ),
            templates_mined: registry.counter(
                "hetsyslog_template_mined_total",
                "Templates mined across all sealed segments (cumulative)",
                &[],
            ),
            templates_live: registry.gauge(
                "hetsyslog_template_live",
                "Distinct template patterns across live segments",
                &[],
            ),
        };
        if slot.is_none() {
            metrics
                .records
                .add(self.totals.records.load(Ordering::Relaxed));
            metrics
                .segments_sealed
                .add(self.totals.segments_sealed.load(Ordering::Relaxed));
            metrics
                .segment_rows
                .add(self.totals.segment_rows.load(Ordering::Relaxed));
            metrics
                .templates_mined
                .add(self.totals.templates_mined.load(Ordering::Relaxed));
        }
        metrics.shards.set(self.n_shards() as i64);
        let (live, bytes, raw, patterns) = self.sealed_snapshot();
        metrics.segments_live.set(live);
        metrics.segment_bytes.set(bytes);
        metrics.segment_raw_bytes.set(raw);
        metrics.templates_live.set(patterns);
        *slot = Some(metrics);
    }

    /// Gauge inputs for the sealed tier: live segment count, encoded and
    /// raw bytes, distinct template patterns.
    fn sealed_snapshot(&self) -> (i64, i64, i64, i64) {
        let sealed = self.sealed.read();
        let mut segments = 0i64;
        let mut bytes = 0i64;
        let mut raw = 0i64;
        let mut patterns = std::collections::BTreeSet::new();
        for segment in sealed.values().flatten() {
            let stats = segment.stats();
            segments += 1;
            bytes += stats.encoded_bytes as i64;
            raw += stats.raw_bytes as i64;
            for p in segment.template_patterns() {
                patterns.insert(p.to_string());
            }
        }
        (segments, bytes, raw, patterns.len() as i64)
    }

    /// Allocate the next document id.
    pub fn allocate_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn shard_key(&self, unix_seconds: i64) -> i64 {
        unix_seconds.div_euclid(self.shard_seconds)
    }

    /// Record `n` inserted rows on the ledger and (if attached) the
    /// telemetry counter. Must be called with **no storage lock held**;
    /// takes the metrics read lock to stay coherent with
    /// [`LogStore::attach_telemetry`].
    fn note_inserted(&self, n: u64) {
        let metrics = self.metrics.read();
        self.totals.records.fetch_add(n, Ordering::Relaxed);
        if let Some(m) = metrics.as_ref() {
            m.records.add(n);
        }
    }

    /// Refresh the open-shard gauge. `n_shards` is passed in (read from
    /// whatever map guard the caller just released) so this never takes a
    /// storage lock of its own.
    fn note_shard_count(&self, n_shards: usize) {
        if let Some(m) = self.metrics.read().as_ref() {
            m.shards.set(n_shards as i64);
        }
    }

    /// Record the outcome of one or more seals, with no storage lock
    /// held. Counters get the exact deltas; gauges are refreshed from the
    /// sealed tier.
    fn note_sealed(&self, outcomes: &[SealOutcome]) {
        if outcomes.is_empty() {
            return;
        }
        let (live, bytes, raw, patterns) = self.sealed_snapshot();
        let metrics = self.metrics.read();
        for o in outcomes {
            self.totals.segments_sealed.fetch_add(1, Ordering::Relaxed);
            self.totals
                .segment_rows
                .fetch_add(o.rows, Ordering::Relaxed);
            self.totals
                .templates_mined
                .fetch_add(o.templates, Ordering::Relaxed);
        }
        if let Some(m) = metrics.as_ref() {
            for o in outcomes {
                m.segments_sealed.inc();
                m.segment_rows.add(o.rows);
                m.templates_mined.add(o.templates);
                m.seal_us.record_duration_us(o.seal_time);
            }
            m.segments_live.set(live);
            m.segment_bytes.set(bytes);
            m.segment_raw_bytes.set(raw);
            m.templates_live.set(patterns);
        }
    }

    /// Seal `docs` into a columnar segment under `key`. The caller
    /// chooses what locks it is holding (threshold seals run under the
    /// lane write lock so a concurrent scan never observes the rows
    /// missing); the sealed-map write lock is taken here, last in the
    /// lock order.
    fn seal_docs(&self, key: i64, docs: Vec<LogRecord>) -> SealOutcome {
        let started = Instant::now();
        let segment = Segment::build(&docs, self.template_threshold);
        let outcome = SealOutcome {
            rows: segment.n_rows() as u64,
            templates: segment.template_patterns().len() as u64,
            seal_time: started.elapsed(),
        };
        self.sealed
            .write()
            .entry(key)
            .or_default()
            .push(Arc::new(segment));
        outcome
    }

    /// Insert a record (its `id` should come from [`LogStore::allocate_id`]).
    /// Multi-lane stores spread scalar inserts by record id.
    pub fn insert(&self, record: LogRecord) {
        let key = self.shard_key(record.unix_seconds);
        let lane = (record.id as usize) % self.lanes;
        let mut record = Some(record);
        let mut sealed: Option<SealOutcome> = None;
        // Fast path: slot exists, take the read lock on the map only.
        {
            let shards = self.shards.read();
            if let Some(slot) = shards.get(&key) {
                let mut shard = slot[lane].write();
                shard.insert(record.take().expect("unconsumed"));
                if self.seal_threshold > 0 && shard.docs.len() >= self.seal_threshold {
                    let docs = std::mem::take(&mut shard.docs);
                    shard.index.clear();
                    sealed = Some(self.seal_docs(key, docs));
                }
            }
        }
        let Some(record) = record else {
            self.note_inserted(1);
            if let Some(outcome) = sealed {
                self.note_sealed(&[outcome]);
            }
            return;
        };
        let n_shards = {
            let mut shards = self.shards.write();
            shards
                .entry(key)
                .or_insert_with(|| self.new_slot())
                .get(lane)
                .expect("lane within slot")
                .write()
                .insert(record);
            shards.len()
        };
        self.note_inserted(1);
        // The slow path opened a new time slot (or raced another opener):
        // refresh the gauge now, not lazily — scalar and batched inserts
        // agree on when the gauge moves.
        self.note_shard_count(n_shards);
    }

    /// Insert a batch of records, acquiring each time shard's write lock
    /// once per contiguous run instead of once per record. Records from a
    /// live stream land overwhelmingly in the current shard, so a batch of
    /// N costs ~1 lock acquisition instead of N. Multi-lane stores put
    /// un-hinted batches in lane 0; sharded pipeline workers use
    /// [`LogStore::insert_batch_affine`] instead.
    pub fn insert_batch(&self, records: impl IntoIterator<Item = LogRecord>) {
        self.insert_batch_affine(0, records)
    }

    /// [`LogStore::insert_batch`] with store-shard affinity: the whole
    /// batch lands in lane `lane_hint % lanes` of each time slot it spans.
    /// Pipeline shard `k` passing `lane_hint = k` into a store with as
    /// many lanes as shards makes the batched insert a single-shard fast
    /// path — its lane lock is never contended by another pipeline shard,
    /// only by readers.
    pub fn insert_batch_affine(
        &self,
        lane_hint: usize,
        records: impl IntoIterator<Item = LogRecord>,
    ) {
        let lane = lane_hint % self.lanes;
        let start = Instant::now();
        let mut inserted: u64 = 0;
        let mut sealed: Vec<SealOutcome> = Vec::new();
        let mut records = records.into_iter().peekable();
        while let Some(first) = records.next() {
            let key = self.shard_key(first.unix_seconds);
            // Ensure the slot exists, then hold one lane's write lock for
            // the whole run of records mapping to the same key.
            loop {
                let shards = self.shards.read();
                let Some(slot) = shards.get(&key) else {
                    drop(shards);
                    let n_shards = {
                        let mut shards = self.shards.write();
                        shards.entry(key).or_insert_with(|| self.new_slot());
                        shards.len()
                    };
                    // Refresh the gauge the moment the slot opens — not
                    // at end of batch — so a batch spanning a slot
                    // boundary never leaves it stale between runs.
                    self.note_shard_count(n_shards);
                    continue;
                };
                let mut shard = slot[lane].write();
                shard.insert(first);
                inserted += 1;
                while records
                    .peek()
                    .is_some_and(|r| self.shard_key(r.unix_seconds) == key)
                {
                    shard.insert(records.next().expect("peeked"));
                    inserted += 1;
                }
                if self.seal_threshold > 0 && shard.docs.len() >= self.seal_threshold {
                    let docs = std::mem::take(&mut shard.docs);
                    shard.index.clear();
                    sealed.push(self.seal_docs(key, docs));
                }
                break;
            }
        }
        if inserted > 0 {
            let metrics = self.metrics.read();
            self.totals.records.fetch_add(inserted, Ordering::Relaxed);
            if let Some(m) = metrics.as_ref() {
                m.records.add(inserted);
                m.insert_us.record_duration_us(start.elapsed());
            }
        }
        self.note_sealed(&sealed);
    }

    /// Total stored records (hot + sealed).
    pub fn len(&self) -> usize {
        self.hot_len() + self.sealed_len()
    }

    /// Records in the hot inverted-index tier.
    pub fn hot_len(&self) -> usize {
        self.shards
            .read()
            .values()
            .flat_map(|slot| slot.iter())
            .map(|s| s.read().docs.len())
            .sum()
    }

    /// Records in the sealed columnar tier.
    pub fn sealed_len(&self) -> usize {
        self.sealed
            .read()
            .values()
            .flatten()
            .map(|s| s.n_rows())
            .sum()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of open (hot) time shards.
    pub fn n_shards(&self) -> usize {
        self.shards.read().len()
    }

    /// Number of sealed columnar segments.
    pub fn n_segments(&self) -> usize {
        self.sealed.read().values().map(Vec::len).sum()
    }

    /// Aggregate sealed-tier stats (rows, distinct patterns per segment
    /// summed, encoded and raw bytes).
    pub fn segment_stats(&self) -> crate::columnar::SegmentStats {
        let sealed = self.sealed.read();
        let mut out = crate::columnar::SegmentStats {
            rows: 0,
            templates: 0,
            encoded_bytes: 0,
            raw_bytes: 0,
        };
        for segment in sealed.values().flatten() {
            let s = segment.stats();
            out.rows += s.rows;
            out.templates += s.templates;
            out.encoded_bytes += s.encoded_bytes;
            out.raw_bytes += s.raw_bytes;
        }
        out
    }

    /// Snapshot the live segments overlapping `[k_from, k_to]` slot keys.
    fn segments_in_range(&self, k_from: i64, k_to: i64) -> Vec<Arc<Segment>> {
        self.sealed
            .read()
            .range(k_from..=k_to)
            .flat_map(|(_, segs)| segs.iter().cloned())
            .collect()
    }

    /// Run `f` over every record in `[from, to)` matching all `terms`,
    /// in shard order — sealed segments first within each time slot
    /// (sealed rows predate hot ones), then hot lanes. The callback form
    /// avoids cloning the result set. Empty and reversed ranges return
    /// immediately without walking the shard map (and `to == i64::MIN`
    /// no longer overflows the shard-key computation).
    pub fn scan<F: FnMut(&LogRecord)>(&self, from: i64, to: i64, terms: &[String], mut f: F) {
        if to <= from {
            return;
        }
        let (k_from, k_to) = (self.shard_key(from), self.shard_key(to - 1));
        let sealed = self.segments_in_range(k_from, k_to);
        for segment in sealed {
            segment.scan_range(from, to, |rec| {
                if record_matches(rec, terms) {
                    f(rec);
                }
            });
        }
        let shards = self.shards.read();
        for (_, slot) in shards.range(k_from..=k_to) {
            for shard in slot {
                let shard = shard.read();
                for offset in shard.matching(terms) {
                    let rec = &shard.docs[offset as usize];
                    if rec.unix_seconds >= from && rec.unix_seconds < to {
                        f(rec);
                    }
                }
            }
        }
    }

    /// Collect matching records (convenience over [`LogStore::scan`]).
    pub fn search(&self, from: i64, to: i64, terms: &[String]) -> Vec<LogRecord> {
        let mut out = Vec::new();
        self.scan(from, to, terms, |r| out.push(r.clone()));
        out
    }

    // ------------------------------------------------ template queries

    /// Rows per template pattern over the sealed tier in `[from, to)`.
    /// Segments fully inside the range are answered from their header
    /// dictionaries — **zero blocks decompressed**; partially covered
    /// segments decode only template-id + timestamp columns. The hot
    /// tier is not mined (seal first, e.g. [`LogStore::seal_all`], to
    /// cover everything).
    pub fn count_by_template(&self, from: i64, to: i64) -> BTreeMap<String, u64> {
        let mut counts = BTreeMap::new();
        if to <= from {
            return counts;
        }
        let (k_from, k_to) = (self.shard_key(from), self.shard_key(to - 1));
        for segment in self.segments_in_range(k_from, k_to) {
            segment.count_rows_by_template(from, to, &mut counts);
        }
        counts
    }

    /// Histogram of the values in variable slot `slot` of every sealed
    /// template whose pattern equals `pattern`. Decompresses exactly one
    /// variable column per matching segment.
    pub fn variable_histogram(&self, pattern: &str, slot: usize) -> BTreeMap<String, u64> {
        let mut hist = BTreeMap::new();
        let segments: Vec<Arc<Segment>> = self
            .sealed
            .read()
            .values()
            .flat_map(|segs| segs.iter().cloned())
            .collect();
        for segment in segments {
            let Some(idx) = segment
                .template_patterns()
                .iter()
                .position(|p| *p == pattern)
            else {
                continue;
            };
            if let Some(values) = segment.variable_values(idx, slot) {
                for v in values {
                    *hist.entry(v).or_default() += 1;
                }
            }
        }
        hist
    }

    /// Run `f` over every sealed record whose template pattern equals
    /// `pattern`, decoding only those templates' variable columns.
    pub fn template_scan<F: FnMut(&LogRecord)>(&self, pattern: &str, mut f: F) {
        let segments: Vec<Arc<Segment>> = self
            .sealed
            .read()
            .values()
            .flat_map(|segs| segs.iter().cloned())
            .collect();
        for segment in segments {
            if let Some(idx) = segment
                .template_patterns()
                .iter()
                .position(|p| *p == pattern)
            {
                segment.template_scan(idx, &mut f);
            }
        }
    }

    // ------------------------------------------------------ seal / evict

    /// Seal every hot shard strictly older than `cutoff_unix_seconds`
    /// into columnar segments (shard-granular, like eviction): the
    /// hot-tier eviction path that keeps records queryable at a fraction
    /// of the bytes. Returns the number of records sealed. Lanes of one
    /// slot are merged into a single segment so the template dictionary
    /// spans the whole window.
    pub fn seal_before(&self, cutoff_unix_seconds: i64) -> u64 {
        let cutoff_shard = self.shard_key(cutoff_unix_seconds);
        self.seal_slots_below(cutoff_shard)
    }

    /// Seal every hot shard, regardless of age.
    pub fn seal_all(&self) -> u64 {
        self.seal_slots_below(i64::MAX)
    }

    fn seal_slots_below(&self, cutoff_shard: i64) -> u64 {
        // Detach the eligible slots first so the expensive mining pass
        // runs without the map write lock; the lane contents move out
        // atomically, so no record is ever visible twice.
        let (detached, n_shards) = {
            let mut shards = self.shards.write();
            let keep = if cutoff_shard == i64::MAX {
                BTreeMap::new()
            } else {
                shards.split_off(&cutoff_shard)
            };
            let detached: Vec<(i64, TimeSlot)> =
                std::mem::replace(&mut *shards, keep).into_iter().collect();
            (detached, shards.len())
        };
        let mut outcomes = Vec::new();
        let mut rows = 0u64;
        for (key, slot) in detached {
            let mut docs: Vec<LogRecord> = Vec::new();
            for lane in slot {
                docs.extend(lane.into_inner().docs);
            }
            if docs.is_empty() {
                continue;
            }
            rows += docs.len() as u64;
            outcomes.push(self.seal_docs(key, docs));
        }
        self.note_shard_count(n_shards);
        self.note_sealed(&outcomes);
        rows
    }

    /// Drop whole shards older than `cutoff_unix_seconds` — the index
    /// lifecycle policy that let Tivan "store and search over thirty
    /// million log records a month" on eight servers without growing
    /// forever. Returns the number of records evicted, from both the hot
    /// and the sealed tier; the open-shard gauge is refreshed (it used
    /// to go stale here).
    ///
    /// Eviction is shard-granular (a shard is dropped only when its whole
    /// window is older than the cutoff), matching time-rotated indices.
    pub fn evict_before(&self, cutoff_unix_seconds: i64) -> u64 {
        let cutoff_shard = self.shard_key(cutoff_unix_seconds);
        let (evicted_hot, n_shards) = {
            let mut shards = self.shards.write();
            let keep = shards.split_off(&cutoff_shard);
            let evicted: u64 = shards
                .values()
                .flat_map(|slot| slot.iter())
                .map(|s| s.read().docs.len() as u64)
                .sum();
            *shards = keep;
            (evicted, shards.len())
        };
        let evicted_sealed: u64 = {
            let mut sealed = self.sealed.write();
            let keep = sealed.split_off(&cutoff_shard);
            let evicted = sealed.values().flatten().map(|s| s.n_rows() as u64).sum();
            *sealed = keep;
            evicted
        };
        self.note_shard_count(n_shards);
        if evicted_sealed > 0 {
            // Segment gauges shrink; counters (cumulative) stay.
            let (live, bytes, raw, patterns) = self.sealed_snapshot();
            if let Some(m) = self.metrics.read().as_ref() {
                m.segments_live.set(live);
                m.segment_bytes.set(bytes);
                m.segment_raw_bytes.set(raw);
                m.templates_live.set(patterns);
            }
        }
        evicted_hot + evicted_sealed
    }

    /// Snapshot every record as JSON lines, in shard order (sealed rows
    /// first within a slot, like [`LogStore::scan`]) — the
    /// OpenSearch-snapshot equivalent.
    pub fn export_jsonl<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<u64> {
        let mut count = 0u64;
        let keys: Vec<i64> = {
            let shards = self.shards.read();
            let sealed = self.sealed.read();
            let mut keys: Vec<i64> = shards.keys().chain(sealed.keys()).copied().collect();
            keys.sort_unstable();
            keys.dedup();
            keys
        };
        for key in keys {
            for segment in self.segments_in_range(key, key) {
                let mut err = None;
                segment.scan_filtered(
                    |_| true,
                    |record| {
                        if err.is_some() {
                            return;
                        }
                        if let Err(e) = serde_json::to_writer(&mut writer, record)
                            .map_err(std::io::Error::other)
                            .and_then(|()| writer.write_all(b"\n"))
                        {
                            err = Some(e);
                        } else {
                            count += 1;
                        }
                    },
                );
                if let Some(e) = err {
                    return Err(e);
                }
            }
            let shards = self.shards.read();
            let Some(slot) = shards.get(&key) else {
                continue;
            };
            for shard in slot {
                let shard = shard.read();
                for record in &shard.docs {
                    serde_json::to_writer(&mut writer, record).map_err(std::io::Error::other)?;
                    writer.write_all(b"\n")?;
                    count += 1;
                }
            }
        }
        Ok(count)
    }

    /// Rebuild a store (indexes included) from a JSONL snapshot. Malformed
    /// lines are skipped and counted in the second return value.
    pub fn import_jsonl<R: std::io::BufRead>(
        reader: R,
        shard_seconds: i64,
    ) -> std::io::Result<(LogStore, u64)> {
        let store = LogStore::with_shard_seconds(shard_seconds);
        let mut skipped = 0u64;
        let mut max_id = 0u64;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match LogRecord::from_json(&line) {
                Ok(record) => {
                    max_id = max_id.max(record.id + 1);
                    store.insert(record);
                }
                Err(_) => skipped += 1,
            }
        }
        store.next_id.store(max_id, Ordering::Relaxed);
        Ok((store, skipped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsyslog_core::Category;
    use syslog_model::{Facility, Severity};

    fn rec(store: &LogStore, t: i64, node: &str, message: &str) -> LogRecord {
        LogRecord {
            id: store.allocate_id(),
            unix_seconds: t,
            node: node.to_string(),
            app: "kernel".to_string(),
            severity: Severity::Warning,
            facility: Facility::Kern,
            message: message.to_string(),
            category: Some(Category::ThermalIssue),
        }
    }

    #[test]
    fn insert_and_search_terms() {
        let store = LogStore::new();
        store.insert(rec(&store, 100, "cn01", "cpu temperature above threshold"));
        store.insert(rec(&store, 200, "cn02", "usb device attached"));
        store.insert(rec(&store, 300, "cn01", "cpu throttled again"));

        let hits = store.search(0, 1000, &["cpu".to_string()]);
        assert_eq!(hits.len(), 2);
        let hits = store.search(0, 1000, &["cpu".to_string(), "temperature".to_string()]);
        assert_eq!(hits.len(), 1);
        let hits = store.search(0, 1000, &["nonexistent".to_string()]);
        assert!(hits.is_empty());
    }

    #[test]
    fn node_and_app_are_searchable() {
        let store = LogStore::new();
        store.insert(rec(&store, 50, "cn07", "some message"));
        assert_eq!(store.search(0, 100, &["cn07".to_string()]).len(), 1);
        assert_eq!(store.search(0, 100, &["kernel".to_string()]).len(), 1);
    }

    #[test]
    fn time_range_is_half_open() {
        let store = LogStore::new();
        store.insert(rec(&store, 100, "a", "x marker"));
        store.insert(rec(&store, 200, "b", "x marker"));
        assert_eq!(store.search(100, 200, &["marker".to_string()]).len(), 1);
        assert_eq!(store.search(100, 201, &["marker".to_string()]).len(), 2);
    }

    #[test]
    fn sharding_by_time() {
        let store = LogStore::with_shard_seconds(60);
        for i in 0..10 {
            store.insert(rec(&store, i * 60, "n", "m"));
        }
        assert_eq!(store.n_shards(), 10);
        assert_eq!(store.len(), 10);
    }

    #[test]
    fn negative_times_shard_correctly() {
        let store = LogStore::with_shard_seconds(60);
        store.insert(rec(&store, -30, "n", "early marker"));
        assert_eq!(store.search(-100, 0, &["marker".to_string()]).len(), 1);
    }

    #[test]
    fn concurrent_ingest_is_consistent() {
        let store = std::sync::Arc::new(LogStore::with_shard_seconds(10));
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    let r = LogRecord {
                        id: store.allocate_id(),
                        unix_seconds: (t * 250 + i) as i64,
                        node: format!("cn{t}"),
                        app: "kernel".to_string(),
                        severity: Severity::Informational,
                        facility: Facility::Kern,
                        message: format!("msg {i} shared token"),
                        category: None,
                    };
                    store.insert(r);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 1000);
        assert_eq!(store.search(0, 2000, &["shared".to_string()]).len(), 1000);
    }

    #[test]
    fn retention_evicts_old_shards_only() {
        let store = LogStore::with_shard_seconds(60);
        store.insert(rec(&store, 10, "a", "ancient marker"));
        store.insert(rec(&store, 70, "b", "old marker"));
        store.insert(rec(&store, 130, "c", "fresh marker"));
        assert_eq!(store.n_shards(), 3);
        // Cutoff inside the second shard: only the first is fully older.
        let evicted = store.evict_before(90);
        assert_eq!(evicted, 1);
        assert_eq!(store.len(), 2);
        assert!(store.search(0, 200, &["ancient".to_string()]).is_empty());
        assert_eq!(store.search(0, 200, &["old".to_string()]).len(), 1);
        // Shard-aligned cutoff evicts the second too.
        assert_eq!(store.evict_before(120), 1);
        assert_eq!(store.len(), 1);
        // Nothing left to evict below the cutoff.
        assert_eq!(store.evict_before(120), 0);
    }

    #[test]
    fn snapshot_roundtrip_preserves_records_and_index() {
        let store = LogStore::with_shard_seconds(60);
        store.insert(rec(&store, 10, "cn01", "cpu temperature high"));
        store.insert(rec(&store, 70, "cn02", "usb device attached"));
        let mut snapshot = Vec::new();
        let exported = store.export_jsonl(&mut snapshot).unwrap();
        assert_eq!(exported, 2);

        let (restored, skipped) =
            LogStore::import_jsonl(std::io::BufReader::new(&snapshot[..]), 60).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(restored.len(), 2);
        // The inverted index is rebuilt, not just the documents.
        assert_eq!(
            restored.search(0, 100, &["temperature".to_string()]).len(),
            1
        );
        // Id allocation continues past the snapshot's ids.
        assert!(restored.allocate_id() >= 2);
    }

    #[test]
    fn import_skips_malformed_lines() {
        let snapshot = b"{not json}\n\n";
        let (restored, skipped) =
            LogStore::import_jsonl(std::io::BufReader::new(&snapshot[..]), 60).unwrap();
        assert_eq!(restored.len(), 0);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn lanes_are_query_transparent() {
        let store = LogStore::with_config(60, 4);
        assert_eq!(store.n_lanes(), 4);
        // Affine batches from 4 "pipeline shards" into distinct lanes of
        // the same time slot; queries must see the union.
        for lane in 0..4usize {
            let batch: Vec<LogRecord> = (0..5)
                .map(|i| {
                    rec(
                        &store,
                        30,
                        &format!("cn{lane}"),
                        &format!("lane marker {i}"),
                    )
                })
                .collect();
            store.insert_batch_affine(lane, batch);
        }
        assert_eq!(store.len(), 20);
        assert_eq!(store.n_shards(), 1, "one time slot despite 4 lanes");
        assert_eq!(store.search(0, 60, &["marker".to_string()]).len(), 20);
        assert_eq!(store.search(0, 60, &["cn2".to_string()]).len(), 5);
        // Retention and export see every lane.
        let mut out = Vec::new();
        assert_eq!(store.export_jsonl(&mut out).unwrap(), 20);
        assert_eq!(store.evict_before(60), 20);
        assert!(store.is_empty());
    }

    #[test]
    fn concurrent_affine_ingest_into_one_time_slot_is_consistent() {
        // The live-path shape: every writer hits the same time slot, each
        // pins its own lane, so writes proceed without shared-lock
        // serialization and nothing is lost or duplicated.
        let store = std::sync::Arc::new(LogStore::with_config(3600, 4));
        let mut handles = Vec::new();
        for lane in 0..4usize {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for chunk in 0..10 {
                    let batch: Vec<LogRecord> = (0..25)
                        .map(|i| {
                            let mut r = rec(
                                &store,
                                100,
                                &format!("cn{lane}"),
                                &format!("burst {chunk} msg {i} shared token"),
                            );
                            r.category = None;
                            r
                        })
                        .collect();
                    store.insert_batch_affine(lane, batch);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 1000);
        assert_eq!(store.search(0, 3600, &["shared".to_string()]).len(), 1000);
    }

    #[test]
    fn duplicate_tokens_in_message_count_once() {
        let store = LogStore::new();
        store.insert(rec(&store, 1, "n", "cpu cpu cpu"));
        assert_eq!(store.search(0, 10, &["cpu".to_string()]).len(), 1);
    }

    // ----------------------------------------------- bugfix regressions

    #[test]
    fn scan_handles_empty_reversed_and_extreme_ranges() {
        let store = LogStore::with_shard_seconds(60);
        store.insert(rec(&store, 100, "n", "edge marker"));
        let count = |from, to| store.search(from, to, &[]).len();
        // `to == i64::MIN` used to compute `shard_key(i64::MIN - 1)` —
        // a debug-build overflow panic. Now an early empty return.
        assert_eq!(count(i64::MIN, i64::MIN), 0);
        assert_eq!(count(0, i64::MIN), 0);
        // Reversed and empty ranges return without walking the map.
        assert_eq!(count(200, 100), 0);
        assert_eq!(count(100, 100), 0);
        // Extreme-but-valid ranges still work.
        assert_eq!(count(i64::MIN, i64::MAX), 1);
        // count_by_template applies the same guard.
        assert!(store.count_by_template(0, i64::MIN).is_empty());
    }

    #[test]
    fn attach_telemetry_concurrent_with_batch_inserts_keeps_counter_exact() {
        // Regression: attach used to carry `self.len()` onto the counter
        // while `insert_batch_affine` snapshotted attachment before its
        // loop — attaching mid-batch double-counted (carry included rows
        // whose batch then also added them) or undercounted. The carry is
        // now taken from an internal ledger under the metrics write lock,
        // which excludes in-flight adders.
        for round in 0..20 {
            let store = std::sync::Arc::new(LogStore::with_config(3600, 4));
            let registry = std::sync::Arc::new(obs::Registry::new());
            let mut handles = Vec::new();
            for lane in 0..4usize {
                let store = store.clone();
                handles.push(std::thread::spawn(move || {
                    for chunk in 0..20 {
                        let batch: Vec<LogRecord> = (0..10)
                            .map(|i| rec(&store, 100, "cn0", &format!("b {chunk} m {i}")))
                            .collect();
                        store.insert_batch_affine(lane, batch);
                    }
                }));
            }
            // Attach while batches are in flight, at a varying point.
            for _ in 0..round {
                std::thread::yield_now();
            }
            store.attach_telemetry(&registry);
            for h in handles {
                h.join().unwrap();
            }
            let counter = registry.counter("hetsyslog_store_records_total", "", &[]);
            assert_eq!(store.len(), 800);
            assert_eq!(
                counter.get(),
                800,
                "counter must equal len() after concurrent attach (round {round})"
            );
        }
    }

    #[test]
    fn shard_gauge_tracks_slot_creation_eviction_and_sealing() {
        let store = LogStore::with_shard_seconds(60);
        let registry = obs::Registry::new();
        store.attach_telemetry(&registry);
        let gauge = registry.gauge("hetsyslog_store_shards", "", &[]);
        assert_eq!(gauge.get(), 0);

        // Regression: a single batch spanning a slot boundary only
        // refreshed the gauge at end of batch; scalar inserts refreshed
        // mid-stream. Both now update the moment a slot opens.
        let batch: Vec<LogRecord> = [10, 70, 130]
            .iter()
            .map(|&t| rec(&store, t, "n", "span marker"))
            .collect();
        store.insert_batch(batch);
        assert_eq!(gauge.get(), 3);
        assert_eq!(store.n_shards(), 3);

        // Regression: eviction used to leave the gauge stale.
        store.evict_before(60);
        assert_eq!(gauge.get(), 2);
        assert_eq!(store.n_shards(), 2);

        // Sealing closes hot shards too, and the gauge follows.
        store.seal_all();
        assert_eq!(gauge.get(), 0);
        assert_eq!(store.n_shards(), 0);
        assert_eq!(store.len(), 2, "sealed rows still stored");
    }

    // ------------------------------------------------- sealed-tier tests

    #[test]
    fn threshold_sealing_keeps_rows_queryable() {
        let store = LogStore::with_shard_seconds(3600).with_sealing(10);
        for i in 0..25 {
            store.insert(rec(&store, 100 + i, "cn01", &format!("seal marker {i}")));
        }
        // Two automatic seals at 10 docs each; 5 rows stay hot.
        assert_eq!(store.n_segments(), 2);
        assert_eq!(store.sealed_len(), 20);
        assert_eq!(store.hot_len(), 5);
        assert_eq!(store.len(), 25);
        // Term + time queries span both tiers.
        assert_eq!(store.search(0, 4000, &["marker".to_string()]).len(), 25);
        assert_eq!(store.search(100, 105, &[]).len(), 5);
        // Sealed rows decode byte-identically.
        let hits = store.search(100, 101, &[]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].message, "seal marker 0");
        assert_eq!(hits[0].node, "cn01");
    }

    #[test]
    fn seal_before_is_shard_granular_and_lossless() {
        let store = LogStore::with_shard_seconds(60);
        store.insert(rec(&store, 10, "a", "ancient marker"));
        store.insert(rec(&store, 70, "b", "old marker"));
        store.insert(rec(&store, 130, "c", "fresh marker"));
        // Cutoff inside the second shard: only the first seals.
        assert_eq!(store.seal_before(90), 1);
        assert_eq!(store.n_shards(), 2);
        assert_eq!(store.n_segments(), 1);
        assert_eq!(store.len(), 3);
        assert_eq!(store.search(0, 200, &["marker".to_string()]).len(), 3);
        assert_eq!(store.search(0, 200, &["ancient".to_string()]).len(), 1);
        // Export sees sealed and hot rows; import restores everything.
        let mut out = Vec::new();
        assert_eq!(store.export_jsonl(&mut out).unwrap(), 3);
        let (restored, skipped) =
            LogStore::import_jsonl(std::io::BufReader::new(&out[..]), 60).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(restored.len(), 3);
        // Eviction drops sealed segments like hot shards.
        assert_eq!(store.evict_before(120), 2);
        assert_eq!(store.n_segments(), 0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn template_queries_answer_from_sealed_segments() {
        let store = LogStore::with_shard_seconds(3600);
        for i in 0..30 {
            store.insert(rec(
                &store,
                100 + i,
                "cn01",
                &format!("temperature {}C on node cn{:02}", 80 + i, i % 4),
            ));
        }
        for i in 0..10 {
            store.insert(rec(
                &store,
                200 + i,
                "cn02",
                &format!("usb device {i} attached"),
            ));
        }
        assert!(
            store.count_by_template(0, 4000).is_empty(),
            "hot tier unmined"
        );
        store.seal_all();

        let counts = store.count_by_template(0, 4000);
        assert_eq!(counts.get("temperature <*> on node <*>"), Some(&30));
        assert_eq!(counts.get("usb device <*> attached"), Some(&10));
        // Partial range decodes timestamps: only the first 5 temperature rows.
        let partial = store.count_by_template(100, 105);
        assert_eq!(partial.get("temperature <*> on node <*>"), Some(&5));
        assert_eq!(partial.get("usb device <*> attached"), None);

        // Variable histogram over slot 1 (the node id).
        let hist = store.variable_histogram("temperature <*> on node <*>", 1);
        assert_eq!(hist.len(), 4);
        assert_eq!(hist.get("cn00"), Some(&8));
        assert_eq!(hist.get("cn01"), Some(&8));
        assert_eq!(hist.get("cn03"), Some(&7));

        // Template-filtered scan yields only matching rows, losslessly.
        let mut n = 0;
        store.template_scan("usb device <*> attached", |r| {
            assert!(r.message.starts_with("usb device "));
            n += 1;
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn sealed_tier_telemetry_updates_on_seal_and_attach_carry() {
        let store = LogStore::with_shard_seconds(60);
        for i in 0..20 {
            store.insert(rec(&store, i, "n", &format!("carry marker {i}")));
        }
        store.seal_all();
        // Attach AFTER sealing: counters carry the pre-attach history.
        let registry = obs::Registry::new();
        store.attach_telemetry(&registry);
        assert_eq!(
            registry
                .counter("hetsyslog_store_records_total", "", &[])
                .get(),
            20
        );
        assert_eq!(
            registry
                .counter("hetsyslog_segment_sealed_total", "", &[])
                .get(),
            1
        );
        assert_eq!(
            registry
                .counter("hetsyslog_segment_rows_total", "", &[])
                .get(),
            20
        );
        assert!(
            registry
                .counter("hetsyslog_template_mined_total", "", &[])
                .get()
                >= 1
        );
        assert_eq!(registry.gauge("hetsyslog_segment_live", "", &[]).get(), 1);
        assert!(registry.gauge("hetsyslog_segment_bytes", "", &[]).get() > 0);
        let raw = registry.gauge("hetsyslog_segment_raw_bytes", "", &[]).get();
        assert!(raw > 0);
        assert!(registry.gauge("hetsyslog_template_live", "", &[]).get() >= 1);

        // A second seal moves the counters live (no re-carry).
        for i in 0..5 {
            store.insert(rec(&store, 600 + i, "n", &format!("carry marker {i}")));
        }
        store.seal_all();
        assert_eq!(
            registry
                .counter("hetsyslog_segment_sealed_total", "", &[])
                .get(),
            2
        );
        assert_eq!(
            registry
                .counter("hetsyslog_segment_rows_total", "", &[])
                .get(),
            25
        );
        assert_eq!(registry.gauge("hetsyslog_segment_live", "", &[]).get(), 2);
        // Evicting everything zeroes the live gauges, not the counters.
        store.evict_before(i64::MAX.div_euclid(60));
        assert_eq!(registry.gauge("hetsyslog_segment_live", "", &[]).get(), 0);
        assert_eq!(
            registry
                .counter("hetsyslog_segment_rows_total", "", &[])
                .get(),
            25
        );
    }

    #[test]
    fn reattach_does_not_double_count() {
        let store = LogStore::new();
        let registry = obs::Registry::new();
        store.attach_telemetry(&registry);
        store.insert(rec(&store, 1, "n", "m"));
        store.attach_telemetry(&registry);
        store.insert(rec(&store, 2, "n", "m"));
        assert_eq!(
            registry
                .counter("hetsyslog_store_records_total", "", &[])
                .get(),
            2
        );
    }
}
