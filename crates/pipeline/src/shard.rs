//! Sharded live-pipeline plumbing: the connection→shard partitioner, the
//! per-shard ring fabric with steal handles, and per-shard instruments.
//!
//! The pre-shard listener funneled every connection into one bounded MPMC
//! queue, so at high fan-in all producers and all workers serialized on a
//! single lock. Here the queue is split into N independent SPSC rings
//! (`crossbeam::spsc`), one per pipeline shard: frames are partitioned
//! **hash-by-connection** (all of a connection's frames land on one shard,
//! in order) with a **round-robin fallback** for connectionless UDP
//! datagrams, and each shard's micro-batch worker drains only its own
//! ring. Two shards never touch the same queue lock, the same store lane
//! (see [`LogStore::insert_batch_affine`](crate::LogStore)), or the same
//! decoder — the path scales with cores instead of a lock.
//!
//! Hash placement alone would let one hot connection cap throughput at
//! 1/N, so each worker also holds a [`RingStealer`] on every sibling ring:
//! when its own ring is idle and a sibling's backlog reaches a full batch,
//! it **steals a whole contiguous batch** from the front of the skewed
//! ring. Claims (owner drains and steals alike) always take a contiguous
//! FIFO run in one critical section, so per-connection frame order is
//! preserved at claim granularity — exactly the ordering the single-queue
//! worker pool provided.

use crossbeam::spsc::{self, RingConsumer, RingProducer, RingStealer};
use obs::{Counter, Gauge, Histogram, Registry};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

pub use crossbeam::channel::{SendError, TrySendError};

/// Maps frame sources to pipeline shards.
///
/// TCP connections are placed by a SplitMix64 hash of the connection id,
/// so placement is stateless, stable for the connection's lifetime, and
/// uncorrelated with accept order. UDP datagrams carry no connection
/// identity and no intra-source ordering contract, so they round-robin
/// across shards for balance.
#[derive(Debug)]
pub struct Partitioner {
    shards: usize,
    round_robin: AtomicUsize,
}

/// SplitMix64 finalizer: cheap, well-mixed 64-bit hash for small keys.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Partitioner {
    /// A partitioner over `shards` shards (at least 1).
    pub fn new(shards: usize) -> Partitioner {
        Partitioner {
            shards: shards.max(1),
            round_robin: AtomicUsize::new(0),
        }
    }

    /// The shard owning a TCP connection's frames.
    pub fn shard_for_connection(&self, conn_id: u64) -> usize {
        (splitmix64(conn_id) % self.shards as u64) as usize
    }

    /// The shard for the next connectionless (UDP) frame.
    pub fn next_round_robin(&self) -> usize {
        self.round_robin.fetch_add(1, Ordering::Relaxed) % self.shards
    }

    /// Number of shards frames are partitioned over.
    pub fn n_shards(&self) -> usize {
        self.shards
    }
}

/// Per-shard instruments, all labeled `shard=<k>`. `Default`-style
/// construction via [`ShardStats::detached`] records without exporting;
/// [`ShardStats::registered`] puts the same instruments on a shared
/// registry so a `/metrics` scrape (and `hetsyslog top`) sees one series
/// per shard.
#[derive(Debug)]
pub struct ShardStats {
    /// Frames routed into this shard's ring by the partitioner.
    pub routed: Arc<Counter>,
    /// Frames processed by this shard's worker (own ring + stolen).
    pub processed: Arc<Counter>,
    /// Frames waiting in this shard's ring, sampled at batch pickup.
    pub queue_depth: Arc<Gauge>,
    /// Whole batches this shard's worker stole from sibling rings.
    pub steals: Arc<Counter>,
    /// Frames this shard's worker stole from sibling rings.
    pub stolen_frames: Arc<Counter>,
    /// Batch sizes this shard's worker flushed (own and stolen).
    pub batch_frames: Arc<Histogram>,
    /// Classify-stage wall time for this shard's batches.
    pub classify_us: Arc<Histogram>,
    /// Store-insert-stage wall time for this shard's batches.
    pub insert_us: Arc<Histogram>,
}

impl ShardStats {
    /// Detached instruments: recording works, nothing is exported.
    pub fn detached() -> ShardStats {
        ShardStats {
            routed: Arc::new(Counter::new()),
            processed: Arc::new(Counter::new()),
            queue_depth: Arc::new(Gauge::new()),
            steals: Arc::new(Counter::new()),
            stolen_frames: Arc::new(Counter::new()),
            batch_frames: Arc::new(Histogram::new()),
            classify_us: Arc::new(Histogram::new()),
            insert_us: Arc::new(Histogram::new()),
        }
    }

    /// Instruments for shard `shard` registered on `registry`, one series
    /// per shard under a `shard` label.
    pub fn registered(shard: usize, registry: &Registry) -> ShardStats {
        let shard_label = shard.to_string();
        let labeled: &[(&str, &str)] = &[("shard", shard_label.as_str())];
        let stage = |stage: &str| {
            registry.histogram(
                "hetsyslog_shard_stage_duration_us",
                "Per-shard, per-stage batch processing time in microseconds",
                &[("shard", shard_label.as_str()), ("stage", stage)],
            )
        };
        ShardStats {
            routed: registry.counter(
                "hetsyslog_shard_frames_total",
                "Frames routed into each pipeline shard's ring",
                labeled,
            ),
            processed: registry.counter(
                "hetsyslog_shard_processed_total",
                "Frames processed by each shard's worker, own ring plus stolen",
                labeled,
            ),
            queue_depth: registry.gauge(
                "hetsyslog_shard_queue_depth",
                "Frames waiting in each shard's ring, sampled at batch pickup",
                labeled,
            ),
            steals: registry.counter(
                "hetsyslog_shard_steals_total",
                "Whole batches each shard's worker stole from sibling rings",
                labeled,
            ),
            stolen_frames: registry.counter(
                "hetsyslog_shard_stolen_frames_total",
                "Frames each shard's worker stole from sibling rings",
                labeled,
            ),
            batch_frames: registry.histogram(
                "hetsyslog_shard_batch_frames",
                "Batch sizes each shard's worker flushed, own and stolen",
                labeled,
            ),
            classify_us: stage("classify"),
            insert_us: stage("store_insert"),
        }
    }
}

/// The consume side of one shard, handed to its worker thread: the shard's
/// own ring plus a steal handle on every sibling ring (tagged with the
/// sibling's shard index, for steal attribution).
pub struct ShardReceiver<T> {
    /// This shard's index.
    pub shard: usize,
    /// The shard's own ring.
    pub own: RingConsumer<T>,
    /// `(sibling_shard, stealer)` for every other shard's ring.
    pub siblings: Vec<(usize, RingStealer<T>)>,
}

impl<T> ShardReceiver<T> {
    /// Steal one contiguous batch of up to `max` items from the deepest
    /// sibling ring whose backlog has reached at least `threshold` items,
    /// appending to `buf`. Returns `(victim_shard, stolen)` when anything
    /// was claimed. The threshold keeps stealing confined to genuinely
    /// skewed shards: pulling one or two frames off a sibling that is
    /// about to drain them anyway buys nothing and costs a lock.
    pub fn steal_batch(
        &self,
        buf: &mut Vec<T>,
        max: usize,
        threshold: usize,
    ) -> Option<(usize, usize)> {
        let victim = self
            .siblings
            .iter()
            .map(|(shard, stealer)| (*shard, stealer, stealer.len()))
            .filter(|(_, _, depth)| *depth >= threshold.max(1))
            .max_by_key(|(_, _, depth)| *depth)?;
        let (victim_shard, stealer, _) = victim;
        let stolen = stealer.steal_into(buf, max);
        (stolen > 0).then_some((victim_shard, stolen))
    }
}

/// The produce side of the shard fabric, shared by every socket thread:
/// one single-producer ring per shard, each behind a mutex so that
/// multiple connections hashed to the same shard serialize only among
/// themselves (never across shards). Dropping the router drops every
/// producer, which is the workers' graceful-drain signal.
pub struct ShardRouter<T> {
    partitioner: Partitioner,
    producers: Vec<Mutex<RingProducer<T>>>,
}

impl<T> ShardRouter<T> {
    /// Build the fabric: `shards` rings whose capacities sum to (at least)
    /// `total_depth`, so the aggregate in-flight bound matches the
    /// single-queue configuration it replaces. Returns the shared router
    /// and one [`ShardReceiver`] per shard for the worker threads.
    pub fn build(shards: usize, total_depth: usize) -> (ShardRouter<T>, Vec<ShardReceiver<T>>) {
        let shards = shards.max(1);
        let per_shard = total_depth.max(1).div_ceil(shards);
        let (producers, consumers): (Vec<_>, Vec<_>) =
            (0..shards).map(|_| spsc::ring::<T>(per_shard)).unzip();
        let stealers: Vec<RingStealer<T>> = consumers.iter().map(|c| c.stealer()).collect();
        let receivers = consumers
            .into_iter()
            .enumerate()
            .map(|(shard, own)| ShardReceiver {
                shard,
                own,
                siblings: stealers
                    .iter()
                    .enumerate()
                    .filter(|(s, _)| *s != shard)
                    .map(|(s, stealer)| (s, stealer.clone()))
                    .collect(),
            })
            .collect();
        (
            ShardRouter {
                partitioner: Partitioner::new(shards),
                producers: producers.into_iter().map(Mutex::new).collect(),
            },
            receivers,
        )
    }

    /// The partitioner (for routing decisions and tests).
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Number of shards in the fabric.
    pub fn n_shards(&self) -> usize {
        self.producers.len()
    }

    /// Per-shard ring capacity.
    pub fn shard_capacity(&self) -> usize {
        self.producers[0].lock().capacity()
    }

    /// Blocking enqueue onto `shard`'s ring (Block overload policy).
    pub fn send(&self, shard: usize, item: T) -> Result<(), SendError<T>> {
        self.producers[shard].lock().send(item)
    }

    /// Non-blocking enqueue onto `shard`'s ring (Shed overload policy).
    pub fn try_send(&self, shard: usize, item: T) -> Result<(), TrySendError<T>> {
        self.producers[shard].lock().try_send(item)
    }

    /// Blocking bulk enqueue onto `shard`'s ring.
    pub fn send_many(
        &self,
        shard: usize,
        items: impl IntoIterator<Item = T>,
    ) -> Result<(), SendError<()>> {
        self.producers[shard].lock().send_many(items)
    }

    /// Non-blocking bulk enqueue onto `shard`'s ring; returns the rejected
    /// overflow tail for dead-letter accounting.
    pub fn try_send_many(
        &self,
        shard: usize,
        items: impl IntoIterator<Item = T>,
    ) -> Result<Vec<T>, SendError<Vec<T>>> {
        self.producers[shard].lock().try_send_many(items)
    }

    /// Frames currently queued in `shard`'s ring.
    pub fn depth(&self, shard: usize) -> usize {
        self.producers[shard].lock().len()
    }

    /// Frames currently queued across every ring.
    pub fn total_depth(&self) -> usize {
        (0..self.producers.len()).map(|s| self.depth(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_placement_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 8] {
            let p = Partitioner::new(shards);
            for conn in 1..200u64 {
                let s = p.shard_for_connection(conn);
                assert!(s < shards);
                assert_eq!(s, p.shard_for_connection(conn), "placement must be stable");
            }
        }
    }

    #[test]
    fn connection_placement_spreads_across_shards() {
        let shards = 4;
        let p = Partitioner::new(shards);
        let mut counts = vec![0usize; shards];
        for conn in 1..=1000u64 {
            counts[p.shard_for_connection(conn)] += 1;
        }
        for (shard, n) in counts.iter().enumerate() {
            assert!(
                (150..=350).contains(n),
                "shard {shard} got {n}/1000 connections — hash badly skewed"
            );
        }
    }

    #[test]
    fn round_robin_cycles_evenly() {
        let p = Partitioner::new(3);
        let picks: Vec<usize> = (0..9).map(|_| p.next_round_robin()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn router_preserves_aggregate_depth_bound() {
        let (router, receivers) = ShardRouter::<u32>::build(4, 1024);
        assert_eq!(router.n_shards(), 4);
        assert_eq!(receivers.len(), 4);
        assert_eq!(router.shard_capacity(), 256);
        // Odd splits round up, never starving a shard.
        let (router, _rx) = ShardRouter::<u32>::build(3, 8);
        assert_eq!(router.shard_capacity(), 3);
        let (router, _rx) = ShardRouter::<u32>::build(4, 1);
        assert_eq!(router.shard_capacity(), 1);
    }

    #[test]
    fn steal_batch_honors_threshold_and_picks_deepest() {
        let (router, mut receivers) = ShardRouter::<u32>::build(3, 30);
        // Shard 1 has 4 queued, shard 2 has 7; shard 0 is the idle thief.
        for v in 0..4 {
            router.send(1, 100 + v).unwrap();
        }
        for v in 0..7 {
            router.send(2, 200 + v).unwrap();
        }
        let thief = receivers.remove(0);
        let mut buf = Vec::new();
        assert_eq!(
            thief.steal_batch(&mut buf, 8, 8),
            None,
            "no sibling at threshold"
        );
        let (victim, stolen) = thief.steal_batch(&mut buf, 8, 5).expect("shard 2 is deep");
        assert_eq!(victim, 2);
        assert_eq!(stolen, 7);
        assert_eq!(buf, vec![200, 201, 202, 203, 204, 205, 206]);
        assert_eq!(router.depth(2), 0);
        assert_eq!(router.depth(1), 4, "shallower sibling untouched");
    }
}
