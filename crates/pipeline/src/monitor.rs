//! Real-time classification inside the ingest path — the end state the
//! paper's Future Work aims at: "deploying our trained models on the new
//! data we stored in our collection system".

use crate::record::LogRecord;
use crate::store::LogStore;
use crossbeam::channel::{self, DrainStatus};
use hetsyslog_core::{
    BatchSnapshot, FrameOutcome, MonitorService, TextClassifier, BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a micro-batch left the assembly stage for the classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The batch reached `max_batch` frames.
    Full,
    /// `max_delay` expired with the batch partially filled.
    Deadline,
    /// The queue disconnected (graceful drain): the partial batch is
    /// flushed on the way out, losing nothing.
    Drain,
}

impl FlushReason {
    /// Map the channel-level drain status to the accounting reason.
    pub fn from_drain(status: DrainStatus) -> FlushReason {
        match status {
            DrainStatus::Filled => FlushReason::Full,
            DrainStatus::DeadlineExpired => FlushReason::Deadline,
            DrainStatus::Disconnected => FlushReason::Drain,
        }
    }
}

/// Shared, lock-free counters for a micro-batching stage: batch sizes,
/// fill latencies, queue→prediction latencies, and flush reasons. Owned by
/// the batch-draining worker loops ([`crate::listener::SyslogListener`],
/// [`ClassifyingIngest`]); snapshots into the core wire format
/// ([`BatchSnapshot`]) for [`hetsyslog_core::HealthSnapshot`].
///
/// Internally the histograms are fine-grained `obs` log-linear histograms.
/// [`BatchStats::snapshot`] folds them into the legacy log₂ arrays exactly
/// (no `obs` bucket straddles a power of two), so the wire format is
/// bit-identical to the old atomic-array implementation while
/// [`BatchStats::registered`] exposes the same instruments — at full
/// resolution — on a shared `/metrics` registry.
#[derive(Debug)]
pub struct BatchStats {
    batches: Arc<obs::Counter>,
    classified: Arc<obs::Counter>,
    deferred: Arc<obs::Counter>,
    full_flushes: Arc<obs::Counter>,
    deadline_flushes: Arc<obs::Counter>,
    drain_flushes: Arc<obs::Counter>,
    /// Weighted by batch size: a flush of N frames adds weight N to value
    /// N, so totals count frames (matching the legacy array).
    batch_size_frames: Arc<obs::Histogram>,
    fill_latency_us: Arc<obs::Histogram>,
    queue_latency_us: Arc<obs::Histogram>,
}

impl Default for BatchStats {
    fn default() -> BatchStats {
        BatchStats {
            batches: Arc::new(obs::Counter::new()),
            classified: Arc::new(obs::Counter::new()),
            deferred: Arc::new(obs::Counter::new()),
            full_flushes: Arc::new(obs::Counter::new()),
            deadline_flushes: Arc::new(obs::Counter::new()),
            drain_flushes: Arc::new(obs::Counter::new()),
            batch_size_frames: Arc::new(obs::Histogram::new()),
            fill_latency_us: Arc::new(obs::Histogram::new()),
            queue_latency_us: Arc::new(obs::Histogram::new()),
        }
    }
}

impl BatchStats {
    /// New zeroed counters, detached from any registry (recording works,
    /// nothing is exported).
    pub fn new() -> BatchStats {
        BatchStats::default()
    }

    /// Counters backed by shared registry instruments: every record lands
    /// on `/metrics` as it happens. Two stages registering on the same
    /// registry share the same series.
    pub fn registered(registry: &obs::Registry) -> BatchStats {
        let flush = |reason: &str| {
            registry.counter(
                "hetsyslog_batch_flushes_total",
                "Batches dispatched, by flush reason",
                &[("reason", reason)],
            )
        };
        BatchStats {
            batches: registry.counter(
                "hetsyslog_batch_batches_total",
                "Batches dispatched to the classify/store stage",
                &[],
            ),
            classified: registry.counter(
                "hetsyslog_batch_classified_total",
                "Frames classified through dispatched batches",
                &[],
            ),
            deferred: registry.counter(
                "hetsyslog_batch_deferred_total",
                "Frames that waited on the batching deadline",
                &[],
            ),
            full_flushes: flush("full"),
            deadline_flushes: flush("deadline"),
            drain_flushes: flush("drain"),
            batch_size_frames: registry.histogram(
                "hetsyslog_batch_size_frames",
                "Frames by the size of the batch that carried them",
                &[],
            ),
            fill_latency_us: registry.histogram(
                "hetsyslog_batch_fill_duration_us",
                "Batch assembly time past the first frame, microseconds",
                &[],
            ),
            queue_latency_us: registry.histogram(
                "hetsyslog_batch_queue_delay_us",
                "Frame queue->prediction latency, microseconds",
                &[],
            ),
        }
    }

    /// Record one dispatched batch: its size (frames), how many of those
    /// frames produced predictions, how long the batch waited to assemble
    /// after its first frame, and why it was flushed.
    pub fn record_flush(
        &self,
        size: usize,
        classified: u64,
        fill_latency: Duration,
        reason: FlushReason,
    ) {
        self.batches.inc();
        self.classified.add(classified);
        self.batch_size_frames
            .record_weighted(size as u64, size as u64);
        self.fill_latency_us.record_duration_us(fill_latency);
        match reason {
            FlushReason::Full => self.full_flushes.inc(),
            FlushReason::Deadline => {
                self.deferred.add(size as u64);
                self.deadline_flushes.inc();
            }
            FlushReason::Drain => self.drain_flushes.inc(),
        };
    }

    /// Record one frame's queue→prediction latency (submit at the socket
    /// edge to batch dispatch completion).
    pub fn record_queue_latency(&self, latency: Duration) {
        self.queue_latency_us.record_duration_us(latency);
    }

    /// Point-in-time snapshot in the core wire format: the fine-grained
    /// histograms fold into the legacy log₂ arrays exactly.
    pub fn snapshot(&self) -> BatchSnapshot {
        BatchSnapshot {
            batches: self.batches.get(),
            classified: self.classified.get(),
            deferred: self.deferred.get(),
            full_flushes: self.full_flushes.get(),
            deadline_flushes: self.deadline_flushes.get(),
            drain_flushes: self.drain_flushes.get(),
            batch_size_hist: self
                .batch_size_frames
                .snapshot()
                .counts_log2::<BATCH_SIZE_BUCKETS>(),
            fill_latency_us_hist: self
                .fill_latency_us
                .snapshot()
                .counts_log2::<LATENCY_BUCKETS>(),
            queue_latency_us_hist: self
                .queue_latency_us
                .snapshot()
                .counts_log2::<LATENCY_BUCKETS>(),
        }
    }
}

/// Ingest + classify report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassifyReport {
    /// Records stored.
    pub ingested: u64,
    /// Records dropped by the noise pre-filter (not stored with category).
    pub prefiltered: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl ClassifyReport {
    /// End-to-end classified-ingest throughput.
    pub fn messages_per_second(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.ingested as f64 / self.seconds
        }
    }
}

/// An ingest pipeline that classifies every record in flight via a
/// [`MonitorService`] (classifier + optional pre-filter + alerting) before
/// storing it.
///
/// Workers drain the bounded frame queue with the same
/// drain-up-to-`max_batch`-or-`max_delay` policy as the socket listener,
/// then push each batch through one fused
/// [`MonitorService::ingest_frames`] call — parse → tokenize → CSR
/// transform → batch predict — instead of N scalar round-trips.
/// `max_batch = 1` degenerates to the scalar per-frame path.
pub struct ClassifyingIngest {
    store: Arc<LogStore>,
    service: Arc<MonitorService>,
    workers: usize,
    fallback_time: i64,
    max_batch: usize,
    max_delay: Duration,
    batch_stats: Arc<BatchStats>,
    fan_out: Option<Arc<crate::sink::FanOut>>,
}

impl ClassifyingIngest {
    /// Build over a shared store and monitor service.
    pub fn new(
        store: Arc<LogStore>,
        service: Arc<MonitorService>,
        workers: usize,
    ) -> ClassifyingIngest {
        ClassifyingIngest {
            store,
            service,
            workers: workers.max(1),
            fallback_time: 0,
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            batch_stats: Arc::new(BatchStats::new()),
            fan_out: None,
        }
    }

    /// Set the fallback event time.
    pub fn with_fallback_time(mut self, t: i64) -> ClassifyingIngest {
        self.fallback_time = t;
        self
    }

    /// Tune the micro-batching knobs: at most `max_batch` frames per fused
    /// classify call, assembled for at most `max_delay` past the first
    /// frame. `max_batch = 1` is the scalar path.
    pub fn with_batching(mut self, max_batch: usize, max_delay: Duration) -> ClassifyingIngest {
        self.max_batch = max_batch.max(1);
        self.max_delay = max_delay;
        self
    }

    /// Fan every stored batch out to the given sink router as well (see
    /// [`crate::sink::FanOut`]): each classified micro-batch is submitted
    /// to the sinks right before the store insert, with per-lane overload
    /// and spill semantics.
    pub fn with_fan_out(mut self, fan_out: Arc<crate::sink::FanOut>) -> ClassifyingIngest {
        self.fan_out = Some(fan_out);
        self
    }

    /// Register this pipeline's instruments on a shared telemetry bundle:
    /// the batch counters become registry-backed, and the monitor service
    /// (plus its classifier and the store) attach theirs too.
    pub fn with_telemetry(mut self, telemetry: &Arc<obs::Telemetry>) -> ClassifyingIngest {
        self.batch_stats = Arc::new(BatchStats::registered(&telemetry.registry));
        self.service.attach_telemetry(&telemetry.registry);
        self.store.attach_telemetry(&telemetry.registry);
        self
    }

    /// Run to completion over raw frames. Pre-filtered (noise) records are
    /// still stored — with `category = None` — so the store stays complete
    /// while the classifier and alert path skip them.
    pub fn run<I>(&self, frames: I) -> ClassifyReport
    where
        I: IntoIterator<Item = String>,
    {
        let started = Instant::now();
        let (tx, rx) = channel::bounded::<String>(8192);
        let ingested = AtomicU64::new(0);
        let prefiltered = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let rx = rx.clone();
                let store = &self.store;
                let service = &self.service;
                let ingested = &ingested;
                let prefiltered = &prefiltered;
                let fallback_time = self.fallback_time;
                let max_batch = self.max_batch;
                let max_delay = self.max_delay;
                let batch_stats = &self.batch_stats;
                let fan_out = &self.fan_out;
                scope.spawn(move || {
                    let mut batch: Vec<String> = Vec::with_capacity(max_batch);
                    // First frame blocks; the rest of the batch fills
                    // until max_batch frames or max_delay elapses.
                    while let Ok(first) = rx.recv() {
                        let fill_started = Instant::now();
                        batch.clear();
                        batch.push(first);
                        let status = if max_batch > 1 {
                            rx.drain_into(&mut batch, max_batch, fill_started + max_delay)
                        } else {
                            DrainStatus::Filled
                        };
                        let fill_latency = fill_started.elapsed();

                        let texts: Vec<&str> = batch.iter().map(|f| f.as_str()).collect();
                        let outcomes = service.ingest_frames(&texts);
                        let mut classified = 0u64;
                        let mut records: Vec<LogRecord> = Vec::with_capacity(batch.len());
                        for outcome in outcomes {
                            let (msg, category) = match outcome {
                                FrameOutcome::Classified {
                                    message,
                                    prediction,
                                } => {
                                    classified += 1;
                                    (message, Some(prediction.category))
                                }
                                FrameOutcome::Prefiltered { message } => {
                                    prefiltered.fetch_add(1, Ordering::Relaxed);
                                    (message, None)
                                }
                                // Unparseable frames were never stored on
                                // the scalar path either.
                                FrameOutcome::ParseError => continue,
                            };
                            let mut record =
                                LogRecord::from_message(store.allocate_id(), &msg, fallback_time);
                            record.category = category;
                            records.push(record);
                        }
                        // Sinks see the classified batch before the store
                        // consumes it (each lane clones its own copy).
                        if let Some(fan_out) = fan_out {
                            fan_out.submit(&records);
                        }
                        ingested.fetch_add(records.len() as u64, Ordering::Relaxed);
                        for record in records {
                            store.insert(record);
                        }
                        batch_stats.record_flush(
                            batch.len(),
                            classified,
                            fill_latency,
                            FlushReason::from_drain(status),
                        );
                    }
                });
            }
            drop(rx);
            for frame in frames {
                if tx.send(frame).is_err() {
                    break;
                }
            }
            drop(tx);
        });

        ClassifyReport {
            ingested: ingested.into_inner(),
            prefiltered: prefiltered.into_inner(),
            seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// The monitor service (for stats / alert inspection).
    pub fn service(&self) -> &MonitorService {
        &self.service
    }

    /// Micro-batching counters accumulated across runs.
    pub fn batch_stats(&self) -> BatchSnapshot {
        self.batch_stats.snapshot()
    }

    /// Per-sink delivery ledgers, when a fan-out is attached.
    pub fn sink_snapshots(&self) -> Option<Vec<crate::sink::SinkSnapshot>> {
        self.fan_out.as_ref().map(|f| f.snapshots())
    }

    /// The attached sink router, when any.
    pub fn fan_out(&self) -> Option<&Arc<crate::sink::FanOut>> {
        self.fan_out.as_ref()
    }
}

/// Convenience: build a [`ClassifyingIngest`] from a bare classifier with
/// no pre-filter or alerting.
pub fn classifying_ingest(
    store: Arc<LogStore>,
    classifier: Arc<dyn TextClassifier>,
    workers: usize,
) -> ClassifyingIngest {
    ClassifyingIngest::new(store, Arc::new(MonitorService::new(classifier)), workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsyslog_core::{batch_size_bucket, latency_bucket_us, Category, NoiseFilter, Prediction};

    /// A recorded batching workload: (batch size, fill latency µs, queue
    /// latencies µs, flush reason). Mixes every reason, size-0 and size-1
    /// edge batches, bucket-boundary sizes/latencies, and values past the
    /// legacy histograms' last bucket.
    fn recorded_workload() -> Vec<(usize, u64, Vec<u64>, FlushReason)> {
        let mut workload = vec![
            (0, 0, vec![], FlushReason::Drain),
            (1, 1, vec![0], FlushReason::Full),
            (2, 2, vec![1, 2], FlushReason::Deadline),
            (3, 3, vec![3, 4, 7], FlushReason::Full),
            (64, 4095, vec![8, 100_000], FlushReason::Full),
            (255, 1 << 19, vec![1 << 21], FlushReason::Deadline),
            (256, 1 << 20, vec![1 << 25], FlushReason::Full),
            (10_000, u64::MAX / 2, vec![u64::MAX / 2], FlushReason::Drain),
        ];
        for i in 0..200u64 {
            workload.push((
                (i as usize * 7 + 1) % 300,
                i * i * 31,
                vec![i * 13, i * 997],
                match i % 3 {
                    0 => FlushReason::Full,
                    1 => FlushReason::Deadline,
                    _ => FlushReason::Drain,
                },
            ));
        }
        workload
    }

    /// The issue's migration-parity gate: the obs-backed [`BatchStats`]
    /// must reproduce the legacy atomic-array snapshot bit-for-bit —
    /// identical counts and identical per-bucket sums — on a recorded
    /// workload. The reference below is the old implementation's exact
    /// arithmetic, inlined.
    #[test]
    fn obs_backed_snapshot_matches_legacy_arrays_exactly() {
        let stats = BatchStats::new();
        let mut legacy = BatchSnapshot::default();
        for (size, fill_us, queue_us, reason) in recorded_workload() {
            stats.record_flush(
                size,
                size as u64 / 2,
                Duration::from_micros(fill_us),
                reason,
            );
            legacy.batches += 1;
            legacy.classified += size as u64 / 2;
            legacy.batch_size_hist[batch_size_bucket(size)] += size as u64;
            legacy.fill_latency_us_hist[latency_bucket_us(fill_us)] += 1;
            match reason {
                FlushReason::Full => legacy.full_flushes += 1,
                FlushReason::Deadline => {
                    legacy.deferred += size as u64;
                    legacy.deadline_flushes += 1;
                }
                FlushReason::Drain => legacy.drain_flushes += 1,
            }
            for us in queue_us {
                stats.record_queue_latency(Duration::from_micros(us));
                legacy.queue_latency_us_hist[latency_bucket_us(us)] += 1;
            }
        }
        assert_eq!(stats.snapshot(), legacy);
        // Registered stats go through the same instruments: same parity.
        let registry = obs::Registry::new();
        let registered = BatchStats::registered(&registry);
        for (size, fill_us, queue_us, reason) in recorded_workload() {
            registered.record_flush(
                size,
                size as u64 / 2,
                Duration::from_micros(fill_us),
                reason,
            );
            for us in queue_us {
                registered.record_queue_latency(Duration::from_micros(us));
            }
        }
        assert_eq!(registered.snapshot(), legacy);
        assert_eq!(
            registry.counter_value("hetsyslog_batch_batches_total", &[]),
            Some(legacy.batches)
        );
    }

    struct Stub;
    impl TextClassifier for Stub {
        fn name(&self) -> String {
            "stub".into()
        }
        fn classify(&self, message: &str) -> Prediction {
            if message.contains("throttled") {
                Prediction::bare(Category::ThermalIssue)
            } else {
                Prediction::bare(Category::Unimportant)
            }
        }
    }

    #[test]
    fn classifies_in_flight() {
        let store = Arc::new(LogStore::new());
        let ingest = classifying_ingest(store.clone(), Arc::new(Stub), 2);
        let frames = vec![
            "<13>Oct 11 22:14:15 cn0001 kernel: cpu clock throttled".to_string(),
            "<13>Oct 11 22:14:16 cn0002 systemd: Started Session 1".to_string(),
        ];
        let report = ingest.run(frames);
        assert_eq!(report.ingested, 2);
        let hot = store.search(0, i64::MAX / 2, &["throttled".to_string()]);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].category, Some(Category::ThermalIssue));
        assert_eq!(ingest.service().stats().total, 2);
    }

    #[test]
    fn prefiltered_records_stored_unclassified() {
        let mut filter = NoiseFilter::empty(2);
        filter.add_pattern("Started Session 1");
        let service = Arc::new(
            hetsyslog_core::MonitorService::new(Arc::new(Stub) as Arc<dyn TextClassifier>)
                .with_prefilter(filter),
        );
        let store = Arc::new(LogStore::new());
        let ingest = ClassifyingIngest::new(store.clone(), service, 2);
        let report = ingest.run(vec![
            "<13>Oct 11 22:14:16 cn0002 systemd: Started Session 1".to_string(),
        ]);
        assert_eq!(report.ingested, 1);
        assert_eq!(report.prefiltered, 1);
        let all = store.search(0, i64::MAX / 2, &[]);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].category, None);
    }

    #[test]
    fn concurrent_classification_volume() {
        let store = Arc::new(LogStore::new());
        let ingest = classifying_ingest(store.clone(), Arc::new(Stub), 4);
        let frames: Vec<String> = (0..2000)
            .map(|i| {
                format!(
                    "<13>Oct 11 22:{:02}:{:02} cn0001 kernel: cpu clock throttled {i}",
                    i / 60 % 60,
                    i % 60
                )
            })
            .collect();
        let report = ingest.run(frames);
        assert_eq!(report.ingested, 2000);
        assert_eq!(ingest.service().stats().count(Category::ThermalIssue), 2000);
    }
}
