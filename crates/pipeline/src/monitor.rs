//! Real-time classification inside the ingest path — the end state the
//! paper's Future Work aims at: "deploying our trained models on the new
//! data we stored in our collection system".

use crate::record::LogRecord;
use crate::store::LogStore;
use crossbeam::channel::{self, DrainStatus};
use hetsyslog_core::{
    batch_size_bucket, latency_bucket_us, BatchSnapshot, FrameOutcome, MonitorService,
    TextClassifier, BATCH_SIZE_BUCKETS, LATENCY_BUCKETS,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a micro-batch left the assembly stage for the classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The batch reached `max_batch` frames.
    Full,
    /// `max_delay` expired with the batch partially filled.
    Deadline,
    /// The queue disconnected (graceful drain): the partial batch is
    /// flushed on the way out, losing nothing.
    Drain,
}

impl FlushReason {
    /// Map the channel-level drain status to the accounting reason.
    pub fn from_drain(status: DrainStatus) -> FlushReason {
        match status {
            DrainStatus::Filled => FlushReason::Full,
            DrainStatus::DeadlineExpired => FlushReason::Deadline,
            DrainStatus::Disconnected => FlushReason::Drain,
        }
    }
}

/// Shared, lock-free counters for a micro-batching stage: batch sizes,
/// fill latencies, queue→prediction latencies, and flush reasons. Owned by
/// the batch-draining worker loops ([`crate::listener::SyslogListener`],
/// [`ClassifyingIngest`]); snapshots into the core wire format
/// ([`BatchSnapshot`]) for [`hetsyslog_core::HealthSnapshot`].
#[derive(Debug)]
pub struct BatchStats {
    batches: AtomicU64,
    classified: AtomicU64,
    deferred: AtomicU64,
    full_flushes: AtomicU64,
    deadline_flushes: AtomicU64,
    drain_flushes: AtomicU64,
    batch_size_hist: [AtomicU64; BATCH_SIZE_BUCKETS],
    fill_latency_us_hist: [AtomicU64; LATENCY_BUCKETS],
    queue_latency_us_hist: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for BatchStats {
    fn default() -> BatchStats {
        BatchStats {
            batches: AtomicU64::new(0),
            classified: AtomicU64::new(0),
            deferred: AtomicU64::new(0),
            full_flushes: AtomicU64::new(0),
            deadline_flushes: AtomicU64::new(0),
            drain_flushes: AtomicU64::new(0),
            batch_size_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            fill_latency_us_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            queue_latency_us_hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl BatchStats {
    /// New zeroed counters.
    pub fn new() -> BatchStats {
        BatchStats::default()
    }

    /// Record one dispatched batch: its size (frames), how many of those
    /// frames produced predictions, how long the batch waited to assemble
    /// after its first frame, and why it was flushed.
    pub fn record_flush(
        &self,
        size: usize,
        classified: u64,
        fill_latency: Duration,
        reason: FlushReason,
    ) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.classified.fetch_add(classified, Ordering::Relaxed);
        self.batch_size_hist[batch_size_bucket(size)].fetch_add(size as u64, Ordering::Relaxed);
        let fill_us = fill_latency.as_micros().min(u64::MAX as u128) as u64;
        self.fill_latency_us_hist[latency_bucket_us(fill_us)].fetch_add(1, Ordering::Relaxed);
        match reason {
            FlushReason::Full => self.full_flushes.fetch_add(1, Ordering::Relaxed),
            FlushReason::Deadline => {
                self.deferred.fetch_add(size as u64, Ordering::Relaxed);
                self.deadline_flushes.fetch_add(1, Ordering::Relaxed)
            }
            FlushReason::Drain => self.drain_flushes.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Record one frame's queue→prediction latency (submit at the socket
    /// edge to batch dispatch completion).
    pub fn record_queue_latency(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.queue_latency_us_hist[latency_bucket_us(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot in the core wire format.
    pub fn snapshot(&self) -> BatchSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        BatchSnapshot {
            batches: load(&self.batches),
            classified: load(&self.classified),
            deferred: load(&self.deferred),
            full_flushes: load(&self.full_flushes),
            deadline_flushes: load(&self.deadline_flushes),
            drain_flushes: load(&self.drain_flushes),
            batch_size_hist: std::array::from_fn(|i| load(&self.batch_size_hist[i])),
            fill_latency_us_hist: std::array::from_fn(|i| load(&self.fill_latency_us_hist[i])),
            queue_latency_us_hist: std::array::from_fn(|i| load(&self.queue_latency_us_hist[i])),
        }
    }
}

/// Ingest + classify report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassifyReport {
    /// Records stored.
    pub ingested: u64,
    /// Records dropped by the noise pre-filter (not stored with category).
    pub prefiltered: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl ClassifyReport {
    /// End-to-end classified-ingest throughput.
    pub fn messages_per_second(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.ingested as f64 / self.seconds
        }
    }
}

/// An ingest pipeline that classifies every record in flight via a
/// [`MonitorService`] (classifier + optional pre-filter + alerting) before
/// storing it.
///
/// Workers drain the bounded frame queue with the same
/// drain-up-to-`max_batch`-or-`max_delay` policy as the socket listener,
/// then push each batch through one fused
/// [`MonitorService::ingest_frames`] call — parse → tokenize → CSR
/// transform → batch predict — instead of N scalar round-trips.
/// `max_batch = 1` degenerates to the scalar per-frame path.
pub struct ClassifyingIngest {
    store: Arc<LogStore>,
    service: Arc<MonitorService>,
    workers: usize,
    fallback_time: i64,
    max_batch: usize,
    max_delay: Duration,
    batch_stats: Arc<BatchStats>,
}

impl ClassifyingIngest {
    /// Build over a shared store and monitor service.
    pub fn new(
        store: Arc<LogStore>,
        service: Arc<MonitorService>,
        workers: usize,
    ) -> ClassifyingIngest {
        ClassifyingIngest {
            store,
            service,
            workers: workers.max(1),
            fallback_time: 0,
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            batch_stats: Arc::new(BatchStats::new()),
        }
    }

    /// Set the fallback event time.
    pub fn with_fallback_time(mut self, t: i64) -> ClassifyingIngest {
        self.fallback_time = t;
        self
    }

    /// Tune the micro-batching knobs: at most `max_batch` frames per fused
    /// classify call, assembled for at most `max_delay` past the first
    /// frame. `max_batch = 1` is the scalar path.
    pub fn with_batching(mut self, max_batch: usize, max_delay: Duration) -> ClassifyingIngest {
        self.max_batch = max_batch.max(1);
        self.max_delay = max_delay;
        self
    }

    /// Run to completion over raw frames. Pre-filtered (noise) records are
    /// still stored — with `category = None` — so the store stays complete
    /// while the classifier and alert path skip them.
    pub fn run<I>(&self, frames: I) -> ClassifyReport
    where
        I: IntoIterator<Item = String>,
    {
        let started = Instant::now();
        let (tx, rx) = channel::bounded::<String>(8192);
        let ingested = AtomicU64::new(0);
        let prefiltered = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let rx = rx.clone();
                let store = &self.store;
                let service = &self.service;
                let ingested = &ingested;
                let prefiltered = &prefiltered;
                let fallback_time = self.fallback_time;
                let max_batch = self.max_batch;
                let max_delay = self.max_delay;
                let batch_stats = &self.batch_stats;
                scope.spawn(move || {
                    let mut batch: Vec<String> = Vec::with_capacity(max_batch);
                    // First frame blocks; the rest of the batch fills
                    // until max_batch frames or max_delay elapses.
                    while let Ok(first) = rx.recv() {
                        let fill_started = Instant::now();
                        batch.clear();
                        batch.push(first);
                        let status = if max_batch > 1 {
                            rx.drain_into(&mut batch, max_batch, fill_started + max_delay)
                        } else {
                            DrainStatus::Filled
                        };
                        let fill_latency = fill_started.elapsed();

                        let texts: Vec<&str> = batch.iter().map(|f| f.as_str()).collect();
                        let outcomes = service.ingest_frames(&texts);
                        let mut classified = 0u64;
                        for outcome in outcomes {
                            let (msg, category) = match outcome {
                                FrameOutcome::Classified {
                                    message,
                                    prediction,
                                } => {
                                    classified += 1;
                                    (message, Some(prediction.category))
                                }
                                FrameOutcome::Prefiltered { message } => {
                                    prefiltered.fetch_add(1, Ordering::Relaxed);
                                    (message, None)
                                }
                                // Unparseable frames were never stored on
                                // the scalar path either.
                                FrameOutcome::ParseError => continue,
                            };
                            let mut record =
                                LogRecord::from_message(store.allocate_id(), &msg, fallback_time);
                            record.category = category;
                            store.insert(record);
                            ingested.fetch_add(1, Ordering::Relaxed);
                        }
                        batch_stats.record_flush(
                            batch.len(),
                            classified,
                            fill_latency,
                            FlushReason::from_drain(status),
                        );
                    }
                });
            }
            drop(rx);
            for frame in frames {
                if tx.send(frame).is_err() {
                    break;
                }
            }
            drop(tx);
        });

        ClassifyReport {
            ingested: ingested.into_inner(),
            prefiltered: prefiltered.into_inner(),
            seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// The monitor service (for stats / alert inspection).
    pub fn service(&self) -> &MonitorService {
        &self.service
    }

    /// Micro-batching counters accumulated across runs.
    pub fn batch_stats(&self) -> BatchSnapshot {
        self.batch_stats.snapshot()
    }
}

/// Convenience: build a [`ClassifyingIngest`] from a bare classifier with
/// no pre-filter or alerting.
pub fn classifying_ingest(
    store: Arc<LogStore>,
    classifier: Arc<dyn TextClassifier>,
    workers: usize,
) -> ClassifyingIngest {
    ClassifyingIngest::new(store, Arc::new(MonitorService::new(classifier)), workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsyslog_core::{Category, NoiseFilter, Prediction};

    struct Stub;
    impl TextClassifier for Stub {
        fn name(&self) -> String {
            "stub".into()
        }
        fn classify(&self, message: &str) -> Prediction {
            if message.contains("throttled") {
                Prediction::bare(Category::ThermalIssue)
            } else {
                Prediction::bare(Category::Unimportant)
            }
        }
    }

    #[test]
    fn classifies_in_flight() {
        let store = Arc::new(LogStore::new());
        let ingest = classifying_ingest(store.clone(), Arc::new(Stub), 2);
        let frames = vec![
            "<13>Oct 11 22:14:15 cn0001 kernel: cpu clock throttled".to_string(),
            "<13>Oct 11 22:14:16 cn0002 systemd: Started Session 1".to_string(),
        ];
        let report = ingest.run(frames);
        assert_eq!(report.ingested, 2);
        let hot = store.search(0, i64::MAX / 2, &["throttled".to_string()]);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].category, Some(Category::ThermalIssue));
        assert_eq!(ingest.service().stats().total, 2);
    }

    #[test]
    fn prefiltered_records_stored_unclassified() {
        let mut filter = NoiseFilter::empty(2);
        filter.add_pattern("Started Session 1");
        let service = Arc::new(
            hetsyslog_core::MonitorService::new(Arc::new(Stub) as Arc<dyn TextClassifier>)
                .with_prefilter(filter),
        );
        let store = Arc::new(LogStore::new());
        let ingest = ClassifyingIngest::new(store.clone(), service, 2);
        let report = ingest.run(vec![
            "<13>Oct 11 22:14:16 cn0002 systemd: Started Session 1".to_string(),
        ]);
        assert_eq!(report.ingested, 1);
        assert_eq!(report.prefiltered, 1);
        let all = store.search(0, i64::MAX / 2, &[]);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].category, None);
    }

    #[test]
    fn concurrent_classification_volume() {
        let store = Arc::new(LogStore::new());
        let ingest = classifying_ingest(store.clone(), Arc::new(Stub), 4);
        let frames: Vec<String> = (0..2000)
            .map(|i| {
                format!(
                    "<13>Oct 11 22:{:02}:{:02} cn0001 kernel: cpu clock throttled {i}",
                    i / 60 % 60,
                    i % 60
                )
            })
            .collect();
        let report = ingest.run(frames);
        assert_eq!(report.ingested, 2000);
        assert_eq!(ingest.service().stats().count(Category::ThermalIssue), 2000);
    }
}
