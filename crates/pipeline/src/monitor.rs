//! Real-time classification inside the ingest path — the end state the
//! paper's Future Work aims at: "deploying our trained models on the new
//! data we stored in our collection system".

use crate::record::LogRecord;
use crate::store::LogStore;
use crossbeam::channel;
use hetsyslog_core::{MonitorService, TextClassifier};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Ingest + classify report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassifyReport {
    /// Records stored.
    pub ingested: u64,
    /// Records dropped by the noise pre-filter (not stored with category).
    pub prefiltered: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl ClassifyReport {
    /// End-to-end classified-ingest throughput.
    pub fn messages_per_second(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.ingested as f64 / self.seconds
        }
    }
}

/// An ingest pipeline that classifies every record in flight via a
/// [`MonitorService`] (classifier + optional pre-filter + alerting) before
/// storing it.
pub struct ClassifyingIngest {
    store: Arc<LogStore>,
    service: Arc<MonitorService>,
    workers: usize,
    fallback_time: i64,
}

impl ClassifyingIngest {
    /// Build over a shared store and monitor service.
    pub fn new(
        store: Arc<LogStore>,
        service: Arc<MonitorService>,
        workers: usize,
    ) -> ClassifyingIngest {
        ClassifyingIngest {
            store,
            service,
            workers: workers.max(1),
            fallback_time: 0,
        }
    }

    /// Set the fallback event time.
    pub fn with_fallback_time(mut self, t: i64) -> ClassifyingIngest {
        self.fallback_time = t;
        self
    }

    /// Run to completion over raw frames. Pre-filtered (noise) records are
    /// still stored — with `category = None` — so the store stays complete
    /// while the classifier and alert path skip them.
    pub fn run<I>(&self, frames: I) -> ClassifyReport
    where
        I: IntoIterator<Item = String>,
    {
        let started = Instant::now();
        let (tx, rx) = channel::bounded::<String>(8192);
        let ingested = AtomicU64::new(0);
        let prefiltered = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let rx = rx.clone();
                let store = &self.store;
                let service = &self.service;
                let ingested = &ingested;
                let prefiltered = &prefiltered;
                let fallback_time = self.fallback_time;
                scope.spawn(move || {
                    for frame in rx.iter() {
                        let Ok(msg) = syslog_model::parse(&frame) else {
                            continue;
                        };
                        let mut record =
                            LogRecord::from_message(store.allocate_id(), &msg, fallback_time);
                        match service.ingest(&record.message) {
                            Some(prediction) => {
                                record.category = Some(prediction.category);
                            }
                            None => {
                                prefiltered.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        store.insert(record);
                        ingested.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            drop(rx);
            for frame in frames {
                if tx.send(frame).is_err() {
                    break;
                }
            }
            drop(tx);
        });

        ClassifyReport {
            ingested: ingested.into_inner(),
            prefiltered: prefiltered.into_inner(),
            seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// The monitor service (for stats / alert inspection).
    pub fn service(&self) -> &MonitorService {
        &self.service
    }
}

/// Convenience: build a [`ClassifyingIngest`] from a bare classifier with
/// no pre-filter or alerting.
pub fn classifying_ingest(
    store: Arc<LogStore>,
    classifier: Arc<dyn TextClassifier>,
    workers: usize,
) -> ClassifyingIngest {
    ClassifyingIngest::new(store, Arc::new(MonitorService::new(classifier)), workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsyslog_core::{Category, NoiseFilter, Prediction};

    struct Stub;
    impl TextClassifier for Stub {
        fn name(&self) -> String {
            "stub".into()
        }
        fn classify(&self, message: &str) -> Prediction {
            if message.contains("throttled") {
                Prediction::bare(Category::ThermalIssue)
            } else {
                Prediction::bare(Category::Unimportant)
            }
        }
    }

    #[test]
    fn classifies_in_flight() {
        let store = Arc::new(LogStore::new());
        let ingest = classifying_ingest(store.clone(), Arc::new(Stub), 2);
        let frames = vec![
            "<13>Oct 11 22:14:15 cn0001 kernel: cpu clock throttled".to_string(),
            "<13>Oct 11 22:14:16 cn0002 systemd: Started Session 1".to_string(),
        ];
        let report = ingest.run(frames);
        assert_eq!(report.ingested, 2);
        let hot = store.search(0, i64::MAX / 2, &["throttled".to_string()]);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].category, Some(Category::ThermalIssue));
        assert_eq!(ingest.service().stats().total, 2);
    }

    #[test]
    fn prefiltered_records_stored_unclassified() {
        let mut filter = NoiseFilter::empty(2);
        filter.add_pattern("Started Session 1");
        let service = Arc::new(
            hetsyslog_core::MonitorService::new(Arc::new(Stub) as Arc<dyn TextClassifier>)
                .with_prefilter(filter),
        );
        let store = Arc::new(LogStore::new());
        let ingest = ClassifyingIngest::new(store.clone(), service, 2);
        let report = ingest.run(vec![
            "<13>Oct 11 22:14:16 cn0002 systemd: Started Session 1".to_string(),
        ]);
        assert_eq!(report.ingested, 1);
        assert_eq!(report.prefiltered, 1);
        let all = store.search(0, i64::MAX / 2, &[]);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].category, None);
    }

    #[test]
    fn concurrent_classification_volume() {
        let store = Arc::new(LogStore::new());
        let ingest = classifying_ingest(store.clone(), Arc::new(Stub), 4);
        let frames: Vec<String> = (0..2000)
            .map(|i| {
                format!(
                    "<13>Oct 11 22:{:02}:{:02} cn0001 kernel: cpu clock throttled {i}",
                    i / 60 % 60,
                    i % 60
                )
            })
            .collect();
        let report = ingest.run(frames);
        assert_eq!(report.ingested, 2000);
        assert_eq!(ingest.service().stats().count(Category::ThermalIssue), 2000);
    }
}
