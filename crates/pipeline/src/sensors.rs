//! IPMI sensor-reading comparison across architecture peers — the concrete
//! §4.5.3 example.
//!
//! "Fans or thermal sensors will occasionally report through IPMI that
//! they are not functioning or the reading for those sensors are unusually
//! high or low, however when comparing readings from other nodes from the
//! same architecture the readings are exactly the same" — i.e. early-access
//! chassis firmware lies consistently, and the tell is *identical* readings
//! across every peer, not a statistical outlier.
//!
//! This module models that workflow: a stream of [`SensorReading`]s, a
//! synthetic generator with injectable per-node faults and arch-wide
//! firmware quirks, and [`compare_to_arch_peers`] producing the §4.5.3
//! verdict.

use crate::topology::{Architecture, ClusterTopology};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One IPMI sensor sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorReading {
    /// Node name.
    pub node: String,
    /// Sensor id (`CPU_Temp`, `Fan4`, …).
    pub sensor: String,
    /// The reading.
    pub value: f64,
    /// Sample time, Unix seconds.
    pub unix_seconds: i64,
}

/// Verdict of the per-architecture sensor comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SensorVerdict {
    /// Reading is consistent with architecture peers.
    Nominal,
    /// Reading deviates from peers — a genuine per-node issue.
    Anomalous {
        /// The node's reading.
        value: f64,
        /// Peer mean.
        peer_mean: f64,
        /// Peer standard deviation.
        peer_std: f64,
    },
    /// Every peer reports exactly this value — the §4.5.3 firmware
    /// false positive; the node is fine.
    IdenticalAcrossArch {
        /// The shared (bogus) reading.
        value: f64,
    },
}

/// Latest reading per node for `sensor`, restricted to `arch` peers.
fn latest_per_peer<'a>(
    topology: &ClusterTopology,
    readings: &'a [SensorReading],
    arch: Architecture,
    sensor: &str,
) -> BTreeMap<&'a str, f64> {
    let mut latest: BTreeMap<&str, (i64, f64)> = BTreeMap::new();
    for r in readings {
        if r.sensor != sensor {
            continue;
        }
        let Some(node) = topology.node(&r.node) else {
            continue;
        };
        if node.arch != arch {
            continue;
        }
        match latest.get(r.node.as_str()) {
            Some(&(t, _)) if t >= r.unix_seconds => {}
            _ => {
                latest.insert(&r.node, (r.unix_seconds, r.value));
            }
        }
    }
    latest.into_iter().map(|(n, (_, v))| (n, v)).collect()
}

/// Compare `node`'s latest `sensor` reading against same-architecture
/// peers. `k` is the σ multiplier for the anomaly threshold.
///
/// Returns `None` when the node is unknown or has no reading.
pub fn compare_to_arch_peers(
    topology: &ClusterTopology,
    readings: &[SensorReading],
    node_name: &str,
    sensor: &str,
    k: f64,
) -> Option<SensorVerdict> {
    let node = topology.node(node_name)?;
    let per_peer = latest_per_peer(topology, readings, node.arch, sensor);
    let own = *per_peer.get(node_name)?;
    let peers: Vec<f64> = per_peer
        .iter()
        .filter(|(n, _)| **n != node_name)
        .map(|(_, &v)| v)
        .collect();
    if peers.is_empty() {
        return Some(SensorVerdict::Nominal);
    }
    // The firmware-quirk tell: every node (peers AND this one) reports the
    // exact same value.
    if peers.len() >= 2 && peers.iter().all(|&v| v == own) {
        return Some(SensorVerdict::IdenticalAcrossArch { value: own });
    }
    let mean = peers.iter().sum::<f64>() / peers.len() as f64;
    let var = peers.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / peers.len() as f64;
    let std = var.sqrt();
    // A std floor keeps k·σ meaningful when peers agree closely.
    let threshold = k * std.max(mean.abs() * 0.02 + 0.5);
    if (own - mean).abs() > threshold {
        Some(SensorVerdict::Anomalous {
            value: own,
            peer_mean: mean,
            peer_std: std,
        })
    } else {
        Some(SensorVerdict::Nominal)
    }
}

/// Synthetic sensor-sweep generator with injectable failures.
#[derive(Debug, Clone)]
pub struct SensorSweepConfig {
    /// Sensor id to sample.
    pub sensor: String,
    /// Per-architecture baseline values (unlisted architectures use 60.0).
    pub baselines: Vec<(Architecture, f64)>,
    /// Gaussian-ish jitter half-width around the baseline.
    pub jitter: f64,
    /// Nodes whose readings are forced high (a genuine fault).
    pub faulty_nodes: Vec<(String, f64)>,
    /// Architectures whose firmware reports a constant bogus value on
    /// every node (the §4.5.3 quirk).
    pub quirky_archs: Vec<(Architecture, f64)>,
    /// Seed.
    pub seed: u64,
}

impl Default for SensorSweepConfig {
    fn default() -> Self {
        SensorSweepConfig {
            sensor: "CPU_Temp".to_string(),
            baselines: vec![
                (Architecture::X86Intel, 62.0),
                (Architecture::X86Amd, 58.0),
                (Architecture::Aarch64, 48.0),
                (Architecture::Ppc64le, 66.0),
                (Architecture::GpuA100, 70.0),
            ],
            jitter: 4.0,
            faulty_nodes: Vec::new(),
            quirky_archs: Vec::new(),
            seed: 42,
        }
    }
}

/// Sample every node in the topology once.
pub fn sensor_sweep(
    topology: &ClusterTopology,
    config: &SensorSweepConfig,
    unix_seconds: i64,
) -> Vec<SensorReading> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    topology
        .nodes()
        .map(|node| {
            let value = if let Some((_, v)) =
                config.quirky_archs.iter().find(|(a, _)| *a == node.arch)
            {
                *v
            } else if let Some((_, v)) = config.faulty_nodes.iter().find(|(n, _)| *n == node.name) {
                *v
            } else {
                let base = config
                    .baselines
                    .iter()
                    .find(|(a, _)| *a == node.arch)
                    .map(|(_, v)| *v)
                    .unwrap_or(60.0);
                base + rng.gen_range(-config.jitter..=config.jitter)
            };
            SensorReading {
                node: node.name.clone(),
                sensor: config.sensor.clone(),
                value,
                unix_seconds,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ClusterTopology {
        ClusterTopology::darwin_like(2, 10) // 4 nodes per architecture
    }

    #[test]
    fn nominal_node_passes() {
        let topo = topo();
        let readings = sensor_sweep(&topo, &SensorSweepConfig::default(), 100);
        let verdict = compare_to_arch_peers(&topo, &readings, "cn0001", "CPU_Temp", 3.0).unwrap();
        assert_eq!(verdict, SensorVerdict::Nominal);
    }

    #[test]
    fn genuine_fault_is_anomalous() {
        let topo = topo();
        let config = SensorSweepConfig {
            faulty_nodes: vec![("cn0002".to_string(), 103.0)],
            ..SensorSweepConfig::default()
        };
        let readings = sensor_sweep(&topo, &config, 100);
        match compare_to_arch_peers(&topo, &readings, "cn0002", "CPU_Temp", 3.0).unwrap() {
            SensorVerdict::Anomalous {
                value, peer_mean, ..
            } => {
                assert_eq!(value, 103.0);
                assert!(peer_mean < 80.0);
            }
            other => panic!("expected anomaly, got {other:?}"),
        }
        // Its healthy peer stays nominal.
        assert_eq!(
            compare_to_arch_peers(&topo, &readings, "cn0001", "CPU_Temp", 3.0).unwrap(),
            SensorVerdict::Nominal
        );
    }

    #[test]
    fn firmware_quirk_is_not_an_anomaly() {
        let topo = topo();
        // All aarch64 chassis report fan speed 0 — the paper's example.
        let config = SensorSweepConfig {
            sensor: "Fan4".to_string(),
            quirky_archs: vec![(Architecture::Aarch64, 0.0)],
            ..SensorSweepConfig::default()
        };
        let readings = sensor_sweep(&topo, &config, 100);
        let aarch_node = topo
            .arch_peers(Architecture::Aarch64)
            .first()
            .unwrap()
            .name
            .clone();
        assert_eq!(
            compare_to_arch_peers(&topo, &readings, &aarch_node, "Fan4", 3.0).unwrap(),
            SensorVerdict::IdenticalAcrossArch { value: 0.0 }
        );
    }

    #[test]
    fn latest_reading_wins() {
        let topo = topo();
        let mut readings = sensor_sweep(&topo, &SensorSweepConfig::default(), 100);
        // A later sample for cn0001 goes hot.
        readings.push(SensorReading {
            node: "cn0001".to_string(),
            sensor: "CPU_Temp".to_string(),
            value: 105.0,
            unix_seconds: 200,
        });
        match compare_to_arch_peers(&topo, &readings, "cn0001", "CPU_Temp", 3.0).unwrap() {
            SensorVerdict::Anomalous { value, .. } => assert_eq!(value, 105.0),
            other => panic!("stale reading used: {other:?}"),
        }
    }

    #[test]
    fn unknown_node_or_sensor_is_none() {
        let topo = topo();
        let readings = sensor_sweep(&topo, &SensorSweepConfig::default(), 100);
        assert!(compare_to_arch_peers(&topo, &readings, "ghost", "CPU_Temp", 3.0).is_none());
        assert!(compare_to_arch_peers(&topo, &readings, "cn0001", "NoSuch", 3.0).is_none());
    }

    #[test]
    fn sweep_is_deterministic() {
        let topo = topo();
        let a = sensor_sweep(&topo, &SensorSweepConfig::default(), 1);
        let b = sensor_sweep(&topo, &SensorSweepConfig::default(), 1);
        assert_eq!(a, b);
    }
}
