//! Structured queries over the store (the Grafana-panel query shapes).

use crate::record::LogRecord;
use crate::store::LogStore;
use hetsyslog_core::Category;
use serde::{Deserialize, Serialize};
use syslog_model::Severity;

/// A boolean AND query with metadata filters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Tokens that must all appear in the message (or node/app fields).
    pub terms: Vec<String>,
    /// Time range `[from, to)`, Unix seconds.
    pub from: i64,
    /// End of range (exclusive).
    pub to: i64,
    /// Restrict to one node.
    pub node: Option<String>,
    /// Restrict to one application tag.
    pub app: Option<String>,
    /// Restrict to one classified category.
    pub category: Option<Category>,
    /// Keep only records at least this severe (numerically ≤).
    pub max_severity: Option<Severity>,
    /// Result cap (0 = unlimited).
    pub limit: usize,
}

impl Query {
    /// A match-all query over a time range.
    pub fn range(from: i64, to: i64) -> Query {
        Query {
            from,
            to,
            ..Query::default()
        }
    }

    /// Add a required term.
    pub fn term(mut self, t: impl Into<String>) -> Query {
        self.terms.push(t.into());
        self
    }

    /// Filter by node.
    pub fn on_node(mut self, node: impl Into<String>) -> Query {
        self.node = Some(node.into());
        self
    }

    /// Filter by application tag.
    pub fn from_app(mut self, app: impl Into<String>) -> Query {
        self.app = Some(app.into());
        self
    }

    /// Filter by category.
    pub fn in_category(mut self, c: Category) -> Query {
        self.category = Some(c);
        self
    }

    /// Filter by minimum severity (e.g. `Severity::Warning` keeps
    /// warning/error/critical/alert/emergency).
    pub fn at_least(mut self, s: Severity) -> Query {
        self.max_severity = Some(s);
        self
    }

    /// Cap results.
    pub fn limit(mut self, n: usize) -> Query {
        self.limit = n;
        self
    }

    fn accepts(&self, r: &LogRecord) -> bool {
        if let Some(n) = &self.node {
            if &r.node != n {
                return false;
            }
        }
        if let Some(a) = &self.app {
            if &r.app != a {
                return false;
            }
        }
        if let Some(c) = self.category {
            if r.category != Some(c) {
                return false;
            }
        }
        if let Some(s) = self.max_severity {
            if r.severity > s {
                return false;
            }
        }
        true
    }

    /// Execute against a store.
    pub fn execute(&self, store: &LogStore) -> Vec<LogRecord> {
        let mut out = Vec::new();
        let cap = if self.limit == 0 {
            usize::MAX
        } else {
            self.limit
        };
        store.scan(self.from, self.to, &self.terms, |r| {
            if out.len() < cap && self.accepts(r) {
                out.push(r.clone());
            }
        });
        out
    }

    /// Count matches without materializing them.
    pub fn count(&self, store: &LogStore) -> usize {
        let mut n = 0usize;
        store.scan(self.from, self.to, &self.terms, |r| {
            if self.accepts(r) {
                n += 1;
            }
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syslog_model::Facility;

    fn store_with_data() -> LogStore {
        let store = LogStore::new();
        let mk = |id: u64, t: i64, node: &str, sev: Severity, msg: &str, cat: Option<Category>| {
            LogRecord {
                id,
                unix_seconds: t,
                node: node.to_string(),
                app: "kernel".to_string(),
                severity: sev,
                facility: Facility::Kern,
                message: msg.to_string(),
                category: cat,
            }
        };
        store.insert(mk(
            0,
            10,
            "cn01",
            Severity::Warning,
            "cpu temperature high",
            Some(Category::ThermalIssue),
        ));
        store.insert(mk(
            1,
            20,
            "cn02",
            Severity::Informational,
            "usb device new",
            Some(Category::UsbDevice),
        ));
        store.insert(mk(
            2,
            30,
            "cn01",
            Severity::Error,
            "cpu throttled",
            Some(Category::ThermalIssue),
        ));
        store.insert(mk(
            3,
            40,
            "cn03",
            Severity::Debug,
            "heartbeat ok",
            Some(Category::Unimportant),
        ));
        store
    }

    #[test]
    fn term_and_node_filters() {
        let store = store_with_data();
        let hits = Query::range(0, 100).term("cpu").execute(&store);
        assert_eq!(hits.len(), 2);
        let hits = Query::range(0, 100)
            .term("cpu")
            .on_node("cn01")
            .execute(&store);
        assert_eq!(hits.len(), 2);
        let hits = Query::range(0, 100).on_node("cn02").execute(&store);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn category_and_severity_filters() {
        let store = store_with_data();
        let hits = Query::range(0, 100)
            .in_category(Category::ThermalIssue)
            .execute(&store);
        assert_eq!(hits.len(), 2);
        let hits = Query::range(0, 100)
            .at_least(Severity::Warning)
            .execute(&store);
        assert_eq!(hits.len(), 2, "warning and error only");
    }

    #[test]
    fn app_filter() {
        let store = store_with_data();
        assert_eq!(Query::range(0, 100).from_app("kernel").count(&store), 4);
        assert_eq!(Query::range(0, 100).from_app("sshd").count(&store), 0);
    }

    #[test]
    fn limit_and_count() {
        let store = store_with_data();
        let q = Query::range(0, 100);
        assert_eq!(q.count(&store), 4);
        assert_eq!(q.clone().limit(2).execute(&store).len(), 2);
    }

    #[test]
    fn empty_range() {
        let store = store_with_data();
        assert_eq!(Query::range(50, 60).count(&store), 0);
    }
}
