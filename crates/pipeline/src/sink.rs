//! The post-classification sink stage: delivery with guarantees.
//!
//! The paper's Tivan pipeline does not stop at classification — classified
//! logs ship onward to OpenSearch/Grafana and must survive sink slowness
//! and outages. This module adds that stage to the reproduction: a
//! [`Sink`] trait (`submit_batch` → ack/nack), three implementations
//! ([`FileSink`], [`BulkSink`], [`MetricSink`]), and a [`FanOut`] router
//! that multiplexes classified batches to N sinks, each with its own
//! in-flight window, bounded exponential retry/backoff, and an optional
//! durable spill buffer ([`crate::spill`]).
//!
//! Delivery model per lane (one lane per sink, one worker thread each):
//!
//! ```text
//!            submit                    worker
//! records ──► queue (≤ window) ──────► submit_batch ──► ack: delivered
//!               │ window full /            │ nack × max_attempts
//!               ▼ sink down                ▼
//!             spill segments ◄──────── failed batch (+ queue, FIFO)
//!               │
//!               └──────── replay (oldest first) ──► ack: replayed
//! ```
//!
//! The conservation ledger extends the listener's `frames == stored +
//! dropped` invariant downstream: per sink, at every instant,
//!
//! ```text
//! submitted + recovered == delivered + spilled_pending + dropped + in_flight
//! ```
//!
//! and at quiescence `in_flight == 0`. With a spill configured, Block-mode
//! overload means *latency* (spill-then-replay, at-least-once) instead of
//! *loss*; without one, the lane falls back to the listener's
//! [`OverloadPolicy`] semantics (Block waits for window space, Shed counts
//! a drop). Everything is exported as `hetsyslog_sink_*` /
//! `hetsyslog_spill_*` instruments, one series per sink.

use crate::listener::OverloadPolicy;
use crate::record::LogRecord;
use crate::shard::splitmix64;
use crate::spill::{SpillBuffer, SpillConfig, SpillFrame};
use obs::{Counter, Gauge, Histogram, Registry};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A batch on its way to one sink: the lane-assigned sequence number plus
/// the classified records.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkBatch {
    /// Lane-local monotone sequence (FIFO evidence; survives the spill).
    pub seq: u64,
    /// The classified records.
    pub records: Vec<LogRecord>,
}

impl SinkBatch {
    /// Encode the records as the spill payload (JSON array — the same
    /// serde model as the store's JSONL tier).
    pub fn encode_payload(&self) -> Vec<u8> {
        serde_json::to_string(&self.records)
            .expect("LogRecord serializes")
            .into_bytes()
    }

    /// Rebuild a batch from a replayed spill frame.
    pub fn decode(frame: &SpillFrame) -> Result<SinkBatch, serde_json::Error> {
        Ok(SinkBatch {
            seq: frame.seq,
            records: serde_json::from_slice(&frame.payload)?,
        })
    }

    /// The spill frame for this batch.
    pub fn to_frame(&self) -> SpillFrame {
        SpillFrame {
            seq: self.seq,
            records: self.records.len() as u32,
            payload: self.encode_payload(),
        }
    }
}

/// A sink rejected a batch (nack). Nacks are retryable by definition —
/// the lane retries with backoff and spills when attempts run out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkError {
    /// Human-readable rejection reason.
    pub reason: String,
}

impl SinkError {
    /// A nack with the given reason.
    pub fn new(reason: impl Into<String>) -> SinkError {
        SinkError {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for SinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sink nack: {}", self.reason)
    }
}

/// A delivery destination. `submit_batch` is synchronous: `Ok` is an ack
/// (the batch is durable / applied at the destination), `Err` is a nack
/// (nothing happened; safe to retry). Implementations must be
/// `Send + Sync` — each lane worker calls from its own thread.
pub trait Sink: Send + Sync {
    /// Stable destination name (used as the `sink` metric label).
    fn name(&self) -> &str;
    /// Deliver one batch. Ack (`Ok`) or nack (`Err`, retryable).
    fn submit_batch(&self, batch: &SinkBatch) -> Result<(), SinkError>;
}

// ---------------------------------------------------------------------------
// FileSink: append-only CRC-framed segments, fsync on seal.
// ---------------------------------------------------------------------------

struct FileSegment {
    writer: std::io::BufWriter<std::fs::File>,
    path: std::path::PathBuf,
    bytes: u64,
}

struct FileSinkState {
    active: Option<FileSegment>,
    next_index: u64,
}

/// Append-only file sink: batches land as CRC-framed records (the spill
/// codec) in size-capped `sink-<index>.seg` files, fsynced when a segment
/// seals. The on-disk format is replayable with
/// [`FileSink::read_back`] — this is the "archive to disk" destination.
pub struct FileSink {
    name: String,
    dir: std::path::PathBuf,
    segment_cap_bytes: u64,
    state: Mutex<FileSinkState>,
}

impl FileSink {
    /// A file sink writing under `dir` (created if missing) with the
    /// default 8 MiB segment cap.
    pub fn new(
        name: impl Into<String>,
        dir: impl Into<std::path::PathBuf>,
    ) -> io::Result<FileSink> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let next_index = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_str()?;
                name.strip_prefix("sink-")?
                    .strip_suffix(".seg")?
                    .parse::<u64>()
                    .ok()
            })
            .map(|i| i + 1)
            .max()
            .unwrap_or(0);
        Ok(FileSink {
            name: name.into(),
            dir,
            segment_cap_bytes: 8 * 1024 * 1024,
            state: Mutex::new(FileSinkState {
                active: None,
                next_index,
            }),
        })
    }

    /// Override the segment roll size.
    pub fn with_segment_cap(mut self, bytes: u64) -> FileSink {
        self.segment_cap_bytes = bytes.max(64);
        self
    }

    /// Flush and fsync the active segment (graceful shutdown).
    pub fn seal(&self) -> io::Result<()> {
        let mut state = self.state.lock();
        Self::seal_segment(&mut state)
    }

    fn seal_segment(state: &mut FileSinkState) -> io::Result<()> {
        use std::io::Write;
        if let Some(mut seg) = state.active.take() {
            seg.writer.flush()?;
            seg.writer.get_ref().sync_all()?;
        }
        Ok(())
    }

    /// Read every batch persisted under `dir`, oldest first (test and
    /// operator tooling; tolerates a torn tail by stopping at it).
    pub fn read_back(dir: &std::path::Path) -> io::Result<Vec<SinkBatch>> {
        use std::io::Read;
        let mut paths: Vec<_> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("sink-") && n.ends_with(".seg"))
            })
            .collect();
        paths.sort();
        let mut out = Vec::new();
        for path in paths {
            let mut data = Vec::new();
            std::fs::File::open(&path)?.read_to_end(&mut data)?;
            let mut offset = 0;
            while let Ok(Some((frame, consumed))) = crate::spill::decode_frame(&data, offset) {
                if let Ok(batch) = SinkBatch::decode(&frame) {
                    out.push(batch);
                }
                offset += consumed;
            }
        }
        Ok(out)
    }
}

impl Sink for FileSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn submit_batch(&self, batch: &SinkBatch) -> Result<(), SinkError> {
        use std::io::Write;
        let frame = batch.to_frame();
        let len = crate::spill::encoded_len(&frame);
        let mut state = self.state.lock();
        let needs_roll = state
            .active
            .as_ref()
            .is_some_and(|s| s.bytes > 0 && s.bytes + len > self.segment_cap_bytes);
        if needs_roll {
            Self::seal_segment(&mut state).map_err(|e| SinkError::new(e.to_string()))?;
        }
        if state.active.is_none() {
            let index = state.next_index;
            state.next_index += 1;
            let path = self.dir.join(format!("sink-{index:08}.seg"));
            let file = std::fs::OpenOptions::new()
                .create(true)
                .truncate(true)
                .write(true)
                .open(&path)
                .map_err(|e| SinkError::new(e.to_string()))?;
            state.active = Some(FileSegment {
                writer: std::io::BufWriter::new(file),
                path,
                bytes: 0,
            });
        }
        let seg = state.active.as_mut().expect("just ensured");
        let mut encoded = Vec::with_capacity(len as usize);
        crate::spill::encode_frame(&frame, &mut encoded);
        let write = seg
            .writer
            .write_all(&encoded)
            .and_then(|()| seg.writer.flush());
        match write {
            Ok(()) => {
                seg.bytes += len;
                Ok(())
            }
            Err(e) => {
                // A torn in-flight write must not be acked; drop the
                // segment handle so the next attempt reopens cleanly.
                let seg = state.active.take().expect("present");
                let _ = std::fs::remove_file(&seg.path);
                Err(SinkError::new(e.to_string()))
            }
        }
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        let _ = self.seal();
    }
}

// ---------------------------------------------------------------------------
// BulkSink: simulated bulk indexer with an injectable fault plan.
// ---------------------------------------------------------------------------

/// A scripted misbehavior schedule for [`BulkSink`]: deterministic random
/// nacks, a per-request stall, and hard outage windows (every request
/// nacks) relative to the sink's first request. This is the fault-injection
/// surface the test harness drives.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for the deterministic nack schedule.
    pub seed: u64,
    /// Probability in `[0, 1]` that a request nacks.
    pub error_rate: f64,
    /// Added latency per request (applies to nacks too — a slow failure).
    pub stall: Duration,
    /// Hard outage windows `(start, duration)` measured from the first
    /// request: inside one, every request nacks.
    pub outages: Vec<(Duration, Duration)>,
}

impl FaultPlan {
    /// A plan with no faults at all.
    pub fn healthy() -> FaultPlan {
        FaultPlan::default()
    }

    /// Nack a deterministic `rate` fraction of requests.
    pub fn with_error_rate(mut self, rate: f64) -> FaultPlan {
        self.error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sleep `stall` on every request.
    pub fn with_stall(mut self, stall: Duration) -> FaultPlan {
        self.stall = stall;
        self
    }

    /// Add a hard outage window starting `start` after the first request.
    pub fn with_outage(mut self, start: Duration, duration: Duration) -> FaultPlan {
        self.outages.push((start, duration));
        self
    }

    /// Seed the deterministic nack schedule.
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }
}

/// Simulated bulk-indexing sink (the OpenSearch `_bulk` stand-in): acks
/// batches after an optional simulated stall, and misbehaves exactly as
/// its [`FaultPlan`] scripts. Optionally records every delivered record id
/// so tests can assert at-least-once delivery with no silent loss.
pub struct BulkSink {
    name: String,
    plan: FaultPlan,
    epoch: Mutex<Option<Instant>>,
    attempts: AtomicU64,
    delivered_batches: AtomicU64,
    delivered_records: AtomicU64,
    recorded_ids: Option<Mutex<Vec<u64>>>,
}

impl BulkSink {
    /// A bulk sink following `plan`.
    pub fn new(name: impl Into<String>, plan: FaultPlan) -> BulkSink {
        BulkSink {
            name: name.into(),
            plan,
            epoch: Mutex::new(None),
            attempts: AtomicU64::new(0),
            delivered_batches: AtomicU64::new(0),
            delivered_records: AtomicU64::new(0),
            recorded_ids: None,
        }
    }

    /// Record every delivered record id (tests: duplicate/loss audits).
    pub fn recording(mut self) -> BulkSink {
        self.recorded_ids = Some(Mutex::new(Vec::new()));
        self
    }

    /// Start the outage clock now instead of at the first request.
    pub fn start_clock(&self) {
        let mut epoch = self.epoch.lock();
        if epoch.is_none() {
            *epoch = Some(Instant::now());
        }
    }

    /// Seconds since the outage clock started (0 before the first request).
    pub fn elapsed(&self) -> Duration {
        self.epoch.lock().map(|e| e.elapsed()).unwrap_or_default()
    }

    /// Batches acked so far.
    pub fn delivered_batches(&self) -> u64 {
        self.delivered_batches.load(Ordering::Relaxed)
    }

    /// Records acked so far.
    pub fn delivered_records(&self) -> u64 {
        self.delivered_records.load(Ordering::Relaxed)
    }

    /// Every delivered record id, in delivery order (empty unless built
    /// with [`BulkSink::recording`]).
    pub fn delivered_ids(&self) -> Vec<u64> {
        self.recorded_ids
            .as_ref()
            .map(|ids| ids.lock().clone())
            .unwrap_or_default()
    }

    fn in_outage(&self, elapsed: Duration) -> bool {
        self.plan
            .outages
            .iter()
            .any(|&(start, dur)| elapsed >= start && elapsed < start + dur)
    }
}

impl Sink for BulkSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn submit_batch(&self, batch: &SinkBatch) -> Result<(), SinkError> {
        self.start_clock();
        if !self.plan.stall.is_zero() {
            std::thread::sleep(self.plan.stall);
        }
        let attempt = self.attempts.fetch_add(1, Ordering::Relaxed);
        let elapsed = self.elapsed();
        if self.in_outage(elapsed) {
            return Err(SinkError::new(format!(
                "hard outage at t+{:.1}s",
                elapsed.as_secs_f64()
            )));
        }
        if self.plan.error_rate > 0.0 {
            // Deterministic per-attempt coin flip: same seed → same nack
            // schedule, so fault scenarios reproduce bit-for-bit.
            let roll = splitmix64(self.plan.seed ^ attempt) as f64 / u64::MAX as f64;
            if roll < self.plan.error_rate {
                return Err(SinkError::new(format!(
                    "injected error (attempt {attempt})"
                )));
            }
        }
        if let Some(ids) = &self.recorded_ids {
            ids.lock().extend(batch.records.iter().map(|r| r.id));
        }
        self.delivered_batches.fetch_add(1, Ordering::Relaxed);
        self.delivered_records
            .fetch_add(batch.records.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// MetricSink: logs-to-metrics, feeding the obs registry.
// ---------------------------------------------------------------------------

/// Log-to-metric sink: folds every record into per-category counters
/// (`hetsyslog_logmetric_records_total{category=…}`) on the shared obs
/// registry — the Grafana-facing destination. Never nacks.
pub struct MetricSink {
    name: String,
    by_category: Vec<Arc<Counter>>,
    unclassified: Arc<Counter>,
}

impl MetricSink {
    /// A metric sink registering its counters on `registry`.
    pub fn new(name: impl Into<String>, registry: &Registry) -> MetricSink {
        let help = "Records delivered to the log-to-metric sink, by category";
        let by_category = hetsyslog_core::Category::ALL
            .iter()
            .map(|c| {
                registry.counter(
                    "hetsyslog_logmetric_records_total",
                    help,
                    &[("category", c.label())],
                )
            })
            .collect();
        MetricSink {
            name: name.into(),
            by_category,
            unclassified: registry.counter(
                "hetsyslog_logmetric_records_total",
                help,
                &[("category", "unclassified")],
            ),
        }
    }
}

impl Sink for MetricSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn submit_batch(&self, batch: &SinkBatch) -> Result<(), SinkError> {
        for record in &batch.records {
            match record.category {
                Some(c) => self.by_category[c.index()].inc(),
                None => self.unclassified.inc(),
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FanOut: the router.
// ---------------------------------------------------------------------------

/// Per-lane tuning for [`FanOut`].
#[derive(Debug, Clone)]
pub struct SinkLaneConfig {
    /// In-flight window: batches queued in memory before the lane spills
    /// (or applies `overload` when no spill is configured).
    pub window: usize,
    /// Delivery attempts per batch before it is declared nacked-out.
    pub max_attempts: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling (also the replay pause while a sink stays down).
    pub backoff_cap: Duration,
    /// Without a spill: Block waits for window space, Shed drops + counts.
    pub overload: OverloadPolicy,
    /// Durable spill directory; `None` disables spill-then-replay.
    pub spill: Option<SpillConfig>,
}

impl Default for SinkLaneConfig {
    fn default() -> SinkLaneConfig {
        SinkLaneConfig {
            window: 64,
            max_attempts: 5,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(250),
            overload: OverloadPolicy::Block,
            spill: None,
        }
    }
}

impl SinkLaneConfig {
    /// Enable spill-then-replay under `dir`.
    pub fn with_spill(mut self, config: SpillConfig) -> SinkLaneConfig {
        self.spill = Some(config);
        self
    }

    /// Set the in-flight window.
    pub fn with_window(mut self, window: usize) -> SinkLaneConfig {
        self.window = window.max(1);
        self
    }

    /// Set the no-spill overload policy.
    pub fn with_overload(mut self, overload: OverloadPolicy) -> SinkLaneConfig {
        self.overload = overload;
        self
    }

    /// Set retry bounds.
    pub fn with_retry(
        mut self,
        max_attempts: u32,
        base: Duration,
        cap: Duration,
    ) -> SinkLaneConfig {
        self.max_attempts = max_attempts.max(1);
        self.backoff_base = base;
        self.backoff_cap = cap.max(base);
        self
    }
}

/// One sink plus its lane tuning, for [`FanOut::open`].
pub struct SinkSpec {
    /// The destination.
    pub sink: Arc<dyn Sink>,
    /// Lane tuning.
    pub config: SinkLaneConfig,
}

impl SinkSpec {
    /// A spec with default lane tuning.
    pub fn new(sink: Arc<dyn Sink>) -> SinkSpec {
        SinkSpec {
            sink,
            config: SinkLaneConfig::default(),
        }
    }

    /// A spec with explicit lane tuning.
    pub fn with_config(sink: Arc<dyn Sink>, config: SinkLaneConfig) -> SinkSpec {
        SinkSpec { sink, config }
    }
}

/// Why a lane dropped records (the `reason` label on
/// `hetsyslog_sink_dropped_total`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkDropReason {
    /// Window full under Shed with no spill configured.
    Shed,
    /// Retries exhausted with no spill configured.
    NackedOut,
    /// Undeliverable at shutdown with no spill configured.
    Shutdown,
}

impl SinkDropReason {
    /// Stable label for metrics and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            SinkDropReason::Shed => "shed",
            SinkDropReason::NackedOut => "nacked_out",
            SinkDropReason::Shutdown => "shutdown",
        }
    }
}

/// Per-lane instruments (`sink=<name>` on every series). `detached`
/// records without exporting; `registered` exports on a shared registry.
#[derive(Debug)]
struct SinkStats {
    submitted: Arc<Counter>,
    delivered: Arc<Counter>,
    dropped_shed: Arc<Counter>,
    dropped_nacked: Arc<Counter>,
    dropped_shutdown: Arc<Counter>,
    retries: Arc<Counter>,
    nacks: Arc<Counter>,
    in_flight: Arc<Gauge>,
    submit_us: Arc<Histogram>,
    spilled: Arc<Counter>,
    replayed: Arc<Counter>,
    recovered: Arc<Counter>,
    spill_bytes: Arc<Counter>,
    spill_sealed: Arc<Counter>,
    spill_quarantined: Arc<Counter>,
    spill_pending: Arc<Gauge>,
}

impl SinkStats {
    fn detached() -> SinkStats {
        SinkStats {
            submitted: Arc::new(Counter::new()),
            delivered: Arc::new(Counter::new()),
            dropped_shed: Arc::new(Counter::new()),
            dropped_nacked: Arc::new(Counter::new()),
            dropped_shutdown: Arc::new(Counter::new()),
            retries: Arc::new(Counter::new()),
            nacks: Arc::new(Counter::new()),
            in_flight: Arc::new(Gauge::new()),
            submit_us: Arc::new(Histogram::new()),
            spilled: Arc::new(Counter::new()),
            replayed: Arc::new(Counter::new()),
            recovered: Arc::new(Counter::new()),
            spill_bytes: Arc::new(Counter::new()),
            spill_sealed: Arc::new(Counter::new()),
            spill_quarantined: Arc::new(Counter::new()),
            spill_pending: Arc::new(Gauge::new()),
        }
    }

    fn registered(registry: &Registry, sink: &str) -> SinkStats {
        let l = &[("sink", sink)][..];
        let dropped = |reason: SinkDropReason| {
            registry.counter(
                "hetsyslog_sink_dropped_total",
                "Records dropped by a sink lane, by reason",
                &[("sink", sink), ("reason", reason.as_str())],
            )
        };
        SinkStats {
            submitted: registry.counter(
                "hetsyslog_sink_submitted_total",
                "Records handed to a sink lane",
                l,
            ),
            delivered: registry.counter(
                "hetsyslog_sink_delivered_total",
                "Records acked by the sink (direct or replayed)",
                l,
            ),
            dropped_shed: dropped(SinkDropReason::Shed),
            dropped_nacked: dropped(SinkDropReason::NackedOut),
            dropped_shutdown: dropped(SinkDropReason::Shutdown),
            retries: registry.counter(
                "hetsyslog_sink_retries_total",
                "Delivery attempts beyond the first, per lane",
                l,
            ),
            nacks: registry.counter(
                "hetsyslog_sink_nacks_total",
                "Batches that exhausted their delivery attempts",
                l,
            ),
            in_flight: registry.gauge(
                "hetsyslog_sink_inflight",
                "Records in a lane's memory window (queued or mid-delivery)",
                l,
            ),
            submit_us: registry.histogram(
                "hetsyslog_sink_submit_duration_us",
                "submit_batch wall time in microseconds, per sink",
                l,
            ),
            spilled: registry.counter(
                "hetsyslog_spill_records_total",
                "Records appended to the durable spill",
                l,
            ),
            replayed: registry.counter(
                "hetsyslog_spill_replayed_total",
                "Spilled records re-driven and acked after recovery",
                l,
            ),
            recovered: registry.counter(
                "hetsyslog_spill_recovered_total",
                "Records recovered from an existing spill directory at open",
                l,
            ),
            spill_bytes: registry.counter(
                "hetsyslog_spill_bytes_total",
                "Encoded bytes appended to spill segments",
                l,
            ),
            spill_sealed: registry.counter(
                "hetsyslog_spill_segments_sealed_total",
                "Spill segments sealed (fsynced)",
                l,
            ),
            spill_quarantined: registry.counter(
                "hetsyslog_spill_quarantined_total",
                "Corrupt or torn spill tails moved to quarantine/",
                l,
            ),
            spill_pending: registry.gauge(
                "hetsyslog_spill_pending",
                "Records sitting in the spill awaiting replay",
                l,
            ),
        }
    }

    fn dropped_total(&self) -> u64 {
        self.dropped_shed.get() + self.dropped_nacked.get() + self.dropped_shutdown.get()
    }
}

/// A point-in-time copy of one lane's ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkSnapshot {
    /// Sink name.
    pub sink: String,
    /// Records handed to the lane.
    pub submitted: u64,
    /// Records recovered from the spill directory at open.
    pub recovered: u64,
    /// Records acked by the sink (direct + replayed).
    pub delivered: u64,
    /// Records dropped (shed + nacked-out + shutdown), no spill configured.
    pub dropped: u64,
    /// Records appended to the spill (lifetime).
    pub spilled: u64,
    /// Spilled records re-driven and acked.
    pub replayed: u64,
    /// Records awaiting replay in the spill right now.
    pub spilled_pending: u64,
    /// Delivery attempts beyond the first.
    pub retries: u64,
    /// Batches that exhausted their attempts.
    pub nacks: u64,
    /// Records in the lane's memory window right now.
    pub in_flight: i64,
}

impl SinkSnapshot {
    /// The at-least-once conservation ledger: every record handed to (or
    /// recovered by) the lane is accounted for exactly once.
    pub fn ledger_balanced(&self) -> bool {
        self.submitted + self.recovered
            == self.delivered + self.spilled_pending + self.dropped + self.in_flight.max(0) as u64
    }

    /// Left-hand side of the ledger (what entered the lane).
    pub fn ledger_in(&self) -> u64 {
        self.submitted + self.recovered
    }

    /// Right-hand side of the ledger (where every record is now).
    pub fn ledger_out(&self) -> u64 {
        self.delivered + self.spilled_pending + self.dropped + self.in_flight.max(0) as u64
    }
}

/// Where a batch being delivered came from (drives the post-delivery and
/// post-failure bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchSource {
    /// Popped from the memory window.
    Queue,
    /// Re-taken from `retry_head` (was in memory when its lane flipped to
    /// spilling mid-flight; must deliver before any spill replay).
    RetryHead,
    /// Peeked (uncommitted) from the spill.
    Spill,
}

enum LaneMode {
    /// Submissions enter the memory window; the worker drains it.
    Direct,
    /// The sink fell behind or is down: submissions go straight to the
    /// spill, the worker replays it, and the lane returns to `Direct`
    /// only once the spill is empty (preserving FIFO).
    Spilling,
}

struct LaneState {
    mode: LaneMode,
    queue: VecDeque<SinkBatch>,
    /// A memory batch that nacked out while the lane flipped to spilling:
    /// older than everything in the spill, so it delivers first.
    retry_head: Option<SinkBatch>,
    spill: Option<SpillBuffer>,
    next_seq: u64,
    closing: bool,
}

struct Lane {
    name: String,
    sink: Arc<dyn Sink>,
    config: SinkLaneConfig,
    state: Mutex<LaneState>,
    stats: SinkStats,
}

impl Lane {
    fn sync_spill_gauges(&self, state: &LaneState) {
        if let Some(spill) = &state.spill {
            self.stats.spill_pending.set(spill.pending_records() as i64);
        }
    }

    /// Move every queued batch (oldest first) into the spill and flip the
    /// lane to `Spilling`. Caller holds the state lock. `head` (if any) is
    /// older than the queue and spills first.
    fn spill_queue(&self, state: &mut LaneState, head: Option<SinkBatch>) {
        let spill = state.spill.as_mut().expect("caller checked");
        let mut moved_records = 0u64;
        let mut moved_bytes = 0u64;
        for batch in head.into_iter().chain(state.queue.drain(..)) {
            let frame = batch.to_frame();
            moved_records += batch.records.len() as u64;
            moved_bytes += crate::spill::encoded_len(&frame);
            // Spill append failures are unrecoverable for durability; fall
            // back to counting the records dropped rather than wedging.
            if spill.append(&frame).is_err() {
                moved_records -= batch.records.len() as u64;
                moved_bytes -= crate::spill::encoded_len(&frame);
                self.stats.dropped_nacked.add(batch.records.len() as u64);
            }
        }
        self.stats.in_flight.add(-(moved_records as i64));
        self.stats.spilled.add(moved_records);
        self.stats.spill_bytes.add(moved_bytes);
        state.mode = LaneMode::Spilling;
        self.sync_spill_gauges(state);
    }

    fn snapshot(&self) -> SinkSnapshot {
        SinkSnapshot {
            sink: self.name.clone(),
            submitted: self.stats.submitted.get(),
            recovered: self.stats.recovered.get(),
            delivered: self.stats.delivered.get(),
            dropped: self.stats.dropped_total(),
            spilled: self.stats.spilled.get(),
            replayed: self.stats.replayed.get(),
            spilled_pending: self.stats.spill_pending.get().max(0) as u64,
            retries: self.stats.retries.get(),
            nacks: self.stats.nacks.get(),
            in_flight: self.stats.in_flight.get(),
        }
    }
}

/// How long an idle lane worker sleeps between wake-ups (the parking_lot
/// shim has no Condvar, so lanes poll at this cadence).
const LANE_POLL: Duration = Duration::from_micros(500);

/// The router: one lane (queue + optional spill + worker thread) per
/// sink. `submit` clones the classified batch into every lane; lanes fail
/// independently — one sink's outage spills (or sheds) on its own lane
/// without slowing the others.
pub struct FanOut {
    lanes: Vec<Arc<Lane>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    exited: Arc<AtomicUsize>,
    hard_stop: Arc<AtomicBool>,
    shut_down: AtomicBool,
}

impl std::fmt::Debug for FanOut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanOut")
            .field("lanes", &self.lane_names())
            .finish()
    }
}

impl FanOut {
    /// Open every lane (recovering existing spill directories) and start
    /// one worker thread per sink.
    pub fn open(specs: Vec<SinkSpec>, registry: Option<&Registry>) -> io::Result<Arc<FanOut>> {
        let mut lanes = Vec::with_capacity(specs.len());
        for spec in specs {
            let name = spec.sink.name().to_string();
            let stats = match registry {
                Some(reg) => SinkStats::registered(reg, &name),
                None => SinkStats::detached(),
            };
            let spill = match &spec.config.spill {
                Some(config) => {
                    let (spill, report) = SpillBuffer::open(config.clone())?;
                    stats.recovered.add(report.records);
                    stats.spill_quarantined.add(report.quarantined);
                    stats.spill_pending.set(spill.pending_records() as i64);
                    Some(spill)
                }
                None => None,
            };
            lanes.push(Arc::new(Lane {
                name,
                sink: spec.sink,
                config: spec.config,
                state: Mutex::new(LaneState {
                    mode: LaneMode::Direct,
                    queue: VecDeque::new(),
                    retry_head: None,
                    spill,
                    next_seq: 0,
                    closing: false,
                }),
                stats,
            }));
        }
        let fan_out = Arc::new(FanOut {
            lanes,
            workers: Mutex::new(Vec::new()),
            exited: Arc::new(AtomicUsize::new(0)),
            hard_stop: Arc::new(AtomicBool::new(false)),
            shut_down: AtomicBool::new(false),
        });
        let mut workers = fan_out.workers.lock();
        for lane in &fan_out.lanes {
            let lane = lane.clone();
            let exited = fan_out.exited.clone();
            let hard_stop = fan_out.hard_stop.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sink-{}", lane.name))
                .spawn(move || {
                    lane_worker(&lane, &hard_stop);
                    exited.fetch_add(1, Ordering::SeqCst);
                })
                .expect("spawn sink worker");
            workers.push(handle);
        }
        drop(workers);
        Ok(fan_out)
    }

    /// Fan a classified batch out to every lane. Each lane takes its own
    /// clone with a lane-local sequence number; overload behavior is per
    /// lane (spill / block / shed).
    pub fn submit(&self, records: &[LogRecord]) {
        if records.is_empty() {
            return;
        }
        for lane in &self.lanes {
            self.submit_to_lane(lane, records);
        }
    }

    fn submit_to_lane(&self, lane: &Arc<Lane>, records: &[LogRecord]) {
        let n = records.len() as u64;
        lane.stats.submitted.add(n);
        let mut state = lane.state.lock();
        loop {
            if state.closing {
                // Late submission during shutdown: durable if possible.
                let batch = SinkBatch {
                    seq: state.next_seq,
                    records: records.to_vec(),
                };
                state.next_seq += 1;
                if state.spill.is_some() {
                    let frame = batch.to_frame();
                    let bytes = crate::spill::encoded_len(&frame);
                    let spill = state.spill.as_mut().expect("checked");
                    if spill.append(&frame).is_ok() {
                        lane.stats.spilled.add(n);
                        lane.stats.spill_bytes.add(bytes);
                        lane.sync_spill_gauges(&state);
                    } else {
                        lane.stats.dropped_shutdown.add(n);
                    }
                } else {
                    lane.stats.dropped_shutdown.add(n);
                }
                return;
            }
            if matches!(state.mode, LaneMode::Spilling) {
                let batch = SinkBatch {
                    seq: state.next_seq,
                    records: records.to_vec(),
                };
                state.next_seq += 1;
                let frame = batch.to_frame();
                let bytes = crate::spill::encoded_len(&frame);
                let spill = state.spill.as_mut().expect("Spilling implies spill");
                if spill.append(&frame).is_ok() {
                    lane.stats.spilled.add(n);
                    lane.stats.spill_bytes.add(bytes);
                } else {
                    lane.stats.dropped_nacked.add(n);
                }
                lane.sync_spill_gauges(&state);
                return;
            }
            if state.queue.len() < lane.config.window {
                let batch = SinkBatch {
                    seq: state.next_seq,
                    records: records.to_vec(),
                };
                state.next_seq += 1;
                state.queue.push_back(batch);
                lane.stats.in_flight.add(n as i64);
                return;
            }
            // Window full.
            if state.spill.is_some() {
                let batch = SinkBatch {
                    seq: state.next_seq,
                    records: records.to_vec(),
                };
                state.next_seq += 1;
                lane.spill_queue(&mut state, None);
                let frame = batch.to_frame();
                let bytes = crate::spill::encoded_len(&frame);
                let spill = state.spill.as_mut().expect("checked");
                if spill.append(&frame).is_ok() {
                    lane.stats.spilled.add(n);
                    lane.stats.spill_bytes.add(bytes);
                } else {
                    lane.stats.dropped_nacked.add(n);
                }
                lane.sync_spill_gauges(&state);
                return;
            }
            match lane.config.overload {
                OverloadPolicy::Shed => {
                    lane.stats.dropped_shed.add(n);
                    return;
                }
                OverloadPolicy::Block => {
                    // Lossless: wait for the worker to open window space
                    // (poll — no Condvar in the vendored parking_lot).
                    drop(state);
                    std::thread::sleep(Duration::from_micros(200));
                    state = lane.state.lock();
                }
            }
        }
    }

    /// Per-lane ledgers, in lane order.
    pub fn snapshots(&self) -> Vec<SinkSnapshot> {
        self.lanes.iter().map(|l| l.snapshot()).collect()
    }

    /// Lane names, in lane order.
    pub fn lane_names(&self) -> Vec<String> {
        self.lanes.iter().map(|l| l.name.clone()).collect()
    }

    /// True when every lane is quiescent: nothing in memory, nothing
    /// awaiting replay.
    pub fn is_idle(&self) -> bool {
        self.snapshots()
            .iter()
            .all(|s| s.in_flight == 0 && s.spilled_pending == 0)
    }

    /// Graceful drain: stop accepting replay work, give every in-memory
    /// batch one delivery attempt (ack or spill/drop the remainder), seal
    /// spills, and join the workers. After `deadline`, remaining batches
    /// are force-spilled (or force-dropped without a spill) rather than
    /// waiting on a stalled sink. Idempotent.
    pub fn shutdown(&self, deadline: Duration) {
        if self.shut_down.swap(true, Ordering::SeqCst) {
            return;
        }
        for lane in &self.lanes {
            lane.state.lock().closing = true;
        }
        let start = Instant::now();
        let total = self.lanes.len();
        while self.exited.load(Ordering::SeqCst) < total {
            if start.elapsed() >= deadline {
                self.hard_stop.store(true, Ordering::SeqCst);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut workers = self.workers.lock();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for FanOut {
    fn drop(&mut self) {
        self.shutdown(Duration::from_secs(5));
    }
}

/// Deliver `batch` with bounded exponential backoff. Returns `Ok` on ack;
/// `Err` after `max_attempts` nacks (or one attempt when draining).
fn deliver_with_retry(
    lane: &Lane,
    batch: &SinkBatch,
    draining: bool,
    hard_stop: &AtomicBool,
) -> Result<(), SinkError> {
    let attempts = if draining {
        1
    } else {
        lane.config.max_attempts
    };
    let mut backoff = lane.config.backoff_base;
    let mut last = SinkError::new("no attempt made");
    for attempt in 0..attempts {
        if attempt > 0 {
            lane.stats.retries.inc();
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(lane.config.backoff_cap);
        }
        if hard_stop.load(Ordering::SeqCst) && attempt > 0 {
            break;
        }
        let started = Instant::now();
        let outcome = lane.sink.submit_batch(batch);
        lane.stats.submit_us.record_duration_us(started.elapsed());
        match outcome {
            Ok(()) => return Ok(()),
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// The lane worker loop: serve `retry_head` first (oldest), then the
/// spill (older than anything in memory), then the memory window; deliver
/// with bounded retry; on nack-out, transition to spill-then-replay (or
/// count the drop when no spill is configured).
fn lane_worker(lane: &Arc<Lane>, hard_stop: &AtomicBool) {
    loop {
        let mut state = lane.state.lock();
        let draining = state.closing;
        let hard = hard_stop.load(Ordering::SeqCst);

        // Pick the oldest work item.
        let (batch, source) = if let Some(batch) = state.retry_head.take() {
            (batch, BatchSource::RetryHead)
        } else if !draining
            && state
                .spill
                .as_ref()
                .is_some_and(|s| s.pending_records() > 0)
        {
            let spill = state.spill.as_mut().expect("checked");
            match spill.peek() {
                Ok(Some(frame)) => match SinkBatch::decode(&frame) {
                    Ok(batch) => (batch, BatchSource::Spill),
                    Err(_) => {
                        // Undecodable payload (should be impossible — the
                        // CRC passed): count it out of the ledger and move
                        // on rather than wedging replay.
                        spill.commit();
                        lane.stats.dropped_nacked.add(frame.records as u64);
                        lane.sync_spill_gauges(&state);
                        continue;
                    }
                },
                _ => {
                    lane.sync_spill_gauges(&state);
                    drop(state);
                    std::thread::sleep(LANE_POLL);
                    continue;
                }
            }
        } else if let Some(batch) = state.queue.pop_front() {
            (batch, BatchSource::Queue)
        } else if draining {
            // Nothing left in memory. Seal the spill (fsync) and exit; a
            // non-empty spill stays durable for the next session's replay.
            if let Some(spill) = state.spill.as_mut() {
                let sealed_before = spill.segments_sealed();
                let _ = spill.seal();
                lane.stats
                    .spill_sealed
                    .add(spill.segments_sealed() - sealed_before);
                lane.sync_spill_gauges(&state);
            }
            return;
        } else {
            drop(state);
            std::thread::sleep(LANE_POLL);
            continue;
        };
        drop(state);

        let n = batch.records.len() as u64;
        if hard && source != BatchSource::Spill {
            // Past the shutdown deadline: durable if possible, no attempts.
            let mut state = lane.state.lock();
            lane.stats.in_flight.add(-(n as i64));
            if state.spill.is_some() {
                let frame = batch.to_frame();
                let bytes = crate::spill::encoded_len(&frame);
                let spill = state.spill.as_mut().expect("checked");
                if spill.append(&frame).is_ok() {
                    lane.stats.spilled.add(n);
                    lane.stats.spill_bytes.add(bytes);
                } else {
                    lane.stats.dropped_shutdown.add(n);
                }
                lane.sync_spill_gauges(&state);
            } else {
                lane.stats.dropped_shutdown.add(n);
            }
            continue;
        }

        match deliver_with_retry(lane, &batch, draining, hard_stop) {
            Ok(()) => {
                let mut state = lane.state.lock();
                lane.stats.delivered.add(n);
                match source {
                    BatchSource::Spill => {
                        let spill = state.spill.as_mut().expect("spill source");
                        spill.commit();
                        lane.stats.replayed.add(n);
                        let sealed = spill.segments_sealed();
                        let counted = lane.stats.spill_sealed.get();
                        if sealed > counted {
                            lane.stats.spill_sealed.add(sealed - counted);
                        }
                        // Replay caught up: only then may the lane return
                        // to direct mode (anything newer is behind it in
                        // the spill, so FIFO holds).
                        if spill.pending_records() == 0 {
                            state.mode = LaneMode::Direct;
                        }
                        lane.sync_spill_gauges(&state);
                    }
                    BatchSource::Queue | BatchSource::RetryHead => {
                        lane.stats.in_flight.add(-(n as i64));
                    }
                }
            }
            Err(_) => {
                lane.stats.nacks.inc();
                let mut state = lane.state.lock();
                match source {
                    BatchSource::Spill => {
                        // Leave the frame peeked-but-uncommitted: replay
                        // resumes at the same frame. Back off before
                        // hammering a down sink again.
                        drop(state);
                        if !hard_stop.load(Ordering::SeqCst) {
                            std::thread::sleep(lane.config.backoff_cap);
                        }
                    }
                    BatchSource::Queue | BatchSource::RetryHead => {
                        if state.spill.is_some() {
                            match state.mode {
                                LaneMode::Direct => {
                                    // The sink is down: this batch plus the
                                    // whole window go durable, oldest first.
                                    lane.spill_queue(&mut state, Some(batch));
                                }
                                LaneMode::Spilling => {
                                    // A submit-side transition beat us: the
                                    // spill now holds *newer* batches, so
                                    // this one must re-deliver first.
                                    state.retry_head = Some(batch);
                                    drop(state);
                                    if !hard_stop.load(Ordering::SeqCst) {
                                        std::thread::sleep(lane.config.backoff_cap);
                                    }
                                }
                            }
                        } else {
                            lane.stats.in_flight.add(-(n as i64));
                            if draining {
                                lane.stats.dropped_shutdown.add(n);
                            } else {
                                lane.stats.dropped_nacked.add(n);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/tmp-sink"
        ))
        .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn records(from: u64, n: u64) -> Vec<LogRecord> {
        (from..from + n)
            .map(|id| {
                let msg = syslog_model::SyslogMessage::free_form(&format!("record {id}"));
                LogRecord::from_message(id, &msg, 1000)
            })
            .collect()
    }

    fn wait_until(ms: u64, mut cond: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_millis(ms);
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        cond()
    }

    #[test]
    fn healthy_fan_out_delivers_to_every_sink() {
        let bulk = Arc::new(BulkSink::new("bulk", FaultPlan::healthy()).recording());
        let reg = Registry::new();
        let metric = Arc::new(MetricSink::new("logmetric", &reg));
        let fan_out = FanOut::open(
            vec![SinkSpec::new(bulk.clone()), SinkSpec::new(metric)],
            Some(&reg),
        )
        .unwrap();
        for i in 0..10 {
            fan_out.submit(&records(i * 4, 4));
        }
        assert!(wait_until(2000, || fan_out.is_idle()));
        fan_out.shutdown(Duration::from_secs(2));
        assert_eq!(bulk.delivered_records(), 40);
        let ids = bulk.delivered_ids();
        assert_eq!(ids.len(), 40, "no duplicates on the healthy path");
        for snap in fan_out.snapshots() {
            assert!(snap.ledger_balanced(), "{snap:?}");
            assert_eq!(snap.delivered, 40);
            assert_eq!(snap.dropped, 0);
        }
        // The metric sink fed the registry (free_form records have no
        // category → unclassified).
        assert_eq!(
            reg.counter_value(
                "hetsyslog_logmetric_records_total",
                &[("category", "unclassified")]
            ),
            Some(40)
        );
    }

    #[test]
    fn nacked_out_batches_spill_and_replay_in_order() {
        let dir = tmp_dir("replay");
        // 100% errors for the first 60 attempts, then healthy: forces the
        // lane through Direct → Spilling → Direct.
        struct FlakyUntil {
            healthy_after: u64,
            attempts: AtomicU64,
            delivered_seqs: Mutex<Vec<u64>>,
        }
        impl Sink for FlakyUntil {
            fn name(&self) -> &str {
                "flaky"
            }
            fn submit_batch(&self, batch: &SinkBatch) -> Result<(), SinkError> {
                if self.attempts.fetch_add(1, Ordering::Relaxed) < self.healthy_after {
                    return Err(SinkError::new("warming up"));
                }
                self.delivered_seqs.lock().push(batch.seq);
                Ok(())
            }
        }
        let sink = Arc::new(FlakyUntil {
            healthy_after: 60,
            attempts: AtomicU64::new(0),
            delivered_seqs: Mutex::new(Vec::new()),
        });
        let config = SinkLaneConfig::default()
            .with_window(2)
            .with_retry(2, Duration::from_micros(100), Duration::from_millis(2))
            .with_spill(SpillConfig::new(&dir).with_segment_cap(4096));
        let fan_out =
            FanOut::open(vec![SinkSpec::with_config(sink.clone(), config)], None).unwrap();
        for i in 0..30 {
            fan_out.submit(&records(i * 2, 2));
        }
        assert!(
            wait_until(10_000, || fan_out.is_idle()),
            "spill must drain after the sink recovers: {:?}",
            fan_out.snapshots()
        );
        fan_out.shutdown(Duration::from_secs(2));
        let snap = &fan_out.snapshots()[0];
        assert!(snap.ledger_balanced(), "{snap:?}");
        assert_eq!(snap.delivered, 60);
        assert_eq!(snap.dropped, 0, "spill mode never drops");
        assert!(snap.spilled > 0, "the outage must have spilled");
        assert_eq!(snap.replayed, snap.spilled, "all spilled batches replayed");
        let seqs = sink.delivered_seqs.lock().clone();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(seqs, sorted, "per-lane FIFO and no duplicates: {seqs:?}");
        assert_eq!(seqs.len(), 30);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shed_without_spill_counts_drops_and_balances() {
        // A sink that never acks, tiny window, Shed: everything past the
        // window is dropped and counted; ledger still balances.
        struct Down;
        impl Sink for Down {
            fn name(&self) -> &str {
                "down"
            }
            fn submit_batch(&self, _: &SinkBatch) -> Result<(), SinkError> {
                Err(SinkError::new("always down"))
            }
        }
        let config = SinkLaneConfig::default()
            .with_window(1)
            .with_overload(OverloadPolicy::Shed)
            .with_retry(2, Duration::from_micros(100), Duration::from_millis(1));
        let fan_out =
            FanOut::open(vec![SinkSpec::with_config(Arc::new(Down), config)], None).unwrap();
        for i in 0..20 {
            fan_out.submit(&records(i * 3, 3));
        }
        assert!(wait_until(5000, || {
            let s = &fan_out.snapshots()[0];
            s.in_flight == 0
        }));
        fan_out.shutdown(Duration::from_millis(500));
        let snap = &fan_out.snapshots()[0];
        assert!(snap.ledger_balanced(), "{snap:?}");
        assert_eq!(snap.delivered, 0);
        assert_eq!(snap.dropped, 60, "every record shed or nacked out");
        assert!(snap.nacks > 0);
    }

    #[test]
    fn recovery_resumes_spilled_work_on_reopen() {
        let dir = tmp_dir("recover");
        // Session 1: sink hard-down, everything spills; shutdown seals.
        struct Down;
        impl Sink for Down {
            fn name(&self) -> &str {
                "restartable"
            }
            fn submit_batch(&self, _: &SinkBatch) -> Result<(), SinkError> {
                Err(SinkError::new("down"))
            }
        }
        let config = SinkLaneConfig::default()
            .with_window(2)
            .with_retry(2, Duration::from_micros(100), Duration::from_millis(1))
            .with_spill(SpillConfig::new(&dir));
        {
            let fan_out = FanOut::open(
                vec![SinkSpec::with_config(Arc::new(Down), config.clone())],
                None,
            )
            .unwrap();
            for i in 0..12 {
                fan_out.submit(&records(i * 2, 2));
            }
            assert!(
                wait_until(5000, || {
                    let s = &fan_out.snapshots()[0];
                    s.in_flight == 0 && s.spilled_pending == 24
                }),
                "all 24 records must be durable: {:?}",
                fan_out.snapshots()
            );
            fan_out.shutdown(Duration::from_secs(2));
        }
        // Session 2: healthy sink named the same; recovery replays all 24.
        let bulk = Arc::new(BulkSink::new("restartable", FaultPlan::healthy()).recording());
        let fan_out =
            FanOut::open(vec![SinkSpec::with_config(bulk.clone(), config)], None).unwrap();
        let snap = &fan_out.snapshots()[0];
        assert_eq!(snap.recovered, 24, "{snap:?}");
        assert!(wait_until(5000, || fan_out.is_idle()));
        fan_out.shutdown(Duration::from_secs(2));
        let snap = &fan_out.snapshots()[0];
        assert!(snap.ledger_balanced(), "{snap:?}");
        assert_eq!(snap.delivered, 24);
        let mut ids = bulk.delivered_ids();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 24, "exactly once on the recovery path");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
