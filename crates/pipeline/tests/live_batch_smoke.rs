//! Release-mode smoke test for the live micro-batched classify path:
//! 20k frames over loopback TCP through a real trained classifier, once
//! with `max_batch = 1` (the scalar path) and once with `max_batch = 64`.
//! Asserts the batched run is at least as fast and predicts identically.
//!
//! Ignored by default — timing assertions are only meaningful in release
//! builds on an otherwise idle machine. CI runs it serially with
//! `cargo test --release -- --ignored`.

use datagen::{generate_corpus, CorpusConfig, StreamConfig, StreamGenerator};
use hetsyslog_core::{FeatureConfig, MonitorService, TextClassifier, TraditionalPipeline};
use hetsyslog_ml::ComplementNaiveBayes;
use logpipeline::{ListenerConfig, LogStore, OverloadPolicy, SyslogListener};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One loopback run: stream `frames` over 4 octet-counted TCP connections
/// into a listener with `clf` in-path at the given `max_batch`. Returns
/// (msgs/s, per-category counters). No noise prefilter: its edit-distance
/// scan costs the same per message in both modes, so the comparison
/// isolates the part of the path batching changes.
fn run_once(frames: &[String], clf: Arc<dyn TextClassifier>, max_batch: usize) -> (f64, [u64; 8]) {
    const CONNECTIONS: usize = 4;
    let store = Arc::new(LogStore::new());
    let service = Arc::new(MonitorService::new(clf));
    let listener = SyslogListener::start(
        store,
        Some(service.clone()),
        ListenerConfig {
            workers: 4,
            queue_depth: 4096,
            overload: OverloadPolicy::Block,
            max_batch,
            max_delay: Duration::from_millis(2),
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    let addr = listener.tcp_addr();

    let started = Instant::now();
    let senders: Vec<_> = (0..CONNECTIONS)
        .map(|c| {
            let shard: Vec<String> = frames
                .iter()
                .skip(c)
                .step_by(CONNECTIONS)
                .cloned()
                .collect();
            std::thread::spawn(move || {
                let mut sock = TcpStream::connect(addr).expect("connect");
                let mut wire = Vec::with_capacity(shard.iter().map(|f| f.len() + 8).sum());
                for frame in &shard {
                    wire.extend_from_slice(format!("{} {frame}", frame.len()).as_bytes());
                }
                sock.write_all(&wire).expect("write");
            })
        })
        .collect();
    for sender in senders {
        sender.join().expect("sender thread");
    }
    let expected = frames.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    while listener.stats().snapshot().ingested < expected && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let seconds = started.elapsed().as_secs_f64();
    let batch_stats = listener.batch_stats_handle();
    let report = listener.shutdown();
    assert_eq!(report.ingested, expected, "lossless under Block");
    assert_eq!(
        batch_stats.snapshot().frames(),
        expected,
        "batch-size histogram must account for every frame"
    );
    let stats = service.stats();
    (expected as f64 / seconds, stats.per_category)
}

#[test]
#[ignore = "timing assertion: run in release mode on an idle machine"]
fn batched_listener_at_least_as_fast_as_scalar_on_20k_frames() {
    let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.01,
        seed: 42,
        min_per_class: 8,
    }));
    let clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    ));
    let frames: Vec<String> = StreamGenerator::new(StreamConfig {
        seed: 42,
        ..StreamConfig::default()
    })
    .take(20_000)
    .map(|t| t.to_frame())
    .collect();

    let (scalar_rate, scalar_cats) = run_once(&frames, clf.clone(), 1);
    let (batch_rate, batch_cats) = run_once(&frames, clf, 64);

    assert_eq!(
        batch_cats, scalar_cats,
        "batched and scalar paths must predict identically"
    );
    assert!(
        batch_rate >= scalar_rate,
        "batched path slower than scalar: {batch_rate:.0} < {scalar_rate:.0} msg/s"
    );
    eprintln!(
        "live batch smoke: scalar {scalar_rate:.0} msg/s, batched {batch_rate:.0} msg/s ({:.2}x)",
        batch_rate / scalar_rate
    );
}
