//! Property tests for the spill codec and the spill buffer's replay
//! discipline (issue satellite). Three families of properties:
//!
//! * **round trip** — any batch of frames encodes and decodes back
//!   byte-identically, CRC verified, with exact frame boundaries;
//! * **corruption detection** — a torn tail or a flipped byte is *always*
//!   detected (never a panic, never a silently wrong frame): the clean
//!   prefix decodes intact and the damaged frame reports a `FrameError`.
//!   The same holds through `SpillBuffer::open`, which must quarantine a
//!   truncated tail and replay exactly the decodable prefix;
//! * **FIFO replay** — under any interleaving of `append`, `peek`,
//!   `commit` (with uncommitted re-peeks and small segment caps forcing
//!   rolls), committed frames come out exactly once in append order.

use logpipeline::spill::{
    decode_frame, encode_frame, encoded_len, FrameError, SpillBuffer, SpillConfig, SpillFrame,
    SPILL_HEADER_BYTES,
};
use logpipeline::testsupport::scratch_dir;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch dir per proptest case (cases run sequentially but must
/// not see each other's segments).
fn case_dir(tag: &str) -> std::path::PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    scratch_dir(&format!("{tag}-{}", CASE.fetch_add(1, Ordering::Relaxed)))
}

fn frames_from(parts: Vec<(u32, Vec<u8>)>) -> Vec<SpillFrame> {
    parts
        .into_iter()
        .enumerate()
        .map(|(i, (records, payload))| SpillFrame {
            seq: i as u64,
            // The ledger counts records per frame; zero is legal (an
            // empty batch) and must survive the codec too.
            records: records % 512,
            payload,
        })
        .collect()
}

fn encode_all(frames: &[SpillFrame]) -> Vec<u8> {
    let mut buf = Vec::new();
    for frame in frames {
        encode_frame(frame, &mut buf);
    }
    buf
}

/// Decode frames until clean end, error, or torn tail. Returns the decoded
/// prefix and the terminal result.
fn decode_all(buf: &[u8]) -> (Vec<SpillFrame>, Result<(), FrameError>) {
    let mut out = Vec::new();
    let mut offset = 0usize;
    loop {
        match decode_frame(buf, offset) {
            Ok(None) => return (out, Ok(())),
            Ok(Some((frame, consumed))) => {
                offset += consumed;
                out.push(frame);
            }
            Err(e) => return (out, Err(e)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode → decode is the identity, byte-for-byte, frame-for-frame.
    #[test]
    fn codec_round_trips_byte_identically(
        parts in collection::vec((0u32..4096, collection::vec(0u8..=255, 0..256)), 1..12)
    ) {
        let frames = frames_from(parts);
        let buf = encode_all(&frames);
        let expected: u64 = frames.iter().map(encoded_len).sum();
        prop_assert_eq!(buf.len() as u64, expected);

        let (decoded, end) = decode_all(&buf);
        prop_assert_eq!(end, Ok(()));
        prop_assert_eq!(&decoded, &frames);
        // Re-encoding the decode reproduces the original bytes exactly.
        prop_assert_eq!(encode_all(&decoded), buf);
    }

    /// A torn tail (truncation at any byte) never panics and never yields
    /// a wrong frame: the decodable prefix is exactly the frames that fit
    /// before the cut, and the remainder reports `Truncated` (or a clean
    /// end when the cut lands on a frame boundary).
    #[test]
    fn truncation_is_always_detected(
        parts in collection::vec((0u32..64, collection::vec(0u8..=255, 0..64)), 1..8),
        cut_sel in 0u64..1_000_000
    ) {
        let frames = frames_from(parts);
        let buf = encode_all(&frames);
        let cut = (cut_sel % buf.len() as u64) as usize;
        let torn = &buf[..cut];

        let (decoded, end) = decode_all(torn);
        // The prefix is intact and in order…
        prop_assert!(decoded.len() < frames.len());
        prop_assert_eq!(&decoded[..], &frames[..decoded.len()]);
        // …and the cut is either invisible (frame boundary) or flagged.
        let clean: u64 = frames[..decoded.len()].iter().map(encoded_len).sum();
        if cut as u64 == clean {
            prop_assert_eq!(end, Ok(()));
        } else {
            prop_assert_eq!(end, Err(FrameError::Truncated));
        }
    }

    /// A flipped byte anywhere in the stream is always detected: frames
    /// before the damage decode intact, the damaged frame errors, and no
    /// decoded frame ever differs from what was written.
    #[test]
    fn bit_damage_is_always_detected(
        parts in collection::vec((0u32..64, collection::vec(0u8..=255, 1..64)), 1..8),
        pos_sel in 0u64..1_000_000,
        delta in 1u8..=255
    ) {
        let frames = frames_from(parts);
        let mut buf = encode_all(&frames);
        let pos = (pos_sel % buf.len() as u64) as usize;
        buf[pos] ^= delta;

        let (decoded, end) = decode_all(&buf);
        // Which frame does the damaged byte live in?
        let mut boundary = 0u64;
        let mut damaged = 0usize;
        for (i, f) in frames.iter().enumerate() {
            boundary += encoded_len(f);
            if (pos as u64) < boundary {
                damaged = i;
                break;
            }
        }
        prop_assert_eq!(decoded.len(), damaged, "decode stops at the damage");
        prop_assert_eq!(&decoded[..], &frames[..damaged]);
        prop_assert!(end.is_err(), "damage reported, got {:?}", end);
    }

    /// `SpillBuffer::open` on a directory whose tail segment was torn at
    /// an arbitrary byte never panics, quarantines the damage, and replays
    /// exactly the decodable prefix in FIFO order.
    #[test]
    fn reopen_replays_the_decodable_prefix_of_a_torn_dir(
        parts in collection::vec((1u32..16, collection::vec(0u8..=255, 1..48)), 2..8),
        cut_sel in 0u64..1_000_000
    ) {
        let frames = frames_from(parts);
        let dir = case_dir("prop-torn");
        let (mut spill, report) =
            SpillBuffer::open(SpillConfig::new(&dir)).expect("open fresh");
        prop_assert_eq!(report.frames, 0);
        for f in &frames {
            spill.append(f).expect("append");
        }
        drop(spill); // crash: no seal, no drain

        // Tear the (single) active segment at an arbitrary byte.
        let seg = dir.join("spill-00000000.seg");
        let bytes = std::fs::read(&seg).expect("read segment");
        let cut = (cut_sel % bytes.len() as u64) as usize;
        std::fs::write(&seg, &bytes[..cut]).expect("truncate");

        let (mut spill, report) =
            SpillBuffer::open(SpillConfig::new(&dir)).expect("reopen torn dir");
        let mut replayed = Vec::new();
        while let Some(frame) = spill.peek().expect("peek") {
            replayed.push(frame);
            spill.commit();
        }
        // Replay is exactly the frames whose bytes fully precede the cut.
        let mut boundary = 0u64;
        let mut survivors = 0usize;
        for f in &frames {
            boundary += encoded_len(f);
            if boundary <= cut as u64 {
                survivors += 1;
            }
        }
        prop_assert_eq!(replayed.len(), survivors);
        prop_assert_eq!(&replayed[..], &frames[..survivors]);
        prop_assert_eq!(report.frames, survivors as u64);
        if cut as u64 > boundary_of(&frames, survivors) {
            // A partial frame was present: it must be quarantined, not
            // replayed and not fatal.
            prop_assert!(report.quarantined > 0);
        }
        prop_assert_eq!(spill.pending_frames(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Any interleaving of append / peek / commit — including re-peeks of
    /// uncommitted frames and segment rolls at a tiny cap — yields every
    /// frame exactly once, in append order.
    #[test]
    fn replay_is_fifo_under_any_schedule(
        parts in collection::vec((1u32..8, collection::vec(0u8..=255, 1..32)), 1..16),
        ops in collection::vec(0u8..3, 8..64),
        cap in 64u64..512
    ) {
        let frames = frames_from(parts);
        let dir = case_dir("prop-fifo");
        let (mut spill, _) =
            SpillBuffer::open(SpillConfig::new(&dir).with_segment_cap(cap)).expect("open");

        let mut next_append = 0usize;
        let mut committed: Vec<SpillFrame> = Vec::new();
        let mut peeked: Option<SpillFrame> = None;
        for op in ops {
            match op {
                0 if next_append < frames.len() => {
                    spill.append(&frames[next_append]).expect("append");
                    next_append += 1;
                }
                1 => {
                    if let Some(frame) = spill.peek().expect("peek") {
                        if let Some(prev) = &peeked {
                            // Un-committed peek must re-serve the same frame.
                            prop_assert_eq!(prev, &frame);
                        }
                        peeked = Some(frame);
                    }
                }
                2 => {
                    if let Some(frame) = peeked.take() {
                        spill.commit();
                        committed.push(frame);
                    }
                }
                _ => {}
            }
        }
        // Drain: append the rest, then replay everything left.
        for f in &frames[next_append..] {
            spill.append(f).expect("append");
        }
        if let Some(frame) = peeked.take() {
            spill.commit();
            committed.push(frame);
        }
        while let Some(frame) = spill.peek().expect("peek") {
            spill.commit();
            committed.push(frame);
        }
        prop_assert_eq!(&committed, &frames);
        prop_assert_eq!(spill.pending_frames(), 0);
        prop_assert_eq!(spill.pending_records(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Total encoded bytes of the first `n` frames.
fn boundary_of(frames: &[SpillFrame], n: usize) -> u64 {
    frames[..n].iter().map(encoded_len).sum()
}

/// Non-property sanity pin: the header constant matches the codec layout
/// (magic + seq + records + len + crc).
#[test]
fn header_constant_matches_layout() {
    assert_eq!(SPILL_HEADER_BYTES, 4 + 8 + 4 + 4 + 4);
    let frame = SpillFrame {
        seq: 9,
        records: 3,
        payload: b"xyz".to_vec(),
    };
    assert_eq!(encoded_len(&frame), SPILL_HEADER_BYTES as u64 + 3);
}
