//! Flight-recorder integration tests: the in-listener sampler + alert
//! engine observed end to end over real sockets.
//!
//! The acceptance scenario is the paper's model-maintenance story made
//! operational: a live listener classifies a baseline stream, the stream
//! drifts (datagen's vendor-migration mutator destroys the vocabulary the
//! model was trained on), the prediction-share PSI crosses the alert
//! threshold, the seeded `model_drift` rule fires — and resolves once the
//! stream returns to baseline.

use datagen::drift::{DriftConfig, DriftModel};
use datagen::{generate_corpus, CorpusConfig};
use hetsyslog_core::{FeatureConfig, ModelQuality, MonitorService, TraditionalPipeline};
use hetsyslog_ml::ComplementNaiveBayes;
use logpipeline::{ListenerConfig, LogStore, OverloadPolicy, SyslogListener};
use std::io::Write;
use std::net::{TcpStream, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll `cond` until it holds or `deadline_ms` passes.
fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// Octet-count `messages` into one wire buffer and send it over a fresh
/// TCP connection (robust to any message content, mutated or not).
fn send_tcp(addr: std::net::SocketAddr, messages: &[String]) {
    let mut sock = TcpStream::connect(addr).expect("connect");
    let mut wire = Vec::with_capacity(messages.iter().map(|m| m.len() + 64).sum());
    for message in messages {
        let frame = format!("<13>Oct 11 22:14:15 cn0001 app: {message}");
        wire.extend_from_slice(format!("{} {frame}", frame.len()).as_bytes());
    }
    sock.write_all(&wire).expect("write");
}

/// The drift acceptance test: baseline traffic freezes the PSI baseline,
/// a drift-mutated burst collapses the prediction distribution and fires
/// the seeded `model_drift` threshold rule, and a return to baseline
/// traffic rolls the window back and resolves it. Every observation is
/// made through the listener's own flight recorder and `/alerts` JSON.
#[test]
fn drift_mutated_stream_fires_and_resolves_model_drift_alert() {
    let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.01,
        seed: 42,
        min_per_class: 12,
    }));
    let clf = Arc::new(TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    ));
    // Small baseline/window so a few hundred messages exercise the whole
    // freeze → drift → recover cycle. 256 samples keeps the PSI sampling
    // noise (≈ 2(k−1)/n ≈ 0.05 for k = 8 categories) far below the 0.25
    // alert threshold.
    let service =
        Arc::new(MonitorService::new(clf).with_model_quality(ModelQuality::with_config(256, 256)));
    let telemetry = obs::Telemetry::new_arc();
    let listener = SyslogListener::start(
        Arc::new(LogStore::new()),
        Some(service.clone()),
        ListenerConfig {
            workers: 2,
            queue_depth: 1024,
            overload: OverloadPolicy::Block,
            telemetry: Some(telemetry),
            serve_metrics: true,
            flight_interval: Duration::from_millis(20),
            alert_rules: vec![obs::Rule::threshold(
                "model_drift",
                "hetsyslog_model_drift_psi_milli",
                obs::RuleInput::Last,
                obs::Cmp::Gt,
                250.0,
            )
            .over_ms(10_000)
            .for_ms(60)],
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    let addr = listener.tcp_addr();
    let engine = listener.alert_engine().expect("flight recorder on");
    // The generated corpus is grouped by category; rebuild it as a
    // strictly stationary stream — every round carries exactly one
    // message per category (cycling within each category) — so any
    // window's category mix matches the frozen baseline distribution.
    let mut by_category: Vec<Vec<String>> = vec![Vec::new(); 8];
    for (message, category) in &corpus {
        by_category[category.index()].push(message.clone());
    }
    let baseline: Vec<String> = (0..75)
        .flat_map(|round| {
            by_category
                .iter()
                .map(move |messages| messages[round % messages.len()].clone())
        })
        .collect();

    // Phase 1 — baseline: freezes the 256-prediction baseline and fills
    // the window with same-distribution predictions. PSI must stay calm.
    send_tcp(addr, &baseline);
    assert!(
        wait_until(30_000, || listener.stats().snapshot().ingested == 600),
        "baseline never ingested: {:?}",
        listener.stats().snapshot()
    );
    let quality = service.model_quality();
    assert!(quality.baseline_frozen(), "600 >> 256 predictions recorded");
    let calm_psi = quality.psi().expect("window populated");
    assert!(
        calm_psi < 0.25,
        "baseline traffic must not alert: {calm_psi}"
    );
    assert!(engine.firing().is_empty(), "{:?}", engine.statuses());

    // Phase 2 — drift: a new hardware generation joins the test-bed (the
    // paper's §3 scenario). Its firmware renames concepts (vendor-jargon
    // mutation) AND it floods the stream with its own traffic — thermal
    // complaints from the new silicon. The prediction mix collapses away
    // from the frozen baseline, PSI spikes, and the rule must walk
    // pending → firing.
    let mut drifter = DriftModel::new(DriftConfig {
        synonym_rate: 1.0,
        separator_rate: 1.0,
        suffix_rate: 1.0,
        vendor_jargon: true,
        seed: 7,
    });
    let thermal = &by_category[hetsyslog_core::Category::ThermalIssue.index()];
    let burst: Vec<String> = thermal.iter().cycle().take(400).cloned().collect();
    let drifted = drifter.mutate_all(&burst);
    send_tcp(addr, &drifted);
    assert!(
        wait_until(30_000, || listener.stats().snapshot().ingested == 1_000),
        "drift burst never ingested: {:?}",
        listener.stats().snapshot()
    );
    let drifted_psi = quality.psi().expect("window populated");
    assert!(
        drifted_psi > 0.25,
        "drift must push PSI over the alert threshold: {drifted_psi}"
    );
    assert!(
        wait_until(10_000, || engine
            .firing()
            .contains(&"model_drift".to_string())),
        "model_drift never fired: {:?}",
        engine.statuses()
    );

    // The dashboard's view agrees: /alerts serves the firing state over
    // real HTTP.
    let metrics_addr = listener.metrics_addr().expect("serving").to_string();
    let body = obs::http_get(&metrics_addr, "/alerts").expect("GET /alerts");
    let doc: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
    let alerts = doc.get("alerts").and_then(|a| a.as_array()).unwrap();
    let drift_alert = alerts
        .iter()
        .find(|a| a.get("name").and_then(|n| n.as_str()) == Some("model_drift"))
        .expect("seeded rule present");
    assert_eq!(
        drift_alert.get("state").and_then(|s| s.as_str()),
        Some("firing"),
        "{body}"
    );

    // Phase 3 — recovery: baseline traffic refills the rolling window,
    // PSI decays, and the alert resolves on the next sweep.
    send_tcp(addr, &baseline);
    assert!(
        wait_until(30_000, || listener.stats().snapshot().ingested == 1_600),
        "recovery traffic never ingested: {:?}",
        listener.stats().snapshot()
    );
    let recovered_psi = quality.psi().expect("window populated");
    assert!(
        recovered_psi < 0.25,
        "window must forget the excursion: {recovered_psi}"
    );
    assert!(
        wait_until(10_000, || engine.firing().is_empty()),
        "model_drift never resolved: {:?}",
        engine.statuses()
    );
    let transitions: Vec<&str> = engine
        .events()
        .iter()
        .filter(|e| e.rule == "model_drift")
        .map(|e| e.transition)
        .collect::<Vec<_>>()
        .into_iter()
        .collect();
    assert!(
        transitions.windows(2).any(|w| w == ["firing", "resolved"]),
        "event log must record the full cycle: {transitions:?}"
    );

    // Post-mortem: the flight ring survives shutdown, and the stop-time
    // sweep pinned the final PSI value into the timeline.
    let flight_store = listener.flight_store().expect("flight recorder on");
    let report = listener.shutdown();
    assert_eq!(report.ingested, 1_600);
    let last_psi = flight_store
        .latest("hetsyslog_model_drift_psi_milli", &[])
        .expect("PSI series recorded");
    assert!(last_psi.value < 250.0, "timeline ends calm: {last_psi:?}");
}

/// Endpoint + UDP-counter smoke: with the flight recorder on, `/alerts`
/// and `/flight` serve parseable JSON, the seeded threshold rule fires
/// once traffic arrives, and the UDP transport counters land on
/// `/metrics` with exact values.
#[test]
fn flight_and_alerts_endpoints_serve_json_and_udp_counters_export() {
    let telemetry = obs::Telemetry::new_arc();
    let listener = SyslogListener::start(
        Arc::new(LogStore::new()),
        None,
        ListenerConfig {
            telemetry: Some(telemetry),
            serve_metrics: true,
            flight_interval: Duration::from_millis(20),
            alert_rules: vec![obs::Rule::threshold(
                "traffic_seen",
                "hetsyslog_ingest_frames_total",
                obs::RuleInput::Last,
                obs::Cmp::Ge,
                1.0,
            )
            .over_ms(60_000)],
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    let metrics_addr = listener.metrics_addr().expect("serving").to_string();

    let frames: Vec<String> = (0..3).map(|k| format!("tcp probe {k}")).collect();
    send_tcp(listener.tcp_addr(), &frames);
    let udp = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    let datagrams = [&b"<13>Oct 11 22:14:15 cn0001 app: dgram a"[..], b"dgram b"];
    for payload in datagrams {
        udp.send_to(payload, listener.udp_addr()).expect("send");
    }
    assert!(
        wait_until(10_000, || listener.stats().snapshot().ingested == 5),
        "timed out: {:?}",
        listener.stats().snapshot()
    );

    // UDP transport counters (exact): 2 datagrams, their byte sum, and no
    // buffer-filling reads on loopback-sized payloads.
    let scrape =
        obs::parse_exposition(&obs::http_get(&metrics_addr, "/metrics").expect("GET /metrics"));
    assert_eq!(scrape.total("hetsyslog_udp_datagrams_total"), 2.0);
    let expected_bytes: usize = datagrams.iter().map(|d| d.len()).sum();
    assert_eq!(
        scrape.total("hetsyslog_udp_bytes_total"),
        expected_bytes as f64
    );
    assert_eq!(scrape.total("hetsyslog_udp_truncated_total"), 0.0);

    // The seeded rule fires once the sampler sees frames_total >= 1.
    let engine = listener.alert_engine().expect("flight recorder on");
    assert!(
        wait_until(10_000, || engine
            .firing()
            .contains(&"traffic_seen".to_string())),
        "rule never fired: {:?}",
        engine.statuses()
    );
    let alerts_body = obs::http_get(&metrics_addr, "/alerts").expect("GET /alerts");
    let doc: serde_json::Value = serde_json::from_str(&alerts_body).expect("valid JSON");
    let alerts = doc.get("alerts").and_then(|a| a.as_array()).unwrap();
    assert_eq!(alerts.len(), 1);
    assert_eq!(
        alerts[0].get("name").and_then(|n| n.as_str()),
        Some("traffic_seen")
    );
    assert_eq!(
        alerts[0].get("state").and_then(|s| s.as_str()),
        Some("firing")
    );
    assert!(
        !doc.get("events")
            .and_then(|e| e.as_array())
            .unwrap()
            .is_empty(),
        "firing transition must be logged: {alerts_body}"
    );

    // /flight serves the ring as JSON with the ingest series in it.
    let flight_body = obs::http_get(&metrics_addr, "/flight").expect("GET /flight");
    let flight: serde_json::Value = serde_json::from_str(&flight_body).expect("valid JSON");
    let series = flight.get("series").and_then(|s| s.as_array()).unwrap();
    assert!(
        series.iter().any(
            |s| s.get("name").and_then(|n| n.as_str()) == Some("hetsyslog_ingest_frames_total")
        ),
        "flight timeline must carry the ingest series"
    );

    // The in-process handle survives shutdown, and the stop-time sweep
    // captured the final drained counter values in the timeline.
    let flight_store = listener.flight_store().expect("flight recorder on");
    let report = listener.shutdown();
    assert_eq!(report.ingested, 5);
    let last = flight_store
        .latest("hetsyslog_ingest_frames_total", &[])
        .expect("series recorded");
    assert_eq!(last.value, 5.0, "final sweep must capture the drain");
}

/// With `record_flight: false` the listener serves `/metrics` but not the
/// flight endpoints, and spawns no sampler.
#[test]
fn flight_recorder_can_be_disabled() {
    let telemetry = obs::Telemetry::new_arc();
    let listener = SyslogListener::start(
        Arc::new(LogStore::new()),
        None,
        ListenerConfig {
            telemetry: Some(telemetry),
            serve_metrics: true,
            record_flight: false,
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    let metrics_addr = listener.metrics_addr().expect("serving").to_string();
    assert!(obs::http_get(&metrics_addr, "/metrics").is_ok());
    assert!(obs::http_get(&metrics_addr, "/flight").is_err(), "404");
    assert!(obs::http_get(&metrics_addr, "/alerts").is_err(), "404");
    assert!(listener.flight_store().is_none());
    assert!(listener.alert_engine().is_none());
    listener.shutdown();
}
