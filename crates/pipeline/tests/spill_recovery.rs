//! Crash-recovery integration test (issue satellite): a fan-out is killed
//! mid-spill — hard stop, no drain, plus a manually-appended torn frame
//! simulating a write cut off by the crash — then a fresh process (a new
//! `FanOut::open` over the same directory) must replay every durable batch
//! exactly once to the recovered sink, quarantine the torn tail, and keep
//! the conservation ledger balanced on both sides of the crash.

use logpipeline::testsupport::{sample_records, scratch_dir, wait_until};
use logpipeline::{
    BulkSink, FanOut, FaultPlan, SinkLaneConfig, SinkSpec, SpillBuffer, SpillConfig,
};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Every `spill-*.seg` under `dir`, oldest first.
fn segments(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut segs: Vec<_> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("spill-") && n.ends_with(".seg"))
                })
                .collect()
        })
        .unwrap_or_default();
    segs.sort();
    segs
}

#[test]
fn crash_mid_spill_replays_exactly_once_after_reopen() {
    let dir = scratch_dir("crash-recovery");
    let total = 48u64;

    // ---- Phase 1: the crashing process. The sink is hard-down from t=0,
    // so every batch lands in the spill; shutdown(0) is the crash — no
    // drain attempts, queue force-spilled, segments sealed.
    let down = FaultPlan::healthy().with_outage(Duration::ZERO, Duration::from_secs(3600));
    let sink = Arc::new(BulkSink::new("flaky-store", down).recording());
    let lane = SinkLaneConfig::default()
        .with_window(4)
        .with_retry(2, Duration::from_millis(1), Duration::from_millis(5))
        .with_spill(SpillConfig::new(&dir).with_segment_cap(1024));
    let fan_out =
        FanOut::open(vec![SinkSpec::with_config(sink.clone(), lane)], None).expect("open fan-out");
    for chunk in sample_records(0, total).chunks(6) {
        fan_out.submit(chunk);
    }
    assert!(
        wait_until(10_000, || {
            let s = &fan_out.snapshots()[0];
            s.in_flight == 0 || s.spilled_pending > 0
        }),
        "work must reach the lane: {:?}",
        fan_out.snapshots()
    );
    fan_out.shutdown(Duration::ZERO); // crash: force-spill, no drain
    let crashed = fan_out.snapshots().remove(0);
    drop(fan_out);
    assert!(crashed.ledger_balanced(), "{crashed:?}");
    assert_eq!(crashed.delivered, 0, "sink was down the whole time");
    assert_eq!(crashed.dropped, 0, "spill-backed lane never drops");
    assert_eq!(
        crashed.spilled_pending, total,
        "everything durable: {crashed:?}"
    );
    assert_eq!(sink.delivered_records(), 0);
    let segs = segments(&dir);
    assert!(
        segs.len() > 1,
        "1 KiB cap must have rolled segments: {segs:?}"
    );

    // ---- Torn final write: the crash cut a frame in half. Append the
    // first half of a real frame's bytes to the newest segment.
    let torn = {
        let mut buf = Vec::new();
        logpipeline::spill::encode_frame(
            &logpipeline::SpillFrame {
                seq: 9_999,
                records: 6,
                payload: vec![0xAB; 120],
            },
            &mut buf,
        );
        buf.truncate(buf.len() / 2);
        buf
    };
    let last = segs.last().expect("at least one segment");
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(last)
        .expect("open last segment");
    file.write_all(&torn).expect("append torn bytes");
    file.sync_all().expect("sync");
    drop(file);

    // ---- Phase 2: the restarted process. A healthy sink over the same
    // spill directory: open() must recover every intact frame, quarantine
    // the torn tail, and the worker replays it all without resubmission.
    let sink2 = Arc::new(BulkSink::new("flaky-store", FaultPlan::healthy()).recording());
    let lane2 = SinkLaneConfig::default().with_spill(SpillConfig::new(&dir));
    let fan_out2 = FanOut::open(vec![SinkSpec::with_config(sink2.clone(), lane2)], None)
        .expect("reopen over crashed dir");
    assert!(
        wait_until(10_000, || {
            let s = &fan_out2.snapshots()[0];
            s.spilled_pending == 0 && s.in_flight == 0
        }),
        "recovered spill must drain: {:?}",
        fan_out2.snapshots()
    );
    fan_out2.shutdown(Duration::from_secs(5));
    let recovered = fan_out2.snapshots().remove(0);

    assert!(recovered.ledger_balanced(), "{recovered:?}");
    assert_eq!(recovered.submitted, 0, "nothing new was submitted");
    assert_eq!(recovered.recovered, total, "ledger credits the recovery");
    assert_eq!(recovered.delivered, total, "{recovered:?}");
    assert_eq!(recovered.dropped, 0);

    // Exactly once, in order, with the original record identities.
    let ids = sink2.delivered_ids();
    assert_eq!(
        ids,
        (0..total).collect::<Vec<_>>(),
        "FIFO, no dups, no gaps"
    );

    // The torn tail is quarantined evidence, not silent loss.
    let quarantine = dir.join("quarantine");
    let tails: Vec<_> = std::fs::read_dir(&quarantine)
        .map(|rd| rd.filter_map(|e| e.ok()).collect())
        .unwrap_or_default();
    assert!(
        !tails.is_empty(),
        "torn tail must land in quarantine/: {quarantine:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The same crash shape at the `SpillBuffer` layer, with the torn write
/// *inside* phase 1's unsealed active segment (not appended after the
/// fact): reopen sees a clean prefix plus garbage and must recover the
/// prefix only.
#[test]
fn reopen_truncates_unsealed_active_segment_to_last_intact_frame() {
    let dir = scratch_dir("crash-active-seg");
    let (mut spill, _) = SpillBuffer::open(SpillConfig::new(&dir)).expect("open");
    let frames: Vec<_> = (0..5u64)
        .map(|seq| logpipeline::SpillFrame {
            seq,
            records: 2,
            payload: format!("batch-{seq}").into_bytes(),
        })
        .collect();
    for f in &frames {
        spill.append(f).expect("append");
    }
    drop(spill); // crash without seal

    // Half a frame of garbage at the tail of the active segment.
    let seg = segments(&dir).pop().expect("active segment exists");
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&seg)
        .expect("open");
    file.write_all(b"SPL1 then the power went out")
        .expect("append garbage");
    drop(file);

    let (mut spill, report) = SpillBuffer::open(SpillConfig::new(&dir)).expect("reopen");
    assert_eq!(report.frames, 5, "{report:?}");
    assert_eq!(report.records, 10);
    assert_eq!(report.quarantined, 1, "{report:?}");
    let mut replayed = Vec::new();
    while let Some(f) = spill.peek().expect("peek") {
        replayed.push(f);
        spill.commit();
    }
    assert_eq!(replayed, frames, "prefix replayed intact and in order");
    assert_eq!(spill.pending_frames(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
