//! The fault-injection harness: scripted error-rate / stall / outage
//! scenarios driven through the **real listener loop** (TCP sockets, the
//! shard fabric, micro-batch workers, the fan-out, the spill), asserting
//! the at-least-once ledger under both delivery disciplines:
//!
//! * **Block** (lossless): the lane has a durable spill — under any fault
//!   `submitted + recovered == delivered + spilled_pending + dropped +
//!   in_flight` holds, `dropped == 0`, and once the sink recovers
//!   `spilled_pending` drains to zero with every record delivered exactly
//!   once (no duplicate loss).
//! * **Shed** (lossy, accounted): no spill, a tiny window — drops happen
//!   but are *counted*, and the same ledger balances at every step.
//!
//! The `#[ignore]`d outage-storm smoke runs a multi-outage flap in release
//! mode for CI (`cargo test -p logpipeline --release --test sink_faults
//! -- --ignored`) and writes `target/sink_faults_ledger.json` for upload.

use logpipeline::testsupport::{fault_scenarios, scratch_dir, wait_until};
use logpipeline::{
    BulkSink, FanOut, FaultPlan, ListenerConfig, LogStore, OverloadPolicy, SinkLaneConfig,
    SinkSnapshot, SinkSpec, SpillConfig, SyslogListener,
};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Write `n` LF-framed syslog lines over one TCP connection.
fn send_frames(addr: SocketAddr, from: u64, n: u64) {
    let mut sock = TcpStream::connect(addr).expect("connect");
    for k in from..from + n {
        let frame = format!(
            "<13>Oct 11 22:14:{:02} cn{:04} app: fault harness frame {k}\n",
            k % 60,
            k % 9
        );
        sock.write_all(frame.as_bytes()).expect("write");
    }
}

/// Stand up store + fan-out + listener, push `frames` through the wire,
/// wait for the scenario's quiescence condition, and return the lane
/// ledger from *after* listener shutdown (so the drain path is always in
/// the assertion surface).
fn run_scenario(
    label: &str,
    plan: FaultPlan,
    lossless: bool,
    frames: u64,
    settle_ms: u64,
) -> (SinkSnapshot, Vec<u64>) {
    let dir = scratch_dir(&format!("faults-{label}"));
    let bulk = Arc::new(BulkSink::new(format!("bulk-{label}"), plan).recording());
    let mut lane = SinkLaneConfig::default().with_window(4).with_retry(
        3,
        Duration::from_millis(1),
        Duration::from_millis(20),
    );
    if lossless {
        lane = lane.with_spill(SpillConfig::new(&dir).with_segment_cap(64 * 1024));
    } else {
        lane = lane.with_overload(OverloadPolicy::Shed);
    }
    let fan_out =
        FanOut::open(vec![SinkSpec::with_config(bulk.clone(), lane)], None).expect("open fan-out");

    let store = Arc::new(LogStore::new());
    let listener = SyslogListener::start(
        store,
        None,
        ListenerConfig {
            workers: 2,
            queue_depth: 256,
            max_batch: 8,
            fan_out: Some(fan_out.clone()),
            ..ListenerConfig::default()
        },
    )
    .expect("bind listener");
    send_frames(listener.tcp_addr(), 0, frames);

    assert!(
        wait_until(15_000, || listener.stats().snapshot().ingested == frames),
        "listener must ingest all frames: {:?}",
        listener.stats().snapshot()
    );
    // Quiescence: lossless lanes must fully drain (spill replay included)
    // once the fault plan's faults pass; lossy lanes must settle to
    // delivered + dropped == submitted.
    let settled = wait_until(settle_ms, || {
        let s = &fan_out.snapshots()[0];
        if lossless {
            s.in_flight == 0 && s.spilled_pending == 0 && s.delivered == frames
        } else {
            s.in_flight == 0 && s.delivered + s.dropped == s.submitted
        }
    });
    assert!(
        settled,
        "scenario {label} failed to settle: {:?}",
        fan_out.snapshots()
    );
    listener.shutdown();
    let snap = fan_out.snapshots().remove(0);
    (snap, bulk.delivered_ids())
}

#[test]
fn fault_plans_hold_ledger_in_block_mode() {
    // The three scripted scenarios from the acceptance criteria: 5%
    // errors, 250 ms stalls, and a hard outage (2 s here; the CI storm
    // runs the 10 s version). Block mode: a spill-backed lane must end
    // with zero loss in every one.
    for (label, plan) in fault_scenarios(42, Duration::from_secs(2)) {
        let frames = if label == "stall_250ms" { 64 } else { 96 };
        let (snap, ids) = run_scenario(&format!("block-{label}"), plan, true, frames, 30_000);
        assert!(snap.ledger_balanced(), "{label}: {snap:?}");
        assert_eq!(snap.delivered, frames, "{label}: every frame delivered");
        assert_eq!(snap.dropped, 0, "{label}: Block mode never drops");
        assert_eq!(snap.spilled_pending, 0, "{label}: replay drained");
        assert_eq!(snap.replayed, snap.spilled, "{label}: spill fully replayed");
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len() as u64,
            frames,
            "{label}: every record exactly once ({} acks)",
            ids.len()
        );
    }
}

#[test]
fn fault_plans_hold_ledger_in_shed_mode() {
    // Shed mode: no spill, tiny window. Loss is allowed — silent loss is
    // not. Every scenario must keep the conservation ledger exact.
    for (label, plan) in fault_scenarios(1234, Duration::from_secs(2)) {
        let frames = if label == "stall_250ms" { 64 } else { 96 };
        let (snap, ids) = run_scenario(&format!("shed-{label}"), plan, false, frames, 30_000);
        assert!(snap.ledger_balanced(), "{label}: {snap:?}");
        assert_eq!(
            snap.delivered + snap.dropped,
            snap.submitted,
            "{label}: every record delivered or counted dropped: {snap:?}"
        );
        assert_eq!(snap.submitted, frames, "{label}");
        assert_eq!(snap.spilled, 0, "{label}: no spill configured");
        // No duplicate acks either (the sink only acks once per batch).
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), ids.len(), "{label}: no duplicate acks");
    }
}

/// Regression for the latent listener-shutdown gap: graceful drain used to
/// flush decoder tails and partial batches but had no story for in-flight
/// *sink* batches. `shutdown` must now wait for sink acks or spill the
/// remainder durably — the ledger is pinned at shutdown with nothing
/// stranded in memory.
#[test]
fn shutdown_drains_or_spills_in_flight_sink_batches() {
    let dir = scratch_dir("shutdown-gap");
    // Slow enough that shutdown always catches batches mid-flight.
    let plan = FaultPlan::healthy().with_stall(Duration::from_millis(120));
    let bulk = Arc::new(BulkSink::new("slow-drain", plan).recording());
    let lane = SinkLaneConfig::default()
        .with_window(2)
        .with_retry(2, Duration::from_millis(1), Duration::from_millis(10))
        .with_spill(SpillConfig::new(&dir));
    let fan_out =
        FanOut::open(vec![SinkSpec::with_config(bulk.clone(), lane)], None).expect("open fan-out");

    let store = Arc::new(LogStore::new());
    let listener = SyslogListener::start(
        store,
        None,
        ListenerConfig {
            workers: 2,
            max_batch: 8,
            fan_out: Some(fan_out.clone()),
            ..ListenerConfig::default()
        },
    )
    .expect("bind listener");
    let frames = 64u64;
    send_frames(listener.tcp_addr(), 0, frames);
    assert!(wait_until(10_000, || {
        listener.stats().snapshot().ingested == frames
    }));
    // Shut down immediately: the 120 ms-per-batch sink cannot possibly
    // have drained yet, so the drain path must finish the job.
    listener.shutdown();

    let snap = &fan_out.snapshots()[0];
    assert!(
        snap.ledger_balanced(),
        "ledger pinned at shutdown: {snap:?}"
    );
    assert_eq!(snap.submitted, frames);
    assert_eq!(snap.in_flight, 0, "nothing stranded in memory: {snap:?}");
    assert_eq!(snap.dropped, 0, "spill-backed drain never drops: {snap:?}");
    assert_eq!(
        snap.delivered + snap.spilled_pending,
        frames,
        "every record acked or durable: {snap:?}"
    );
    // Whatever was delivered was delivered exactly once.
    let mut ids = bulk.delivered_ids();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, snap.delivered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a spill, shutdown still accounts for every in-flight batch:
/// one drain attempt each, the rest counted as shutdown drops.
#[test]
fn shutdown_without_spill_counts_undeliverable_remainder() {
    let plan = FaultPlan::healthy().with_stall(Duration::from_millis(150));
    let bulk = Arc::new(BulkSink::new("slow-noshed", plan));
    let lane = SinkLaneConfig::default().with_window(64).with_retry(
        2,
        Duration::from_millis(1),
        Duration::from_millis(10),
    );
    let fan_out =
        FanOut::open(vec![SinkSpec::with_config(bulk, lane)], None).expect("open fan-out");
    let store = Arc::new(LogStore::new());
    let listener = SyslogListener::start(
        store,
        None,
        ListenerConfig {
            workers: 2,
            max_batch: 4,
            fan_out: Some(fan_out.clone()),
            ..ListenerConfig::default()
        },
    )
    .expect("bind listener");
    let frames = 48u64;
    send_frames(listener.tcp_addr(), 0, frames);
    assert!(wait_until(10_000, || {
        listener.stats().snapshot().ingested == frames
    }));
    listener.shutdown();
    let snap = &fan_out.snapshots()[0];
    assert!(snap.ledger_balanced(), "{snap:?}");
    assert_eq!(snap.in_flight, 0, "{snap:?}");
    assert_eq!(
        snap.delivered + snap.dropped,
        frames,
        "delivered or counted, nothing silent: {snap:?}"
    );
}

/// The CI outage-storm smoke (release mode, ~30 s wall): two hard outage
/// windows — including the acceptance criteria's 10 s one — plus 5%
/// background errors, under sustained wire traffic. The ledger JSON lands
/// in `target/sink_faults_ledger.json` for artifact upload whether or not
/// the assertions pass.
///
/// Run: `cargo test -p logpipeline --release --test sink_faults -- --ignored`
#[test]
#[ignore = "30s outage storm: run explicitly in CI"]
fn outage_storm_recovers_with_zero_loss() {
    let dir = scratch_dir("outage-storm");
    let plan = FaultPlan::healthy()
        .with_seed(7)
        .with_error_rate(0.05)
        .with_outage(Duration::from_secs(1), Duration::from_secs(10))
        .with_outage(Duration::from_secs(15), Duration::from_secs(5));
    let bulk = Arc::new(BulkSink::new("storm", plan).recording());
    let lane = SinkLaneConfig::default()
        .with_window(8)
        .with_retry(3, Duration::from_millis(1), Duration::from_millis(50))
        .with_spill(SpillConfig::new(&dir).with_segment_cap(256 * 1024));
    let fan_out =
        FanOut::open(vec![SinkSpec::with_config(bulk.clone(), lane)], None).expect("open fan-out");
    let store = Arc::new(LogStore::new());
    let listener = SyslogListener::start(
        store,
        None,
        ListenerConfig {
            workers: 2,
            queue_depth: 1024,
            max_batch: 16,
            fan_out: Some(fan_out.clone()),
            ..ListenerConfig::default()
        },
    )
    .expect("bind listener");
    let addr = listener.tcp_addr();

    // ~22 s of sustained traffic spanning both outage windows.
    let mut sent = 0u64;
    let started = std::time::Instant::now();
    while started.elapsed() < Duration::from_secs(22) {
        send_frames(addr, sent, 50);
        sent += 50;
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(wait_until(20_000, || {
        listener.stats().snapshot().ingested == sent
    }));
    // Recovery: after the last outage ends, replay must drain everything.
    let drained = wait_until(60_000, || {
        let s = &fan_out.snapshots()[0];
        s.in_flight == 0 && s.spilled_pending == 0 && s.delivered == sent
    });
    listener.shutdown();
    let snap = fan_out.snapshots().remove(0);

    let ledger = serde_json::json!({
        "scenario": "outage_storm",
        "frames": sent,
        "submitted": snap.submitted,
        "recovered": snap.recovered,
        "delivered": snap.delivered,
        "dropped": snap.dropped,
        "spilled": snap.spilled,
        "replayed": snap.replayed,
        "spilled_pending": snap.spilled_pending,
        "retries": snap.retries,
        "nacks": snap.nacks,
        "in_flight": snap.in_flight,
        "ledger_balanced": snap.ledger_balanced(),
        "drained": drained,
    });
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/sink_faults_ledger.json"
    );
    std::fs::write(out, serde_json::to_string_pretty(&ledger).unwrap()).expect("write ledger");

    assert!(drained, "storm did not drain: {snap:?}");
    assert!(snap.ledger_balanced(), "{snap:?}");
    assert_eq!(snap.delivered, sent, "zero loss across both outages");
    assert_eq!(snap.dropped, 0);
    assert!(snap.spilled > 0, "the outages must have spilled");
    let mut ids = bulk.delivered_ids();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len() as u64, sent, "exactly-once after dedup");
    let _ = std::fs::remove_dir_all(&dir);
}
