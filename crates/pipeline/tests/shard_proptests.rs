//! Property tests for the sharded live-path fabric (issue satellite): the
//! hash-by-connection partitioner preserves per-connection frame order and
//! exact total-frame accounting across shard counts {1, 2, 4, 8},
//! including when idle workers steal batches from sibling rings.
//!
//! The test is a deterministic single-threaded simulation of the worker
//! side: a proptest-driven schedule interleaves owner drains and steals
//! against the rings, every claimed batch is appended to a global claim
//! log, and the leftovers are drained at the end (the graceful-drain
//! path). The properties pinned:
//!
//! * **conservation** — every submitted frame is claimed exactly once;
//! * **per-connection order** — for each TCP connection, frame sequence
//!   numbers appear in submission order in the claim log (claims take
//!   contiguous FIFO runs, so steals cannot reorder a connection);
//! * **single-ring placement** — all of a connection's frames are claimed
//!   from one ring, whether by its owner or a thief.

use logpipeline::shard::ShardRouter;
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Instant;

/// A frame in flight: (connection id, per-connection sequence number).
type Frame = (u64, u64);

/// Run `schedule` against a `shards`-wide fabric fed with `conns` (one
/// entry per frame; 0 means UDP/round-robin) and return the claim log as
/// `(ring, batch)` entries.
fn simulate(
    shards: usize,
    conns: &[u64],
    schedule: &[(usize, usize)],
    max_batch: usize,
) -> Vec<(usize, Vec<Frame>)> {
    // Capacity comfortably above the frame count: the simulation drains
    // on a schedule, not concurrently, so nothing may block.
    let (router, receivers) = ShardRouter::<Frame>::build(shards, conns.len() * shards + shards);
    let mut seqs: HashMap<u64, u64> = HashMap::new();
    for &conn in conns {
        let seq = seqs.entry(conn).or_insert(0);
        let shard = if conn == 0 {
            router.partitioner().next_round_robin()
        } else {
            router.partitioner().shard_for_connection(conn)
        };
        router
            .try_send(shard, (conn, *seq))
            .expect("sized above frame count");
        *seq += 1;
    }

    let mut claims: Vec<(usize, Vec<Frame>)> = Vec::new();
    for &(shard_pick, op) in schedule {
        let shard = shard_pick % shards;
        let mut batch = Vec::new();
        let ring = if op == 2 {
            // Steal: threshold 1 so small simulated backlogs still steal.
            match receivers[shard].steal_batch(&mut batch, max_batch, 1) {
                Some((victim, _stolen)) => victim,
                None => continue,
            }
        } else {
            // Owner drain with an already-expired deadline: takes what is
            // queued, up to max_batch, without blocking.
            receivers[shard]
                .own
                .drain_into(&mut batch, max_batch, Instant::now());
            shard
        };
        if !batch.is_empty() {
            claims.push((ring, batch));
        }
    }
    // Graceful drain: every owner empties its own ring.
    for receiver in &receivers {
        loop {
            let mut batch = Vec::new();
            receiver
                .own
                .drain_into(&mut batch, max_batch, Instant::now());
            if batch.is_empty() {
                break;
            }
            claims.push((receiver.shard, batch));
        }
    }
    drop(router);
    claims
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation + per-connection order + single-ring placement, for
    /// every shard count, under an arbitrary drain/steal interleaving.
    #[test]
    fn partitioner_preserves_order_and_accounting_under_steals(
        conns in collection::vec(0u64..6, 1..160),
        schedule in collection::vec((0usize..8, 0usize..3), 0..120),
        max_batch in 1usize..16,
    ) {
        for shards in [1usize, 2, 4, 8] {
            let claims = simulate(shards, &conns, &schedule, max_batch);

            // Conservation: every frame claimed exactly once.
            let claimed: usize = claims.iter().map(|(_, b)| b.len()).sum();
            prop_assert_eq!(claimed, conns.len(), "shards={}", shards);

            // Claim batches never exceed the configured batch bound.
            for (_, batch) in &claims {
                prop_assert!(batch.len() <= max_batch);
            }

            // Per-connection order and placement, walking the claim log.
            let mut next_seq: HashMap<u64, u64> = HashMap::new();
            let mut ring_of: HashMap<u64, usize> = HashMap::new();
            for (ring, batch) in &claims {
                for &(conn, seq) in batch {
                    let expect = next_seq.entry(conn).or_insert(0);
                    if conn != 0 {
                        prop_assert_eq!(
                            seq, *expect,
                            "connection {} reordered at shards={}", conn, shards
                        );
                        let owner = ring_of.entry(conn).or_insert(*ring);
                        prop_assert_eq!(
                            *owner, *ring,
                            "connection {} split across rings at shards={}", conn, shards
                        );
                    }
                    *expect = (*expect).max(seq) + if conn == 0 { 0 } else { 1 };
                }
            }
            // Every UDP frame was still claimed exactly once (counted in
            // `claimed` above); round-robin placement intentionally gives
            // them no ordering contract.
        }
    }

    /// With steals disabled the claim log restricted to one ring is the
    /// ring's exact submission order — the same guarantee the single
    /// shared queue gave per worker.
    #[test]
    fn owner_only_drains_reproduce_ring_fifo(
        conns in collection::vec(1u64..5, 1..120),
        drains in collection::vec(0usize..8, 0..80),
        max_batch in 1usize..16,
    ) {
        for shards in [1usize, 2, 4, 8] {
            let schedule: Vec<(usize, usize)> =
                drains.iter().map(|&s| (s, 0)).collect();
            let claims = simulate(shards, &conns, &schedule, max_batch);
            // Concatenate claims per ring; per-connection seqs must be
            // strictly sequential from 0 within their ring.
            let mut per_conn: HashMap<u64, Vec<u64>> = HashMap::new();
            for (_, batch) in &claims {
                for &(conn, seq) in batch {
                    per_conn.entry(conn).or_default().push(seq);
                }
            }
            for (conn, seqs) in per_conn {
                let expected: Vec<u64> = (0..seqs.len() as u64).collect();
                prop_assert_eq!(
                    seqs, expected,
                    "connection {} out of order at shards={}", conn, shards
                );
            }
        }
    }
}
