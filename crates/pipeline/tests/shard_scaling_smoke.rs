//! Release-mode smoke test for the sharded live pipeline: 20k frames over
//! loopback TCP through a real trained classifier, once with one shard and
//! once with four. The frame ledger and the classifier's per-category
//! totals are asserted unconditionally; the scaling gate (shards=4 ≥ 1.5×
//! shards=1) only fires on machines with ≥ 4 cores, where the extra
//! workers can actually run in parallel.
//!
//! Ignored by default — timing assertions are only meaningful in release
//! builds on an otherwise idle machine. CI runs it serially with
//! `cargo test --release -- --ignored` and uploads the JSON it writes to
//! `target/shard_scaling_smoke.json` as a bench artifact.

use datagen::{generate_corpus, CorpusConfig, StreamConfig, StreamGenerator};
use hetsyslog_core::{FeatureConfig, MonitorService, TextClassifier, TraditionalPipeline};
use hetsyslog_ml::ComplementNaiveBayes;
use logpipeline::{ListenerConfig, LogStore, OverloadPolicy, SyslogListener};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One loopback run at `shards` pipeline shards (and as many workers).
/// Returns (msgs/s, per-category counters, total steals) after asserting
/// the exact frame ledger: lossless ingest, zero drops, and per-shard
/// routed/processed sums matching the aggregate.
fn run_once(
    frames: &[String],
    clf: Arc<dyn TextClassifier>,
    shards: usize,
) -> (f64, [u64; 8], u64) {
    const CONNECTIONS: usize = 8;
    let store = Arc::new(LogStore::with_lanes(shards));
    let service = Arc::new(MonitorService::new(clf));
    let listener = SyslogListener::start(
        store,
        Some(service.clone()),
        ListenerConfig {
            workers: shards,
            shards,
            queue_depth: 4096,
            overload: OverloadPolicy::Block,
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    assert_eq!(listener.n_shards(), shards);
    let addr = listener.tcp_addr();

    let started = Instant::now();
    let senders: Vec<_> = (0..CONNECTIONS)
        .map(|c| {
            let shard: Vec<String> = frames
                .iter()
                .skip(c)
                .step_by(CONNECTIONS)
                .cloned()
                .collect();
            std::thread::spawn(move || {
                let mut sock = TcpStream::connect(addr).expect("connect");
                let mut wire = Vec::with_capacity(shard.iter().map(|f| f.len() + 8).sum());
                for frame in &shard {
                    wire.extend_from_slice(format!("{} {frame}", frame.len()).as_bytes());
                }
                sock.write_all(&wire).expect("write");
            })
        })
        .collect();
    for sender in senders {
        sender.join().expect("sender thread");
    }
    let expected = frames.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(120);
    while listener.stats().snapshot().ingested < expected && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let seconds = started.elapsed().as_secs_f64();
    let shard_stats = listener.shard_stats_handle();
    let routed: u64 = shard_stats.iter().map(|s| s.routed.get()).sum();
    let processed: u64 = shard_stats.iter().map(|s| s.processed.get()).sum();
    let steals: u64 = shard_stats.iter().map(|s| s.steals.get()).sum();
    let report = listener.shutdown();

    // Exact frame-ledger conservation, independent of machine speed.
    assert_eq!(report.frames, expected, "every frame decoded");
    assert_eq!(report.ingested, expected, "lossless under Block");
    assert_eq!(report.shed + report.parse_errors, 0, "no drops: {report:?}");
    assert_eq!(routed, expected, "Σ shard routed == frames");
    assert_eq!(processed, expected, "Σ shard processed == frames");

    (
        expected as f64 / seconds,
        service.stats().per_category,
        steals,
    )
}

#[test]
#[ignore = "timing assertion: run in release mode on an idle machine"]
fn four_shards_scale_over_one_on_20k_frames() {
    let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.01,
        seed: 42,
        min_per_class: 8,
    }));
    let clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    ));
    let frames: Vec<String> = StreamGenerator::new(StreamConfig {
        seed: 42,
        ..StreamConfig::default()
    })
    .take(20_000)
    .map(|t| t.to_frame())
    .collect();

    let (rate_1, cats_1, steals_1) = run_once(&frames, clf.clone(), 1);
    let (rate_4, cats_4, steals_4) = run_once(&frames, clf, 4);

    // Partitioning must not change classification results, at any width.
    assert_eq!(
        cats_4, cats_1,
        "sharded and single-shard paths must predict identically"
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = rate_4 / rate_1;
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"shard_scaling_smoke\",\n",
            "  \"frames\": {},\n",
            "  \"cores\": {},\n",
            "  \"shards1_msgs_per_sec\": {:.0},\n",
            "  \"shards4_msgs_per_sec\": {:.0},\n",
            "  \"speedup\": {:.3},\n",
            "  \"steals_shards1\": {},\n",
            "  \"steals_shards4\": {},\n",
            "  \"scaling_gate_enforced\": {}\n",
            "}}\n"
        ),
        frames.len(),
        cores,
        rate_1,
        rate_4,
        speedup,
        steals_1,
        steals_4,
        cores >= 4,
    );
    // Best-effort artifact for CI upload; the assertions are the gate.
    let artifact = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/shard_scaling_smoke.json"
    );
    let _ = std::fs::write(artifact, &json);
    eprintln!("shard scaling smoke: {json}");

    if cores >= 4 {
        assert!(
            speedup >= 1.5,
            "4 shards must be ≥1.5x of 1 on a ≥4-core machine: \
             {rate_4:.0} vs {rate_1:.0} msg/s ({speedup:.2}x)"
        );
    } else {
        eprintln!("skipping scaling gate: only {cores} core(s) available");
    }
}
