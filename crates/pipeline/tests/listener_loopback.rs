//! Loopback integration tests for the socket-facing ingest front end:
//! concurrent TCP connections with hostile mixed framing, overload
//! policies, idle timeouts, UDP datagrams, and graceful drain.
//!
//! Every listener binds an ephemeral (`:0`) loopback port, so tests cannot
//! collide on addresses; CI still pins `--test-threads` for this binary to
//! keep socket-heavy tests from contending for the accept backlog.

use hetsyslog_core::{Category, MonitorService, Prediction, TextClassifier};
use logpipeline::{DropReason, Frontend, ListenerConfig, LogStore, OverloadPolicy, SyslogListener};
use std::io::Write;
use std::net::{TcpStream, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll `cond` until it holds or `deadline_ms` passes.
fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// A classifier that takes a fixed time per message, to make the bounded
/// queue actually fill under load.
struct SlowStub(Duration);

impl TextClassifier for SlowStub {
    fn name(&self) -> String {
        "slow-stub".to_string()
    }

    fn classify(&self, _message: &str) -> Prediction {
        std::thread::sleep(self.0);
        Prediction::bare(Category::Unimportant)
    }
}

/// The acceptance scenario: four concurrent TCP connections sending
/// interleaved octet-counted, LF-framed, corrupt-count, garbage, and
/// truncated traffic. Everything decodable ingests, drops land in the
/// right per-reason counters, and shutdown flushes the decoder tails.
#[test]
fn four_concurrent_connections_mixed_hostile_traffic() {
    let store = Arc::new(LogStore::new());
    let listener = SyslogListener::start(
        store.clone(),
        None,
        ListenerConfig {
            workers: 3,
            queue_depth: 64,
            overload: OverloadPolicy::Block,
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    let addr = listener.tcp_addr();

    let clients: Vec<_> = (0..4)
        .map(|c| {
            std::thread::spawn(move || {
                let mut sock = TcpStream::connect(addr).expect("connect");
                let mut wire = Vec::new();
                for k in 0..10 {
                    // Octet-counted frames.
                    let frame = format!("<13>Oct 11 22:14:{:02} cn{c:04} app: octet {k}", k % 60);
                    wire.extend_from_slice(format!("{} {frame}", frame.len()).as_bytes());
                }
                for k in 0..10 {
                    // LF-framed, with CRLF and blank-line noise.
                    let frame = format!("<13>Oct 11 22:15:{:02} cn{c:04} app: lf {k}", k % 60);
                    wire.extend_from_slice(frame.as_bytes());
                    wire.extend_from_slice(if k % 2 == 0 {
                        b"\r\n" as &[u8]
                    } else {
                        b"\n\n"
                    });
                }
                // A corrupt oversized octet count: dropped and resynced.
                wire.extend_from_slice(b"999999 \n");
                // Binary garbage still ingests via the free-form fallback.
                wire.extend_from_slice(b"@@garbage \x01\x02\xff!!\n");
                // A truncated octet-counted tail: the declared 60-byte
                // payload never fully arrives before the close.
                let tail = format!("<13>Oct 11 22:16:00 cn{c:04} app: truncated tail");
                wire.extend_from_slice(format!("60 {tail}").as_bytes());
                // Dribble in awkward chunk sizes to exercise partial
                // delivery across reads.
                for chunk in wire.chunks(23) {
                    sock.write_all(chunk).expect("write");
                }
                // Drop closes the socket; the listener flushes the tail.
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    // Per client: 10 octet + 10 LF + 1 garbage + 1 flushed tail = 22.
    let expected = 4 * 22;
    assert!(
        wait_until(10_000, || listener.stats().snapshot().ingested == expected),
        "timed out: {:?}",
        listener.stats().snapshot()
    );

    let report = listener.shutdown();
    assert_eq!(report.ingested, expected);
    assert_eq!(report.frames, expected);
    assert_eq!(report.decode_dropped, 4, "one corrupt count per client");
    assert_eq!(report.parse_errors, 0);
    assert_eq!(report.shed, 0, "Block policy never sheds");
    assert_eq!(report.connections, 4);
    assert_eq!(store.len() as u64, expected);
    // The truncated tails were flushed without their "60 " count tokens.
    let tails = store.search(0, i64::MAX / 2, &["truncated".to_string()]);
    assert_eq!(tails.len(), 4);
    assert!(tails.iter().all(|r| !r.message.contains("60 <13>")));
}

#[test]
fn shed_policy_counts_and_dead_letters_queue_full_drops() {
    let store = Arc::new(LogStore::new());
    let service = Arc::new(MonitorService::new(Arc::new(SlowStub(
        Duration::from_millis(3),
    ))));
    let listener = SyslogListener::start(
        store,
        Some(service),
        ListenerConfig {
            workers: 1,
            queue_depth: 2,
            overload: OverloadPolicy::Shed,
            dead_letter_capacity: 8,
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");

    let addr = listener.tcp_addr();
    let mut sock = TcpStream::connect(addr).expect("connect");
    let mut wire = Vec::new();
    for k in 0..100 {
        wire.extend_from_slice(format!("<13>Oct 11 22:14:15 cn0001 app: flood {k}\n").as_bytes());
    }
    sock.write_all(&wire).expect("write");
    drop(sock);

    assert!(
        wait_until(15_000, || {
            let s = listener.stats().snapshot();
            s.frames == 100 && s.ingested + s.shed == 100
        }),
        "timed out: {:?}",
        listener.stats().snapshot()
    );
    let shed = listener.stats().snapshot().shed;
    assert!(
        shed > 0,
        "a 2-deep queue against a 3ms/msg worker must shed"
    );

    // Dead letters: all QueueFull, ring capped at its capacity, total
    // matches the shed counter.
    let letters = listener.dead_letters().snapshot();
    assert!(!letters.is_empty());
    assert!(letters.iter().all(|l| l.reason == DropReason::QueueFull));
    assert!(letters.len() <= 8);
    assert_eq!(listener.dead_letters().total_recorded(), shed);

    // The combined health snapshot ties transport and classifier counters
    // together: every stored record was classified.
    let health = listener.health().expect("service attached");
    assert_eq!(health.monitor.total, health.ingest.ingested);
    assert_eq!(health.ingest.shed, shed);

    let report = listener.shutdown();
    assert_eq!(report.ingested + report.shed, 100);
}

#[test]
fn block_policy_is_lossless_against_slow_workers() {
    let store = Arc::new(LogStore::new());
    let service = Arc::new(MonitorService::new(Arc::new(SlowStub(
        Duration::from_millis(1),
    ))));
    let listener = SyslogListener::start(
        store.clone(),
        Some(service),
        ListenerConfig {
            workers: 1,
            queue_depth: 2,
            overload: OverloadPolicy::Block,
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");

    let addr = listener.tcp_addr();
    let mut sock = TcpStream::connect(addr).expect("connect");
    for k in 0..200 {
        sock.write_all(format!("<13>Oct 11 22:14:15 cn0001 app: steady {k}\n").as_bytes())
            .expect("write");
    }
    drop(sock);

    assert!(
        wait_until(20_000, || listener.stats().snapshot().ingested == 200),
        "timed out: {:?}",
        listener.stats().snapshot()
    );
    let report = listener.shutdown();
    assert_eq!(report.ingested, 200);
    assert_eq!(report.shed, 0);
    assert_eq!(store.len(), 200);
}

#[test]
fn idle_connection_is_closed_and_its_tail_flushed() {
    let store = Arc::new(LogStore::new());
    let listener = SyslogListener::start(
        store.clone(),
        None,
        ListenerConfig {
            idle_timeout: Duration::from_millis(150),
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");

    let addr = listener.tcp_addr();
    let mut sock = TcpStream::connect(addr).expect("connect");
    // An unterminated frame, then silence: the peer neither finishes the
    // line nor closes the socket.
    sock.write_all(b"<13>Oct 11 22:14:15 cn0001 app: half a line")
        .expect("write");

    assert!(
        wait_until(5_000, || listener.stats().snapshot().idle_closed == 1),
        "idle reaper never fired: {:?}",
        listener.stats().snapshot()
    );
    assert!(wait_until(5_000, || listener.stats().snapshot().ingested == 1));

    let report = listener.shutdown();
    assert_eq!(report.idle_closed, 1);
    assert_eq!(report.ingested, 1, "the decoder tail must be flushed");
    let hits = store.search(0, i64::MAX / 2, &["half".to_string()]);
    assert_eq!(hits.len(), 1);
    drop(sock);
}

#[test]
fn udp_datagrams_ingest_and_empty_datagrams_dead_letter() {
    let store = Arc::new(LogStore::new());
    let listener =
        SyslogListener::start(store.clone(), None, ListenerConfig::default()).expect("bind");

    let udp = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    for k in 0..4 {
        udp.send_to(
            format!("<13>Oct 11 22:14:15 cn0001 app: dgram {k}\n").as_bytes(),
            listener.udp_addr(),
        )
        .expect("send");
    }
    // A zero-length datagram decodes to an empty frame: the one input the
    // permissive parser rejects, so it must land in the dead letters.
    udp.send_to(b"", listener.udp_addr()).expect("send empty");

    assert!(
        wait_until(5_000, || {
            let s = listener.stats().snapshot();
            s.ingested == 4 && s.parse_errors == 1
        }),
        "timed out: {:?}",
        listener.stats().snapshot()
    );
    let letters = listener.dead_letters().snapshot();
    assert_eq!(letters.len(), 1);
    assert_eq!(letters[0].reason, DropReason::ParseError);
    assert_eq!(letters[0].source, logpipeline::listener::UDP_SOURCE);

    let per_source = listener.stats().per_source();
    let udp_row = per_source
        .iter()
        .find(|(id, _)| *id == logpipeline::listener::UDP_SOURCE)
        .expect("udp counters");
    assert_eq!(udp_row.1.frames, 5);

    let report = listener.shutdown();
    assert_eq!(report.ingested, 4);
    assert_eq!(report.parse_errors, 1);
}

#[test]
fn partial_batch_flushed_on_graceful_drain_without_loss() {
    let store = Arc::new(LogStore::new());
    let service = Arc::new(MonitorService::new(Arc::new(SlowStub(Duration::ZERO))));
    // max_batch 64 with a 5s fill deadline: 23 frames can never fill a
    // batch, and the deadline cannot expire before the drain below — so
    // every flush must come from the channel hanging up mid-fill.
    let listener = SyslogListener::start(
        store.clone(),
        Some(service),
        ListenerConfig {
            workers: 2,
            queue_depth: 256,
            overload: OverloadPolicy::Block,
            max_batch: 64,
            max_delay: Duration::from_secs(5),
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");

    let addr = listener.tcp_addr();
    let mut sock = TcpStream::connect(addr).expect("connect");
    for k in 0..23 {
        sock.write_all(format!("<13>Oct 11 22:14:15 cn0001 app: partial {k}\n").as_bytes())
            .expect("write");
    }
    drop(sock);

    // Wait only for the frames to be decoded off the socket — NOT for
    // them to be classified — then shut down while the workers still sit
    // mid-fill on their partial batches.
    assert!(
        wait_until(5_000, || listener.stats().snapshot().frames == 23),
        "frames never decoded: {:?}",
        listener.stats().snapshot()
    );
    let batch_stats = listener.batch_stats_handle();
    let report = listener.shutdown();

    // Lossless under Block: the partial batches were flushed on the way
    // out, not dropped.
    assert_eq!(report.ingested, 23);
    assert_eq!(report.shed, 0);
    assert_eq!(store.len(), 23);

    let batching = batch_stats.snapshot();
    assert_eq!(
        batching.frames(),
        23,
        "batch-size histogram must sum to the ingested count: {batching:?}"
    );
    assert_eq!(
        batching.queue_latency_us_hist.iter().sum::<u64>(),
        23,
        "every frame gets a queue-latency sample"
    );
    assert_eq!(batching.classified, 23, "no prefilter: all frames classify");
    assert!(
        batching.drain_flushes >= 1,
        "at least one partial batch flushed by the drain: {batching:?}"
    );
    assert_eq!(
        batching.full_flushes + batching.deadline_flushes,
        0,
        "no batch could fill (23 < 64) or hit the 5s deadline: {batching:?}"
    );
}

#[test]
fn batched_and_scalar_listeners_agree_on_stored_categories() {
    // The same traffic through max_batch = 1 (scalar path) and
    // max_batch = 32 must store identical category multisets and counters.
    let frames: Vec<String> = (0..120)
        .map(|k| {
            if k % 5 == 0 {
                format!("<13>Oct 11 22:14:15 cn0001 kernel: cpu clock throttled {k}\n")
            } else {
                format!("<13>Oct 11 22:14:15 cn0001 app: routine event {k}\n")
            }
        })
        .collect();

    struct ByContent;
    impl TextClassifier for ByContent {
        fn name(&self) -> String {
            "by-content".to_string()
        }
        fn classify(&self, message: &str) -> Prediction {
            if message.contains("throttled") {
                Prediction::bare(Category::ThermalIssue)
            } else {
                Prediction::bare(Category::Unimportant)
            }
        }
    }

    let mut results = Vec::new();
    for max_batch in [1usize, 32] {
        let store = Arc::new(LogStore::new());
        let service = Arc::new(MonitorService::new(Arc::new(ByContent)));
        let listener = SyslogListener::start(
            store.clone(),
            Some(service.clone()),
            ListenerConfig {
                workers: 2,
                max_batch,
                max_delay: Duration::from_millis(2),
                ..ListenerConfig::default()
            },
        )
        .expect("bind loopback listener");
        let mut sock = TcpStream::connect(listener.tcp_addr()).expect("connect");
        for frame in &frames {
            sock.write_all(frame.as_bytes()).expect("write");
        }
        drop(sock);
        assert!(
            wait_until(10_000, || listener.stats().snapshot().ingested == 120),
            "timed out at max_batch {max_batch}: {:?}",
            listener.stats().snapshot()
        );
        let batch_stats = listener.batch_stats_handle();
        let report = listener.shutdown();
        assert_eq!(report.ingested, 120);
        assert_eq!(batch_stats.snapshot().frames(), 120);
        let thermal = store.search(0, i64::MAX / 2, &["throttled".to_string()]);
        let stats = service.stats();
        results.push((thermal.len(), stats.total, stats.per_category));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0].0, 24);
}

/// Drop-accounting consistency sweep (telemetry edition): under both
/// overload policies against hostile traffic, a SINGLE `/metrics` scrape
/// must satisfy the conservation laws
///
/// ```text
/// frames_received == stored + Σ dropped{reason}
/// dead_letters    ==          Σ dropped{reason}
/// ```
///
/// Corrupt octet counts are dropped by the decoder *before* a frame
/// exists, so `hetsyslog_decoder_dropped_total` is deliberately outside
/// the frame ledger.
#[test]
fn drop_accounting_is_consistent_from_a_single_scrape() {
    for overload in [OverloadPolicy::Block, OverloadPolicy::Shed] {
        let telemetry = obs::Telemetry::new_arc();
        let store = Arc::new(LogStore::new());
        // A slow classifier under Shed makes the 2-deep queue actually
        // overflow; under Block it only delays the lossless drain.
        let service = Arc::new(MonitorService::new(Arc::new(SlowStub(
            Duration::from_millis(2),
        ))));
        let listener = SyslogListener::start(
            store.clone(),
            Some(service),
            ListenerConfig {
                workers: 1,
                queue_depth: 2,
                overload,
                dead_letter_capacity: 8,
                telemetry: Some(telemetry.clone()),
                serve_metrics: true,
                ..ListenerConfig::default()
            },
        )
        .expect("bind loopback listener");
        let metrics_addr = listener
            .metrics_addr()
            .expect("serve_metrics must expose an endpoint")
            .to_string();

        // Hostile mix: a flood of LF frames, a corrupt octet count (decoder
        // drop, pre-frame), and an empty UDP datagram (parse error).
        let mut sock = TcpStream::connect(listener.tcp_addr()).expect("connect");
        let mut wire = Vec::new();
        for k in 0..100 {
            wire.extend_from_slice(
                format!("<13>Oct 11 22:14:15 cn0001 app: hostile flood {k}\n").as_bytes(),
            );
        }
        wire.extend_from_slice(b"999999 \n");
        sock.write_all(&wire).expect("write");
        drop(sock);
        assert!(
            wait_until(20_000, || {
                let s = listener.stats().snapshot();
                s.frames == 100 && s.ingested + s.shed == 100
            }),
            "flood never quiesced under {overload:?}: {:?}",
            listener.stats().snapshot()
        );
        // Only after the queue drains, so the empty datagram reaches the
        // parser even under Shed instead of being shed at the edge.
        let udp = UdpSocket::bind("127.0.0.1:0").expect("bind client");
        udp.send_to(b"", listener.udp_addr()).expect("send empty");

        // Quiesce: every received frame is accounted for somewhere.
        assert!(
            wait_until(20_000, || {
                let s = listener.stats().snapshot();
                s.frames == 101 && s.ingested + s.shed + s.parse_errors == s.frames
            }),
            "never quiesced under {overload:?}: {:?}",
            listener.stats().snapshot()
        );

        // One scrape over real HTTP; every number below comes from it.
        let body = obs::http_get(&metrics_addr, "/metrics").expect("scrape");
        assert!(
            body.contains("# TYPE hetsyslog_ingest_frames_total counter"),
            "malformed exposition under {overload:?}"
        );
        let scrape = obs::parse_exposition(&body);
        let frames = scrape.total("hetsyslog_ingest_frames_total");
        let stored = scrape.total("hetsyslog_ingest_stored_total");
        let queue_full = scrape
            .value(
                "hetsyslog_ingest_dropped_total",
                &[("reason", "queue_full")],
            )
            .unwrap_or(0.0);
        let parse_error = scrape
            .value(
                "hetsyslog_ingest_dropped_total",
                &[("reason", "parse_error")],
            )
            .unwrap_or(0.0);
        let dead_letters = scrape.total("hetsyslog_dead_letters_total");

        assert_eq!(
            frames,
            stored + queue_full + parse_error,
            "frame ledger must balance under {overload:?}: {body}"
        );
        assert_eq!(
            dead_letters,
            queue_full + parse_error,
            "every drop must be dead-lettered under {overload:?}"
        );
        assert_eq!(parse_error, 1.0, "the empty datagram is the parse error");
        assert_eq!(
            scrape.total("hetsyslog_decoder_dropped_total"),
            1.0,
            "the corrupt octet count never became a frame"
        );
        match overload {
            OverloadPolicy::Block => assert_eq!(queue_full, 0.0, "Block never sheds"),
            OverloadPolicy::Shed => assert!(
                queue_full > 0.0,
                "a 2-deep queue against a 2ms/msg worker must shed"
            ),
        }
        // The registry view and the legacy snapshot API agree exactly.
        let snap = listener.stats().snapshot();
        assert_eq!(snap.frames as f64, frames);
        assert_eq!(snap.ingested as f64, stored);
        assert_eq!(snap.shed as f64, queue_full);
        listener.shutdown();
    }
}

/// Regression: the thread-per-connection accept loop used to push every
/// connection handle into a vec it never pruned, so a long-lived listener
/// leaked one JoinHandle per connection. Finished handles are now reaped
/// at every accept, keeping the vec bounded by live connections.
#[test]
fn conn_thread_handles_are_reaped_under_churn() {
    let store = Arc::new(LogStore::new());
    let listener = SyslogListener::start(
        store,
        None,
        ListenerConfig {
            frontend: Frontend::Threads,
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    let addr = listener.tcp_addr();

    const CHURN: u64 = 60;
    for k in 0..CHURN {
        let mut sock = TcpStream::connect(addr).expect("connect");
        sock.write_all(format!("<13>Oct 11 22:14:15 cn0001 app: churn {k}\n").as_bytes())
            .expect("write");
        // Close and wait for the frame so each connection fully retires
        // (thread exit may lag the close by a scheduler tick).
        drop(sock);
        assert!(
            wait_until(5_000, || listener.stats().snapshot().ingested == k + 1),
            "frame {k} never ingested: {:?}",
            listener.stats().snapshot()
        );
    }
    assert!(
        listener.conn_thread_count() < CHURN as usize,
        "handle vec grew monotonically: {} handles after {CHURN} connections",
        listener.conn_thread_count()
    );

    // Probe connections trigger reaps of the (by now finished) churn
    // threads; the tracked count must drop to just-live handles.
    assert!(
        wait_until(5_000, || {
            let sock = TcpStream::connect(addr).expect("probe connect");
            drop(sock);
            listener.conn_thread_count() <= 3
        }),
        "reap never converged: {} handles tracked",
        listener.conn_thread_count()
    );

    let report = listener.shutdown();
    assert_eq!(report.ingested, CHURN);
}

/// The reactor and thread front ends must be interchangeable: the same
/// hostile traffic produces identical ingest ledgers and stored content
/// through both.
#[test]
fn reactor_and_thread_frontends_produce_identical_ledgers() {
    let mut reports = Vec::new();
    for frontend in [Frontend::Threads, Frontend::Reactor { threads: 2 }] {
        let store = Arc::new(LogStore::new());
        let listener = SyslogListener::start(
            store.clone(),
            None,
            ListenerConfig {
                frontend,
                workers: 2,
                ..ListenerConfig::default()
            },
        )
        .expect("bind loopback listener");
        match frontend {
            Frontend::Threads => assert_eq!(listener.n_reactors(), 0),
            Frontend::Reactor { threads } => assert_eq!(listener.n_reactors(), threads),
        }
        let addr = listener.tcp_addr();
        let clients: Vec<_> = (0..3)
            .map(|c| {
                std::thread::spawn(move || {
                    let mut sock = TcpStream::connect(addr).expect("connect");
                    let mut wire = Vec::new();
                    for k in 0..20 {
                        let frame =
                            format!("<13>Oct 11 22:14:{:02} cn{c:04} app: parity {k}", k % 60);
                        if k % 2 == 0 {
                            wire.extend_from_slice(format!("{} {frame}", frame.len()).as_bytes());
                        } else {
                            wire.extend_from_slice(frame.as_bytes());
                            wire.push(b'\n');
                        }
                    }
                    wire.extend_from_slice(b"999999 \n"); // corrupt count
                    for chunk in wire.chunks(17) {
                        sock.write_all(chunk).expect("write");
                    }
                })
            })
            .collect();
        for client in clients {
            client.join().expect("client thread");
        }
        assert!(
            wait_until(10_000, || listener.stats().snapshot().ingested == 60),
            "timed out under {frontend:?}: {:?}",
            listener.stats().snapshot()
        );
        let report = listener.shutdown();
        assert_eq!(store.len(), 60);
        reports.push((
            report.frames,
            report.ingested,
            report.shed,
            report.parse_errors,
            report.decode_dropped,
            report.connections,
        ));
    }
    assert_eq!(
        reports[0], reports[1],
        "thread and reactor front ends must account identically"
    );
}

#[test]
fn graceful_shutdown_flushes_tails_of_still_open_connections() {
    let store = Arc::new(LogStore::new());
    let listener =
        SyslogListener::start(store.clone(), None, ListenerConfig::default()).expect("bind");
    let addr = listener.tcp_addr();

    // Two peers park mid-frame and keep their sockets open across the
    // shutdown: one unterminated LF frame, one truncated octet frame.
    let mut lf_sock = TcpStream::connect(addr).expect("connect");
    lf_sock
        .write_all(b"<13>Oct 11 22:14:15 cn0001 app: open lf tail")
        .expect("write");
    let mut oc_sock = TcpStream::connect(addr).expect("connect");
    oc_sock
        .write_all(b"55 <13>Oct 11 22:14:15 cn0002 app: open octet tail")
        .expect("write");

    // Wait until both payloads have been read off the sockets.
    let expected_bytes = (b"<13>Oct 11 22:14:15 cn0001 app: open lf tail".len()
        + b"55 <13>Oct 11 22:14:15 cn0002 app: open octet tail".len())
        as u64;
    assert!(
        wait_until(5_000, || listener.stats().snapshot().bytes
            == expected_bytes),
        "payloads never arrived: {:?}",
        listener.stats().snapshot()
    );

    let report = listener.shutdown();
    assert_eq!(report.ingested, 2, "both decoder tails must be flushed");
    assert_eq!(report.connections, 2);
    let octet = store.search(0, i64::MAX / 2, &["octet".to_string()]);
    assert_eq!(octet.len(), 1);
    assert!(
        !octet[0].message.starts_with("55 "),
        "count token must not leak into the flushed tail"
    );
    drop(lf_sock);
    drop(oc_sock);
}
