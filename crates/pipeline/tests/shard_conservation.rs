//! Frame-ledger conservation across shard counts (tentpole re-pin).
//!
//! The sharded fabric must keep the exact accounting invariant the single
//! shared queue guaranteed, for every shard count and both overload
//! policies:
//!
//! * **Block**:  frames == ingested + parse_errors, shed == 0;
//! * **Shed**:   frames == ingested + shed + parse_errors;
//! * dead letters == shed + parse_errors (every dropped frame is
//!   dead-lettered exactly once, with the right reason);
//! * per-shard ledgers sum to the aggregate: Σ routed == frames − shed
//!   and Σ processed == ingested + parse_errors;
//! * classification results are bit-identical across shard counts.

use hetsyslog_core::{Category, IngestSnapshot, MonitorService, Prediction, TextClassifier};
use logpipeline::{DropReason, ListenerConfig, LogStore, OverloadPolicy, SyslogListener};
use std::io::Write;
use std::net::{TcpStream, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll `cond` until it holds or `deadline_ms` passes.
fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// Deterministic content-keyed classifier: the predicted category depends
/// only on the message bytes, so per-category totals must be identical no
/// matter how frames were partitioned across shards.
struct ParityStub;

impl TextClassifier for ParityStub {
    fn name(&self) -> String {
        "parity-stub".to_string()
    }

    fn classify(&self, message: &str) -> Prediction {
        if message.len().is_multiple_of(2) {
            Prediction::bare(Category::Unimportant)
        } else {
            Prediction::bare(Category::ThermalIssue)
        }
    }
}

/// A classifier that takes a fixed time per message, to make the bounded
/// rings actually fill and shed under load.
struct SlowStub(Duration);

impl TextClassifier for SlowStub {
    fn name(&self) -> String {
        "slow-stub".to_string()
    }

    fn classify(&self, _message: &str) -> Prediction {
        std::thread::sleep(self.0);
        Prediction::bare(Category::Unimportant)
    }
}

/// Drive one listener with mixed TCP + UDP traffic (including frames that
/// can only parse-error) and return `(snapshot, per_category, shard sums)`.
fn run_block(shards: usize) -> (IngestSnapshot, [u64; 8], (u64, u64)) {
    const CONNS: usize = 4;
    const PER_CONN: usize = 50;
    const UDP_OK: usize = 20;
    const UDP_EMPTY: usize = 10;

    let store = Arc::new(LogStore::with_lanes(shards));
    let service = Arc::new(MonitorService::new(Arc::new(ParityStub)));
    let listener = SyslogListener::start(
        store,
        Some(service.clone()),
        ListenerConfig {
            workers: shards,
            shards,
            queue_depth: 256,
            overload: OverloadPolicy::Block,
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    assert_eq!(listener.n_shards(), shards);
    let addr = listener.tcp_addr();

    let clients: Vec<_> = (0..CONNS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut sock = TcpStream::connect(addr).expect("connect");
                let mut wire = Vec::new();
                for k in 0..PER_CONN {
                    let frame = format!(
                        "<13>Oct 11 22:14:{:02} cn{c:04} app: sharded frame {k}",
                        k % 60
                    );
                    wire.extend_from_slice(format!("{} {frame}", frame.len()).as_bytes());
                }
                for chunk in wire.chunks(37) {
                    sock.write_all(chunk).expect("write");
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    let udp = UdpSocket::bind("127.0.0.1:0").expect("bind client");
    for k in 0..UDP_OK {
        udp.send_to(
            format!("<13>Oct 11 22:15:{:02} udp0001 app: datagram {k}", k % 60).as_bytes(),
            listener.udp_addr(),
        )
        .expect("send");
    }
    for _ in 0..UDP_EMPTY {
        // Empty datagrams decode to empty frames and can only parse-error.
        udp.send_to(b"", listener.udp_addr()).expect("send empty");
    }

    let frames = (CONNS * PER_CONN + UDP_OK + UDP_EMPTY) as u64;
    assert!(
        wait_until(20_000, || {
            let s = listener.stats().snapshot();
            s.frames == frames && s.ingested + s.parse_errors == frames
        }),
        "frames did not settle at shards={shards}: {:?}",
        listener.stats().snapshot()
    );

    let shard_stats = listener.shard_stats_handle();
    let routed: u64 = shard_stats.iter().map(|s| s.routed.get()).sum();
    let processed: u64 = shard_stats.iter().map(|s| s.processed.get()).sum();
    let letters = listener.dead_letters().snapshot();
    assert!(letters.iter().all(|l| l.reason == DropReason::ParseError));
    let dead_lettered = listener.dead_letters().total_recorded();
    let report = listener.shutdown();
    assert_eq!(
        dead_lettered, report.parse_errors,
        "every parse error dead-letters exactly once at shards={shards}"
    );
    (report, service.stats().per_category, (routed, processed))
}

/// Block policy is lossless at every shard count, the per-shard ledgers
/// sum to the aggregate, and predictions are bit-identical to shards=1.
#[test]
fn block_ledger_conserves_across_shard_counts() {
    let mut baseline: Option<[u64; 8]> = None;
    for shards in [1usize, 2, 4] {
        let (report, per_category, (routed, processed)) = run_block(shards);
        let frames = report.frames;
        assert_eq!(report.shed, 0, "Block never sheds (shards={shards})");
        assert_eq!(
            report.ingested + report.parse_errors,
            frames,
            "conservation broke at shards={shards}: {report:?}"
        );
        assert!(report.parse_errors > 0, "empty datagrams must parse-error");
        // Per-shard ledgers are exact, not approximate.
        assert_eq!(routed, frames, "Σ shard routed == frames (shards={shards})");
        assert_eq!(
            processed,
            report.ingested + report.parse_errors,
            "Σ shard processed == ingested + parse_errors (shards={shards})"
        );
        // Partitioning must not change what the classifier computed.
        match &baseline {
            None => baseline = Some(per_category),
            Some(expect) => assert_eq!(
                &per_category, expect,
                "per-category predictions diverged at shards={shards}"
            ),
        }
    }
}

/// Shed policy: drops are exact, per-reason, and dead-lettered — at every
/// shard count the ledger still adds up to the frame count.
#[test]
fn shed_ledger_conserves_across_shard_counts() {
    for shards in [1usize, 2, 4] {
        const FRAMES: u64 = 120;
        let store = Arc::new(LogStore::with_lanes(shards));
        let service = Arc::new(MonitorService::new(Arc::new(SlowStub(
            Duration::from_millis(2),
        ))));
        let listener = SyslogListener::start(
            store,
            Some(service),
            ListenerConfig {
                workers: shards,
                shards,
                queue_depth: 2 * shards,
                max_batch: 2,
                overload: OverloadPolicy::Shed,
                ..ListenerConfig::default()
            },
        )
        .expect("bind loopback listener");
        let addr = listener.tcp_addr();

        let mut sock = TcpStream::connect(addr).expect("connect");
        for k in 0..FRAMES {
            let frame = format!("<13>Oct 11 22:14:{:02} cn0000 app: burst {k}", k % 60);
            sock.write_all(format!("{} {frame}", frame.len()).as_bytes())
                .expect("write");
        }
        drop(sock);

        assert!(
            wait_until(20_000, || {
                let s = listener.stats().snapshot();
                s.frames == FRAMES && s.ingested + s.shed == FRAMES
            }),
            "ledger did not settle at shards={shards}: {:?}",
            listener.stats().snapshot()
        );
        let letters = listener.dead_letters().snapshot();
        assert!(letters.iter().all(|l| l.reason == DropReason::QueueFull));
        let dead_lettered = listener.dead_letters().total_recorded();
        let report = listener.shutdown();
        assert!(
            report.shed > 0,
            "a {}-deep ring fabric against a 2ms/msg worker must shed (shards={shards})",
            2 * shards
        );
        assert_eq!(
            report.ingested + report.shed + report.parse_errors,
            FRAMES,
            "conservation broke at shards={shards}: {report:?}"
        );
        assert_eq!(
            dead_lettered,
            report.shed + report.parse_errors,
            "every drop dead-letters exactly once at shards={shards}"
        );
    }
}
