//! Release-mode smoke test for the ingest front ends: 20k frames over 256
//! loopback TCP connections through a real trained classifier, once with
//! the thread-per-connection front end and once with the epoll reactor.
//! The frame and connection ledgers plus prediction agreement are
//! asserted unconditionally; the scaling gate (reactor ≥ 1.3× threads)
//! only fires on machines with ≥ 4 cores, where 256 connection threads
//! actually contend for the run queue.
//!
//! Ignored by default — timing assertions are only meaningful in release
//! builds on an otherwise idle machine. CI runs it serially with
//! `cargo test --release -- --ignored` and uploads the JSON it writes to
//! `target/frontend_scaling_smoke.json` as a bench artifact.

use datagen::{generate_corpus, CorpusConfig, StreamConfig, StreamGenerator};
use hetsyslog_core::{FeatureConfig, MonitorService, TextClassifier, TraditionalPipeline};
use hetsyslog_ml::ComplementNaiveBayes;
use logpipeline::{Frontend, ListenerConfig, LogStore, OverloadPolicy, SyslogListener};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One loopback run of `frames` over `connections` TCP connections
/// through `frontend`. Returns (msgs/s, per-category counters, front-end
/// thread count) after asserting the frame and connection ledgers.
fn run_once(
    frames: &[String],
    clf: Arc<dyn TextClassifier>,
    frontend: Frontend,
    connections: usize,
) -> (f64, [u64; 8], usize) {
    let store = Arc::new(LogStore::with_lanes(2));
    let service = Arc::new(MonitorService::new(clf));
    let listener = SyslogListener::start(
        store,
        Some(service.clone()),
        ListenerConfig {
            frontend,
            workers: 2,
            queue_depth: 4096,
            overload: OverloadPolicy::Block,
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    let addr = listener.tcp_addr();
    // The front end's own thread count: reactors, or one thread per
    // connection at peak for the thread front end.
    let frontend_threads = match frontend {
        Frontend::Threads => connections,
        Frontend::Reactor { .. } => listener.n_reactors(),
    };

    let started = Instant::now();
    let senders: Vec<_> = (0..connections)
        .map(|c| {
            let share: Vec<String> = frames
                .iter()
                .skip(c)
                .step_by(connections)
                .cloned()
                .collect();
            std::thread::spawn(move || {
                let mut sock = TcpStream::connect(addr).expect("connect");
                let mut wire = Vec::with_capacity(share.iter().map(|f| f.len() + 8).sum());
                for frame in &share {
                    wire.extend_from_slice(format!("{} {frame}", frame.len()).as_bytes());
                }
                sock.write_all(&wire).expect("write");
            })
        })
        .collect();
    for sender in senders {
        sender.join().expect("sender thread");
    }
    let expected = frames.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(180);
    while listener.stats().snapshot().ingested < expected && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let seconds = started.elapsed().as_secs_f64();
    let opened = listener.stats().connections_opened.clone();
    let closed = listener.stats().connections_closed.clone();
    let report = listener.shutdown();

    // Ledgers hold on every machine, regardless of timing.
    assert_eq!(report.frames, expected, "every frame decoded");
    assert_eq!(report.ingested, expected, "lossless under Block");
    assert_eq!(report.shed + report.parse_errors, 0, "no drops: {report:?}");
    assert_eq!(report.connections, connections as u64);
    assert_eq!(
        opened.get(),
        closed.get(),
        "every accepted connection closed after the drain ({frontend:?})"
    );

    (
        expected as f64 / seconds,
        service.stats().per_category,
        frontend_threads,
    )
}

#[test]
#[ignore = "timing assertion: run in release mode on an idle machine"]
fn reactor_scales_over_thread_per_connection_at_256_conns() {
    let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.01,
        seed: 42,
        min_per_class: 8,
    }));
    let clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(Default::default())),
        &corpus,
    ));
    let frames: Vec<String> = StreamGenerator::new(StreamConfig {
        seed: 42,
        ..StreamConfig::default()
    })
    .take(20_000)
    .map(|t| t.to_frame())
    .collect();

    const CONNECTIONS: usize = 256;
    let (rate_threads, cats_threads, nthreads) =
        run_once(&frames, clf.clone(), Frontend::Threads, CONNECTIONS);
    let (rate_reactor, cats_reactor, nreactors) =
        run_once(&frames, clf, Frontend::Reactor { threads: 2 }, CONNECTIONS);

    // The front end must not change classification results.
    assert_eq!(
        cats_reactor, cats_threads,
        "reactor and thread front ends must predict identically"
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = rate_reactor / rate_threads;
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"frontend_scaling_smoke\",\n",
            "  \"frames\": {},\n",
            "  \"connections\": {},\n",
            "  \"cores\": {},\n",
            "  \"threads_msgs_per_sec\": {:.0},\n",
            "  \"reactor_msgs_per_sec\": {:.0},\n",
            "  \"threads_frontend_threads\": {},\n",
            "  \"reactor_frontend_threads\": {},\n",
            "  \"speedup\": {:.3},\n",
            "  \"scaling_gate_enforced\": {}\n",
            "}}\n"
        ),
        frames.len(),
        CONNECTIONS,
        cores,
        rate_threads,
        rate_reactor,
        nthreads,
        nreactors,
        speedup,
        cores >= 4,
    );
    // Best-effort artifact for CI upload; the assertions are the gate.
    let artifact = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/frontend_scaling_smoke.json"
    );
    let _ = std::fs::write(artifact, &json);
    eprintln!("frontend scaling smoke: {json}");

    if cores >= 4 {
        assert!(
            speedup >= 1.3,
            "the reactor must be ≥1.3x of thread-per-connection at \
             {CONNECTIONS} connections on a ≥4-core machine: \
             {rate_reactor:.0} vs {rate_threads:.0} msg/s ({speedup:.2}x)"
        );
    } else {
        eprintln!("skipping scaling gate: only {cores} core(s) available");
    }
}
