//! High-fanout soak for the epoll reactor front end: 512 short-lived
//! concurrent connections multiplexed onto a 2-thread reactor pool, with
//! the full conservation ledger asserted after the drain:
//!
//! ```text
//! frames == stored + Σ dropped{reason}
//! connections_opened == connections_closed
//! ```
//!
//! This is the workload shape the reactor exists for — far more
//! connections than threads — and the one the thread-per-connection
//! front end handles by spawning 512 OS threads.

use logpipeline::{Frontend, ListenerConfig, LogStore, OverloadPolicy, SyslogListener};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll `cond` until it holds or `deadline_ms` passes.
fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// 512 connections (32 writer threads × 16 sequential connections each),
/// every connection sending a handful of frames — the last one left as an
/// unterminated tail the close must flush.
#[test]
fn reactor_soak_512_connections_conserves_ledger() {
    const WRITERS: usize = 32;
    const CONNS_PER_WRITER: usize = 16;
    const FRAMES_PER_CONN: u64 = 4; // 3 LF-framed + 1 flushed tail
    const CONNECTIONS: u64 = (WRITERS * CONNS_PER_WRITER) as u64;
    const EXPECTED: u64 = CONNECTIONS * FRAMES_PER_CONN;

    let store = Arc::new(LogStore::new());
    let listener = SyslogListener::start(
        store.clone(),
        None,
        ListenerConfig {
            frontend: Frontend::Reactor { threads: 2 },
            workers: 2,
            queue_depth: 1024,
            overload: OverloadPolicy::Block,
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    assert_eq!(listener.n_reactors(), 2);
    let addr = listener.tcp_addr();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                for c in 0..CONNS_PER_WRITER {
                    let mut sock = TcpStream::connect(addr).expect("connect");
                    let mut wire = Vec::new();
                    for k in 0..FRAMES_PER_CONN - 1 {
                        wire.extend_from_slice(
                            format!("<13>Oct 11 22:14:15 cn{w:02}{c:02} app: soak {k}\n")
                                .as_bytes(),
                        );
                    }
                    // Unterminated tail: only the close flushes it.
                    wire.extend_from_slice(
                        format!("<13>Oct 11 22:14:15 cn{w:02}{c:02} app: soak tail").as_bytes(),
                    );
                    sock.write_all(&wire).expect("write");
                    drop(sock); // short-lived: close immediately
                }
            })
        })
        .collect();
    for writer in writers {
        writer.join().expect("writer thread");
    }

    assert!(
        wait_until(60_000, || {
            let s = listener.stats().snapshot();
            s.ingested == EXPECTED && s.connections == CONNECTIONS
        }),
        "soak never quiesced: {:?}",
        listener.stats().snapshot()
    );

    let reactor_stats = listener.reactor_stats_handle();
    let opened = listener.stats().connections_opened.clone();
    let closed = listener.stats().connections_closed.clone();
    let report = listener.shutdown();

    // Conservation: every decoded frame is stored or dropped by reason.
    assert_eq!(
        report.frames,
        report.ingested + report.shed + report.parse_errors,
        "frame ledger must balance: {report:?}"
    );
    assert_eq!(
        report.frames, EXPECTED,
        "every frame decoded, tails included"
    );
    assert_eq!(report.ingested, EXPECTED, "lossless under Block");
    assert_eq!(report.connections, CONNECTIONS);
    assert_eq!(store.len() as u64, EXPECTED);

    // Connection ledger: after the drain every accept has a matching
    // close, and no reactor still holds a registered connection.
    assert_eq!(opened.get(), CONNECTIONS);
    assert_eq!(
        closed.get(),
        opened.get(),
        "every accepted connection must be closed after the drain"
    );
    let registered: i64 = reactor_stats.iter().map(|r| r.connections.get()).sum();
    assert_eq!(registered, 0, "drain must deregister every connection");
    let wakeups: u64 = reactor_stats.iter().map(|r| r.wakeups.get()).sum();
    assert!(wakeups > 0, "reactors must actually have run");
}

/// The connection ledger balances even when peers vanish mid-frame: every
/// opened connection is closed by EOF, idle sweep, or the drain.
#[test]
fn reactor_balances_opened_and_closed_across_abrupt_disconnects() {
    let store = Arc::new(LogStore::new());
    let listener = SyslogListener::start(
        store,
        None,
        ListenerConfig {
            frontend: Frontend::Reactor { threads: 2 },
            workers: 1,
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    let addr = listener.tcp_addr();

    // 64 peers connect, write half a frame, and vanish without closing
    // cleanly in order (socket drop sends RST or FIN mid-decode).
    let socks: Vec<TcpStream> = (0..64)
        .map(|k| {
            let mut sock = TcpStream::connect(addr).expect("connect");
            sock.write_all(format!("<13>Oct 11 22:14:15 cn{k:04} app: abrupt").as_bytes())
                .expect("write");
            sock
        })
        .collect();
    assert!(
        wait_until(10_000, || { listener.stats().snapshot().connections == 64 }),
        "connects never landed: {:?}",
        listener.stats().snapshot()
    );
    drop(socks);

    // Every tail flushes and every close is accounted without a drain.
    assert!(
        wait_until(10_000, || listener.stats().snapshot().ingested == 64),
        "tails never flushed: {:?}",
        listener.stats().snapshot()
    );
    let closed = listener.stats().connections_closed.clone();
    assert!(
        wait_until(10_000, || closed.get() == 64),
        "closes never accounted: {}",
        closed.get()
    );
    let report = listener.shutdown();
    assert_eq!(report.connections, 64);
    assert_eq!(report.ingested, 64);
}
