//! Property tests for the template-mining columnar store (issue
//! satellite): the codec is a **storage format**, so the bar is exact —
//! encode→decode must be byte-identical for arbitrary token streams, and
//! the decompression-skipping template counts must agree with a naive
//! full-scan oracle.

use hetsyslog_core::Category;
use logpipeline::columnar::{compress_block, decompress_block, Segment};
use logpipeline::LogRecord;
use proptest::prelude::*;
use std::collections::BTreeMap;
use syslog_model::{Facility, Severity};
use textproc::template;

/// Adversarial fixed messages: runs of spaces, empty strings, tabs, and
/// the literal `<*>` variable marker.
const EDGE_MESSAGES: [&str; 6] = [
    "",
    "  ",
    " leading and trailing ",
    "a  double  space",
    "<*> literal marker",
    "tab\tinside word",
];

/// Messages that exercise the miner: a few shared skeletons with variable
/// slots (the realistic case), arbitrary printable strings, and the
/// adversarial edge messages above.
fn message_strategy() -> impl Strategy<Value = String> {
    (0u32..8, 0u32..50, 0u32..8, "[ -~]{0,40}").prop_map(|(pick, v, n, free)| match pick {
        0..=2 => format!("temperature {v}C on node cn{n:02}"),
        3 | 4 => format!("I/O error on /dev/sd{n} pid {v}"),
        5 => EDGE_MESSAGES[(v as usize) % EDGE_MESSAGES.len()].to_string(),
        _ => free,
    })
}

fn record_strategy() -> impl Strategy<Value = LogRecord> {
    (
        (0u64..u64::MAX, -3600i64..3600, 0u32..8, 0u32..4),
        (0u8..8, 0u8..24, 0usize..16, message_strategy()),
    )
        .prop_map(|((id, t, node, app), (sev, fac, cat, message))| LogRecord {
            id,
            unix_seconds: t,
            node: format!("cn{node:02}"),
            app: format!("app{app}"),
            severity: Severity::from_code(sev).unwrap(),
            facility: Facility::from_code(fac).unwrap(),
            message,
            // Half the draws carry no category (None round-trips too).
            category: Category::from_index(cat),
        })
}

proptest! {
    /// Template mining + reconstruction is byte-identical for arbitrary
    /// message batches, at any similarity threshold.
    #[test]
    fn mining_round_trip_is_byte_identical(
        messages in collection::vec(message_strategy(), 0..40),
        threshold in 0.05f64..1.0,
    ) {
        let (templates, rows) = template::mine(&messages, threshold);
        prop_assert_eq!(rows.len(), messages.len());
        for (msg, (id, vars)) in messages.iter().zip(&rows) {
            prop_assert_eq!(
                &templates[*id as usize].reconstruct(vars),
                msg,
                "reconstruction must be lossless"
            );
        }
    }

    /// The block compressor round-trips arbitrary bytes exactly.
    #[test]
    fn block_compression_round_trips(data in collection::vec(0u8..=255, 0..2000)) {
        let block = compress_block(&data);
        prop_assert_eq!(decompress_block(&block), Some(data));
    }

    /// Segment encode → decode reproduces every record exactly (all
    /// fields, message byte-identical), in insertion order — and survives
    /// a serialization round trip.
    #[test]
    fn segment_round_trip_is_lossless(records in collection::vec(record_strategy(), 0..60)) {
        let segment = Segment::build(&records, 0.5);
        prop_assert_eq!(segment.n_rows(), records.len());
        prop_assert_eq!(&segment.decode_all(), &records);
        let revived = Segment::from_bytes(&segment.to_bytes()).expect("self-produced bytes parse");
        prop_assert_eq!(&revived.decode_all(), &records);
    }

    /// `count_rows_by_template` — which skips decompression for fully
    /// covered segments and decodes only two columns otherwise — agrees
    /// with a naive oracle that fully decodes the segment and re-derives
    /// each row's count by scanning every template's rows.
    #[test]
    fn template_counts_match_full_scan_oracle(
        records in collection::vec(record_strategy(), 1..60),
        from in -4000i64..4000,
        len in 0i64..8000,
    ) {
        let segment = Segment::build(&records, 0.5);
        let to = from.saturating_add(len);

        // Oracle: per template pattern, count decoded rows in range by
        // scanning each template's rows independently. Aggregated by
        // pattern string, like the fast path, in case two clusters
        // converge to the same pattern.
        let mut oracle: BTreeMap<String, u64> = BTreeMap::new();
        let patterns: Vec<String> =
            segment.template_patterns().iter().map(|p| p.to_string()).collect();
        for (idx, pattern) in patterns.iter().enumerate() {
            let mut n = 0u64;
            segment.template_scan(idx, |rec| {
                if rec.unix_seconds >= from && rec.unix_seconds < to {
                    n += 1;
                }
            });
            if n > 0 {
                *oracle.entry(pattern.clone()).or_default() += n;
            }
        }

        let mut fast = BTreeMap::new();
        segment.count_rows_by_template(from, to, &mut fast);
        prop_assert_eq!(&fast, &oracle);
        // Full coverage (the zero-decompression path) must count all rows.
        let mut all = BTreeMap::new();
        segment.count_rows_by_template(i64::MIN, i64::MAX, &mut all);
        prop_assert_eq!(all.values().sum::<u64>(), records.len() as u64);
    }
}
