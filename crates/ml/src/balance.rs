//! Class-balancing strategies for imbalanced log data (§4.4.2).
//!
//! The paper's related work (Studiawan & Sohel) finds data balancing
//! critical for log anomaly detection and recommends ADASYN / random
//! oversampling. [`Dataset::random_oversample`] covers the latter; this
//! module adds the synthetic-minority family:
//!
//! * [`smote_oversample`] — SMOTE: new minority samples are interpolations
//!   between a minority point and one of its k nearest minority
//!   neighbours.
//! * [`adasyn_oversample`] — ADASYN: like SMOTE, but the number of
//!   synthetic samples per minority point is proportional to how many of
//!   its neighbours belong to *other* classes, focusing generation on the
//!   hard boundary regions.

use crate::dataset::Dataset;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use textproc::SparseVec;

/// k nearest same-set neighbours by cosine similarity (brute force; the
/// balancing set is the small minority class).
fn knn_indices(points: &[&SparseVec], query: usize, k: usize) -> Vec<usize> {
    let mut scored: Vec<(usize, f64)> = points
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != query)
        .map(|(i, p)| (i, points[query].cosine(p)))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.truncate(k);
    scored.into_iter().map(|(i, _)| i).collect()
}

/// Interpolate `a + λ(b − a)` in sparse space.
fn interpolate(a: &SparseVec, b: &SparseVec, lambda: f64) -> SparseVec {
    let mut pairs: Vec<(u32, f64)> = Vec::with_capacity(a.nnz() + b.nnz());
    for (i, v) in a.iter() {
        pairs.push((i, v * (1.0 - lambda)));
    }
    for (i, v) in b.iter() {
        pairs.push((i, v * lambda));
    }
    SparseVec::from_pairs(pairs)
}

/// SMOTE: oversample every minority class to the majority count with
/// synthetic interpolations between nearest minority neighbours.
pub fn smote_oversample(data: &Dataset, k: usize, seed: u64) -> Dataset {
    synthetic_oversample(data, k, seed, false)
}

/// ADASYN: like SMOTE, but generation density follows each point's
/// boundary difficulty (fraction of other-class points among its k nearest
/// neighbours in the full dataset).
pub fn adasyn_oversample(data: &Dataset, k: usize, seed: u64) -> Dataset {
    synthetic_oversample(data, k, seed, true)
}

fn synthetic_oversample(data: &Dataset, k: usize, seed: u64, adaptive: bool) -> Dataset {
    let counts = data.class_counts();
    let target = counts.iter().copied().max().unwrap_or(0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut features = data.features.clone();
    let mut labels = data.labels.clone();

    for (class, &count) in counts.iter().enumerate() {
        if count == 0 || count >= target {
            continue;
        }
        let minority_idx: Vec<usize> = (0..data.len())
            .filter(|&i| data.labels[i] == class)
            .collect();
        let minority: Vec<&SparseVec> = minority_idx.iter().map(|&i| &data.features[i]).collect();
        let deficit = target - count;

        // Per-point generation weights.
        let weights: Vec<f64> = if adaptive && data.len() > 1 {
            minority_idx
                .iter()
                .map(|&i| {
                    // Difficulty = other-class fraction among k nearest in
                    // the full dataset.
                    let mut scored: Vec<(usize, f64)> = (0..data.len())
                        .filter(|&j| j != i)
                        .map(|j| (j, data.features[i].cosine(&data.features[j])))
                        .collect();
                    scored
                        .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                    let neighbours = scored.iter().take(k.max(1));
                    let other = neighbours
                        .clone()
                        .filter(|&&(j, _)| data.labels[j] != class)
                        .count();
                    other as f64 / k.max(1) as f64 + 1e-6
                })
                .collect()
        } else {
            vec![1.0; minority.len()]
        };
        let weight_sum: f64 = weights.iter().sum();

        if minority.len() == 1 {
            // Nothing to interpolate with: replicate.
            for _ in 0..deficit {
                features.push(minority[0].clone());
                labels.push(class);
            }
            continue;
        }

        for _ in 0..deficit {
            // Weighted choice of the seed point.
            let mut pick = rng.gen_range(0.0..weight_sum);
            let mut src = 0usize;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    src = i;
                    break;
                }
                pick -= w;
            }
            let neighbours = knn_indices(&minority, src, k.min(minority.len() - 1).max(1));
            let nb = neighbours[rng.gen_range(0..neighbours.len())];
            let lambda: f64 = rng.gen_range(0.0..1.0);
            features.push(interpolate(minority[src], minority[nb], lambda));
            labels.push(class);
        }
    }
    let mut out = Dataset::new(features, labels, data.class_names.clone());
    // Preserve the parent dimensionality.
    if out.n_features() < data.n_features() {
        out = pad_dims(out, data.n_features());
    }
    out
}

fn pad_dims(data: Dataset, _n: usize) -> Dataset {
    // Dataset dimensionality is max-index based; synthetic points can only
    // use existing indices so no padding is ever required — kept for
    // clarity of intent.
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imbalanced() -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        // Majority class 0: 12 points on features 0/1.
        for i in 0..12 {
            features.push(SparseVec::from_pairs(vec![
                (0, 1.0),
                (1, 0.5 + (i % 4) as f64 * 0.1),
            ]));
            labels.push(0);
        }
        // Minority class 1: 3 points on features 2/3.
        for i in 0..3 {
            features.push(SparseVec::from_pairs(vec![
                (2, 1.0),
                (3, 0.4 + i as f64 * 0.2),
            ]));
            labels.push(1);
        }
        Dataset::new(features, labels, vec!["major".into(), "minor".into()])
    }

    #[test]
    fn smote_balances_counts() {
        let data = imbalanced();
        let balanced = smote_oversample(&data, 3, 7);
        assert_eq!(balanced.class_counts(), vec![12, 12]);
        assert_eq!(balanced.len(), 24);
    }

    #[test]
    fn smote_synthetics_stay_in_minority_subspace() {
        let data = imbalanced();
        let balanced = smote_oversample(&data, 3, 7);
        for (x, &l) in balanced
            .features
            .iter()
            .zip(&balanced.labels)
            .skip(data.len())
        {
            assert_eq!(l, 1, "synthetic samples must carry the minority label");
            // Interpolations of minority points never touch majority-only
            // features 0/1.
            assert_eq!(x.get(0), 0.0);
            assert_eq!(x.get(1), 0.0);
            assert!(x.get(2) > 0.0);
        }
    }

    #[test]
    fn adasyn_balances_counts() {
        let data = imbalanced();
        let balanced = adasyn_oversample(&data, 3, 7);
        assert_eq!(balanced.class_counts(), vec![12, 12]);
    }

    #[test]
    fn singleton_minority_replicates() {
        let mut features = vec![SparseVec::from_pairs(vec![(0, 1.0)]); 5];
        let mut labels = vec![0usize; 5];
        features.push(SparseVec::from_pairs(vec![(1, 1.0)]));
        labels.push(1);
        let data = Dataset::new(features, labels, vec!["a".into(), "b".into()]);
        let balanced = smote_oversample(&data, 3, 1);
        assert_eq!(balanced.class_counts(), vec![5, 5]);
        // All synthetic copies identical to the singleton.
        for (x, &l) in balanced.features.iter().zip(&balanced.labels).skip(6) {
            assert_eq!(l, 1);
            assert_eq!(x.get(1), 1.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let data = imbalanced();
        let a = smote_oversample(&data, 3, 9);
        let b = smote_oversample(&data, 3, 9);
        assert_eq!(a.features, b.features);
        let c = smote_oversample(&data, 3, 10);
        assert_ne!(a.features, c.features);
    }

    #[test]
    fn already_balanced_is_untouched() {
        let features = vec![
            SparseVec::from_pairs(vec![(0, 1.0)]),
            SparseVec::from_pairs(vec![(1, 1.0)]),
        ];
        let data = Dataset::new(features, vec![0, 1], vec!["a".into(), "b".into()]);
        let balanced = adasyn_oversample(&data, 3, 1);
        assert_eq!(balanced.len(), 2);
    }

    #[test]
    fn interpolation_endpoints() {
        let a = SparseVec::from_pairs(vec![(0, 2.0)]);
        let b = SparseVec::from_pairs(vec![(1, 4.0)]);
        let mid = interpolate(&a, &b, 0.5);
        assert!((mid.get(0) - 1.0).abs() < 1e-12);
        assert!((mid.get(1) - 2.0).abs() < 1e-12);
        let at_a = interpolate(&a, &b, 0.0);
        assert_eq!(at_a.get(0), 2.0);
        assert_eq!(at_a.get(1), 0.0);
    }
}
