//! Random forest: bagged CART trees with per-node feature subsampling,
//! trained in parallel with rayon — the paper's best pre-ablation model
//! (weighted F1 0.9995).

use crate::batch::BatchClassifier;
use crate::dataset::Dataset;
use crate::traits::Classifier;
use crate::tree::{DecisionTree, DecisionTreeConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use textproc::SparseVec;

/// Forest hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree config template (its `seed`/`feature_subsample` are
    /// overridden per tree).
    pub tree: DecisionTreeConfig,
    /// Features sampled per node; `None` = √(n_features).
    pub mtry: Option<usize>,
    /// Bootstrap-sample size as a fraction of the training set.
    pub bootstrap_ratio: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 40,
            tree: DecisionTreeConfig {
                max_depth: 32,
                min_samples_split: 2,
                ..DecisionTreeConfig::default()
            },
            mtry: None,
            bootstrap_ratio: 1.0,
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RandomForest {
    config: RandomForestConfig,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Create an untrained forest.
    pub fn new(config: RandomForestConfig) -> RandomForest {
        RandomForest {
            config,
            trees: Vec::new(),
            n_classes: 0,
        }
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "Random Forest"
    }

    fn fit(&mut self, data: &Dataset) {
        self.n_classes = data.n_classes();
        let n = data.len();
        let mtry = self
            .config
            .mtry
            .unwrap_or_else(|| (data.n_features() as f64).sqrt().ceil() as usize);
        let sample_size = ((n as f64) * self.config.bootstrap_ratio).round().max(1.0) as usize;
        let seed = self.config.seed;
        let tree_template = self.config.tree.clone();
        self.trees = (0..self.config.n_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(t as u64 * 0x9E37_79B9));
                let indices: Vec<usize> = (0..sample_size).map(|_| rng.gen_range(0..n)).collect();
                let mut tree = DecisionTree::new(DecisionTreeConfig {
                    feature_subsample: Some(mtry.max(1)),
                    seed: seed.wrapping_add(0xABCD).wrapping_add(t as u64),
                    ..tree_template.clone()
                });
                tree.fit_indices(data, &indices);
                tree
            })
            .collect();
    }

    fn predict(&self, x: &SparseVec) -> usize {
        assert!(!self.trees.is_empty(), "predict before fit");
        let mut votes = vec![0usize; self.n_classes];
        for tree in &self.trees {
            votes[tree.predict(x)] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// Trees branch on one feature at a time, so there is no matrix kernel to
/// exploit; the default row-parallel fallback is already the right shape.
impl BatchClassifier for RandomForest {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testutil::{assert_learns_toy, toy_dataset};

    #[test]
    fn learns_toy_problem() {
        let mut m = RandomForest::new(RandomForestConfig {
            n_trees: 15,
            ..RandomForestConfig::default()
        });
        assert_learns_toy(&mut m);
    }

    #[test]
    fn deterministic_under_seed() {
        let data = toy_dataset();
        let cfg = RandomForestConfig {
            n_trees: 8,
            seed: 11,
            ..RandomForestConfig::default()
        };
        let mut a = RandomForest::new(cfg.clone());
        let mut b = RandomForest::new(cfg);
        a.fit(&data);
        b.fit(&data);
        assert_eq!(
            a.predict_batch(&data.features),
            b.predict_batch(&data.features)
        );
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let data = toy_dataset();
        let mut a = RandomForest::new(RandomForestConfig {
            n_trees: 3,
            seed: 1,
            ..RandomForestConfig::default()
        });
        let mut b = RandomForest::new(RandomForestConfig {
            n_trees: 3,
            seed: 2,
            ..RandomForestConfig::default()
        });
        a.fit(&data);
        b.fit(&data);
        // Not a hard guarantee, but with different bootstraps the internal
        // trees should differ; both must still fit the toy data.
        assert_eq!(a.n_trees(), 3);
        assert_eq!(b.n_trees(), 3);
    }

    #[test]
    fn forest_size_respected() {
        let data = toy_dataset();
        let mut m = RandomForest::new(RandomForestConfig {
            n_trees: 5,
            ..RandomForestConfig::default()
        });
        m.fit(&data);
        assert_eq!(m.n_trees(), 5);
    }
}
