//! Nearest-centroid (Rocchio) classifier: each class is represented by the
//! mean of its training vectors; prediction picks the centroid with the
//! smallest Euclidean distance (scikit-learn's decision rule). Nearly free
//! to train and test, at the cost of the lowest F1 in the paper's table
//! (0.9523).

use crate::batch::{linear_map_csr, linear_predict_csr, BatchClassifier};
use crate::dataset::Dataset;
use crate::traits::Classifier;
use serde::{Deserialize, Serialize};
use textproc::{CsrMatrix, SparseVec};

/// Nearest-centroid classifier.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NearestCentroid {
    /// Dense centroid per class.
    centroids: Vec<Vec<f64>>,
    /// Cached squared centroid norms.
    norm_sq: Vec<f64>,
    /// Classes with no training samples (never predicted).
    empty: Vec<bool>,
}

impl NearestCentroid {
    /// Create an untrained model.
    pub fn new() -> NearestCentroid {
        NearestCentroid::default()
    }
}

impl Classifier for NearestCentroid {
    fn name(&self) -> &'static str {
        "Nearest Centroid"
    }

    fn fit(&mut self, data: &Dataset) {
        let n_classes = data.n_classes();
        let n_features = data.n_features();
        let mut sums = vec![vec![0.0f64; n_features]; n_classes];
        let mut counts = vec![0usize; n_classes];
        for (x, &l) in data.features.iter().zip(&data.labels) {
            x.add_scaled_to_dense(&mut sums[l], 1.0);
            counts[l] += 1;
        }
        for (sum, &count) in sums.iter_mut().zip(&counts) {
            if count > 0 {
                let inv = 1.0 / count as f64;
                for v in sum.iter_mut() {
                    *v *= inv;
                }
            }
        }
        self.norm_sq = sums
            .iter()
            .map(|c| c.iter().map(|v| v * v).sum::<f64>())
            .collect();
        self.empty = counts.iter().map(|&c| c == 0).collect();
        self.centroids = sums;
    }

    fn predict(&self, x: &SparseVec) -> usize {
        assert!(!self.centroids.is_empty(), "predict before fit");
        let mut best = 0;
        let mut best_dist = f64::INFINITY;
        for (c, (centroid, &c_sq)) in self.centroids.iter().zip(&self.norm_sq).enumerate() {
            if self.empty[c] {
                continue;
            }
            // ||x - c||^2 = ||x||^2 - 2 x·c + ||c||^2; the ||x||^2 term is
            // constant across classes and dropped.
            let dist = c_sq - 2.0 * x.dot_dense(centroid);
            if dist < best_dist {
                best_dist = dist;
                best = c;
            }
        }
        best
    }

    fn n_classes(&self) -> usize {
        self.centroids.len()
    }
}

impl BatchClassifier for NearestCentroid {
    fn predict_csr(&self, m: &CsrMatrix) -> Vec<usize> {
        assert!(!self.centroids.is_empty(), "predict before fit");
        // The kernel yields per-class dots; the decision closure applies the
        // same reduced-distance rule as the scalar `predict`.
        linear_predict_csr(m, &self.centroids, None, |dots| {
            let mut best = 0;
            let mut best_dist = f64::INFINITY;
            for (c, (&dot, &c_sq)) in dots.iter().zip(&self.norm_sq).enumerate() {
                if self.empty[c] {
                    continue;
                }
                let dist = c_sq - 2.0 * dot;
                if dist < best_dist {
                    best_dist = dist;
                    best = c;
                }
            }
            best
        })
    }

    fn predict_csr_scored(&self, m: &CsrMatrix) -> (Vec<usize>, Option<Vec<f64>>) {
        assert!(!self.centroids.is_empty(), "predict before fit");
        // Same reduced-distance rule as `predict_csr`; the margin is the
        // winner's gap to the nearest *non-empty* competitor centroid, in
        // the same reduced-distance space the decision was made in.
        let scored: Vec<(usize, f64)> = linear_map_csr(m, &self.centroids, None, |dots| {
            let mut best = 0;
            let mut best_dist = f64::INFINITY;
            let mut runner_up = f64::INFINITY;
            for (c, (&dot, &c_sq)) in dots.iter().zip(&self.norm_sq).enumerate() {
                if self.empty[c] {
                    continue;
                }
                let dist = c_sq - 2.0 * dot;
                if dist < best_dist {
                    runner_up = best_dist;
                    best_dist = dist;
                    best = c;
                } else if dist < runner_up {
                    runner_up = dist;
                }
            }
            let margin = if runner_up.is_finite() {
                runner_up - best_dist
            } else {
                0.0
            };
            (best, margin)
        });
        let (preds, margins) = scored.into_iter().unzip();
        (preds, Some(margins))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testutil::assert_learns_toy;

    #[test]
    fn learns_toy_problem() {
        let mut m = NearestCentroid::new();
        assert_learns_toy(&mut m);
    }

    #[test]
    fn empty_class_never_wins() {
        // Class 1 has no samples; its zero centroid must never be chosen.
        let data = Dataset::new(
            vec![
                SparseVec::from_pairs(vec![(0, 1.0)]),
                SparseVec::from_pairs(vec![(1, 1.0)]),
            ],
            vec![0, 2],
            vec!["a".into(), "empty".into(), "c".into()],
        );
        let mut m = NearestCentroid::new();
        m.fit(&data);
        assert_ne!(m.predict(&SparseVec::from_pairs(vec![(0, 0.5)])), 1);
        assert_ne!(m.predict(&SparseVec::from_pairs(vec![(1, 0.5)])), 1);
    }

    #[test]
    fn centroid_is_class_mean() {
        let data = Dataset::new(
            vec![
                SparseVec::from_pairs(vec![(0, 2.0)]),
                SparseVec::from_pairs(vec![(0, 4.0)]),
            ],
            vec![0, 0],
            vec!["a".into()],
        );
        let mut m = NearestCentroid::new();
        m.fit(&data);
        assert!((m.centroids[0][0] - 3.0).abs() < 1e-12);
    }
}
