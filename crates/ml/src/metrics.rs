//! Evaluation metrics: confusion matrix and the weighted-F1 report the
//! paper uses throughout §5.1.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A confusion matrix: `matrix[truth][predicted]` counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n_classes: usize,
    matrix: Vec<u64>,
    class_names: Vec<String>,
}

impl ConfusionMatrix {
    /// Build from parallel truth/prediction slices.
    ///
    /// # Panics
    /// If slice lengths differ or any index is ≥ `class_names.len()`.
    pub fn from_predictions(
        class_names: &[String],
        truth: &[usize],
        predicted: &[usize],
    ) -> ConfusionMatrix {
        assert_eq!(
            truth.len(),
            predicted.len(),
            "truth/predicted length mismatch"
        );
        let n = class_names.len();
        let mut matrix = vec![0u64; n * n];
        for (&t, &p) in truth.iter().zip(predicted) {
            assert!(t < n && p < n, "class index out of range");
            matrix[t * n + p] += 1;
        }
        ConfusionMatrix {
            n_classes: n,
            matrix,
            class_names: class_names.to_vec(),
        }
    }

    /// Count at `(truth, predicted)`.
    pub fn get(&self, truth: usize, predicted: usize) -> u64 {
        self.matrix[truth * self.n_classes + predicted]
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Class display names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Samples whose true class is `c` (row sum).
    pub fn support(&self, c: usize) -> u64 {
        (0..self.n_classes).map(|p| self.get(c, p)).sum()
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.matrix.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.n_classes).map(|c| self.get(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Precision for class `c` (0 when never predicted).
    pub fn precision(&self, c: usize) -> f64 {
        let predicted: u64 = (0..self.n_classes).map(|t| self.get(t, c)).sum();
        if predicted == 0 {
            0.0
        } else {
            self.get(c, c) as f64 / predicted as f64
        }
    }

    /// Recall for class `c` (0 when the class has no samples).
    pub fn recall(&self, c: usize) -> f64 {
        let support = self.support(c);
        if support == 0 {
            0.0
        } else {
            self.get(c, c) as f64 / support as f64
        }
    }

    /// F1 for class `c`: harmonic mean of precision and recall.
    pub fn f1(&self, c: usize) -> f64 {
        let (p, r) = (self.precision(c), self.recall(c));
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Support-weighted mean of per-class F1 — the paper's headline metric
    /// ("the weighted-averaged F1 score is better for imbalanced data").
    pub fn weighted_f1(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (0..self.n_classes)
            .map(|c| self.f1(c) * self.support(c) as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Unweighted mean of per-class F1.
    pub fn macro_f1(&self) -> f64 {
        if self.n_classes == 0 {
            return 0.0;
        }
        (0..self.n_classes).map(|c| self.f1(c)).sum::<f64>() / self.n_classes as f64
    }

    /// Per-truth-class row sums. Row `c` equals [`ConfusionMatrix::support`]
    /// of `c` by construction; exposed so tests and exporters can check the
    /// whole vector at once.
    pub fn row_sums(&self) -> Vec<u64> {
        (0..self.n_classes).map(|c| self.support(c)).collect()
    }

    /// Per-predicted-class column sums.
    pub fn col_sums(&self) -> Vec<u64> {
        (0..self.n_classes)
            .map(|p| (0..self.n_classes).map(|t| self.get(t, p)).sum())
            .collect()
    }

    /// Per-class F1 scores in class order.
    pub fn per_class_f1(&self) -> Vec<f64> {
        (0..self.n_classes).map(|c| self.f1(c)).collect()
    }

    /// The full matrix as rows of counts, `rows[truth][predicted]` — the
    /// shape the experiment exporters serialize.
    pub fn rows(&self) -> Vec<Vec<u64>> {
        (0..self.n_classes)
            .map(|t| (0..self.n_classes).map(|p| self.get(t, p)).collect())
            .collect()
    }

    /// The most-confused off-diagonal cell `(truth, predicted, count)`, if
    /// any misclassification happened — §5.1 uses this to single out
    /// "Unimportant" as the troublesome category.
    pub fn most_confused(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for t in 0..self.n_classes {
            for p in 0..self.n_classes {
                if t != p {
                    let v = self.get(t, p);
                    if v > 0 && best.map(|(_, _, bv)| v > bv).unwrap_or(true) {
                        best = Some((t, p, v));
                    }
                }
            }
        }
        best
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .class_names
            .iter()
            .map(|n| n.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8)
            .min(20);
        write!(f, "{:>width$} |", "T\\P")?;
        for name in &self.class_names {
            write!(f, " {:>width$}", truncate(name, width))?;
        }
        writeln!(f)?;
        for t in 0..self.n_classes {
            write!(f, "{:>width$} |", truncate(&self.class_names[t], width))?;
            for p in 0..self.n_classes {
                write!(f, " {:>width$}", self.get(t, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn truncate(s: &str, max: usize) -> &str {
    if s.len() <= max {
        s
    } else {
        &s[..max]
    }
}

impl ConfusionMatrix {
    /// Render an sklearn-style classification report: per-class precision,
    /// recall, F1 and support, plus the accuracy and weighted-average
    /// rows.
    pub fn classification_report(&self) -> String {
        let name_width = self
            .class_names
            .iter()
            .map(|n| n.len())
            .chain(std::iter::once(12))
            .max()
            .unwrap_or(12);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>name_width$}  {:>9}  {:>9}  {:>9}  {:>9}",
            "", "precision", "recall", "f1-score", "support"
        );
        for (c, name) in self.class_names.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name:>name_width$}  {:>9.4}  {:>9.4}  {:>9.4}  {:>9}",
                self.precision(c),
                self.recall(c),
                self.f1(c),
                self.support(c)
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:>name_width$}  {:>9}  {:>9}  {:>9.4}  {:>9}",
            "accuracy",
            "",
            "",
            self.accuracy(),
            self.total()
        );
        let _ = writeln!(
            out,
            "{:>name_width$}  {:>9}  {:>9}  {:>9.4}  {:>9}",
            "weighted avg",
            "",
            "",
            self.weighted_f1(),
            self.total()
        );
        let _ = writeln!(
            out,
            "{:>name_width$}  {:>9}  {:>9}  {:>9.4}  {:>9}",
            "macro avg",
            "",
            "",
            self.macro_f1(),
            self.total()
        );
        out
    }
}

use std::fmt::Write as _;

/// A per-model evaluation row (one line of the paper's Figure 3 table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// Model name.
    pub model: String,
    /// Support-weighted F1.
    pub weighted_f1: f64,
    /// Unweighted macro F1.
    pub macro_f1: f64,
    /// Accuracy.
    pub accuracy: f64,
    /// Wall-clock training time in seconds.
    pub train_seconds: f64,
    /// Wall-clock batch-prediction time in seconds.
    pub test_seconds: f64,
    /// Test-set size, for throughput arithmetic.
    pub n_test: usize,
}

impl ClassificationReport {
    /// Predicted messages per hour at the measured test throughput.
    pub fn messages_per_hour(&self) -> f64 {
        if self.test_seconds <= 0.0 {
            f64::INFINITY
        } else {
            self.n_test as f64 / self.test_seconds * 3600.0
        }
    }
}

impl fmt::Display for ClassificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<24} wF1={:.6} train={:.4}s test={:.4}s",
            self.model, self.weighted_f1, self.train_seconds, self.test_seconds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("c{i}")).collect()
    }

    #[test]
    fn perfect_predictions() {
        let cm = ConfusionMatrix::from_predictions(&names(3), &[0, 1, 2, 1], &[0, 1, 2, 1]);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.weighted_f1(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        assert!(cm.most_confused().is_none());
    }

    #[test]
    fn hand_computed_binary_case() {
        // truth:     [0,0,0,0,1,1]
        // predicted: [0,0,1,1,1,0]
        let cm =
            ConfusionMatrix::from_predictions(&names(2), &[0, 0, 0, 0, 1, 1], &[0, 0, 1, 1, 1, 0]);
        assert_eq!(cm.get(0, 0), 2);
        assert_eq!(cm.get(0, 1), 2);
        assert_eq!(cm.get(1, 0), 1);
        assert_eq!(cm.get(1, 1), 1);
        // class 0: p = 2/3, r = 2/4 = .5 → f1 = 2*(2/3*.5)/(2/3+.5) = 4/7
        assert!((cm.precision(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(0) - 0.5).abs() < 1e-12);
        assert!((cm.f1(0) - 4.0 / 7.0).abs() < 1e-12);
        // class 1: p = 1/3, r = .5 → f1 = 2*(1/6)/(5/6) = 0.4
        assert!((cm.f1(1) - 0.4).abs() < 1e-12);
        // weighted: (4/7*4 + 0.4*2)/6
        let expected = (4.0 / 7.0 * 4.0 + 0.4 * 2.0) / 6.0;
        assert!((cm.weighted_f1() - expected).abs() < 1e-12);
        assert!((cm.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn support_and_row_sums() {
        let cm =
            ConfusionMatrix::from_predictions(&names(3), &[0, 0, 1, 2, 2, 2], &[1, 0, 1, 2, 0, 2]);
        assert_eq!(cm.support(0), 2);
        assert_eq!(cm.support(1), 1);
        assert_eq!(cm.support(2), 3);
        assert_eq!(cm.total(), 6);
        assert_eq!(cm.row_sums(), vec![2, 1, 3]);
        assert_eq!(cm.col_sums(), vec![2, 2, 2]);
        assert_eq!(cm.col_sums().iter().sum::<u64>(), cm.total());
    }

    #[test]
    fn rows_and_per_class_f1_match_scalar_accessors() {
        let cm =
            ConfusionMatrix::from_predictions(&names(3), &[0, 0, 1, 2, 2, 2], &[1, 0, 1, 2, 0, 2]);
        for (t, row) in cm.rows().iter().enumerate() {
            for (p, &cell) in row.iter().enumerate() {
                assert_eq!(cell, cm.get(t, p));
            }
        }
        let f1 = cm.per_class_f1();
        assert_eq!(f1.len(), 3);
        for (c, v) in f1.iter().enumerate() {
            assert_eq!(*v, cm.f1(c));
        }
    }

    #[test]
    fn most_confused_finds_biggest_error() {
        let cm =
            ConfusionMatrix::from_predictions(&names(3), &[0, 0, 0, 1, 1, 1], &[1, 1, 1, 0, 1, 1]);
        assert_eq!(cm.most_confused(), Some((0, 1, 3)));
    }

    #[test]
    fn zero_support_class_is_zero_not_nan() {
        let cm = ConfusionMatrix::from_predictions(&names(3), &[0, 1], &[0, 1]);
        assert_eq!(cm.f1(2), 0.0);
        assert_eq!(cm.recall(2), 0.0);
        assert_eq!(cm.precision(2), 0.0);
        assert!(!cm.weighted_f1().is_nan());
    }

    #[test]
    fn empty_matrix() {
        let cm = ConfusionMatrix::from_predictions(&names(2), &[], &[]);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.weighted_f1(), 0.0);
    }

    #[test]
    fn display_renders_all_cells() {
        let cm = ConfusionMatrix::from_predictions(&names(2), &[0, 1], &[1, 1]);
        let s = cm.to_string();
        assert!(s.contains("c0") && s.contains("c1"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn classification_report_renders_all_rows() {
        let cm = ConfusionMatrix::from_predictions(&names(3), &[0, 1, 2, 1], &[0, 1, 1, 1]);
        let report = cm.classification_report();
        for n in [
            "c0",
            "c1",
            "c2",
            "precision",
            "recall",
            "f1-score",
            "support",
            "accuracy",
            "weighted avg",
            "macro avg",
        ] {
            assert!(report.contains(n), "missing {n} in:\n{report}");
        }
        // c2 was never predicted correctly: zero f1 shown, not NaN.
        assert!(!report.contains("NaN"));
    }

    #[test]
    fn report_throughput() {
        let r = ClassificationReport {
            model: "kNN".into(),
            weighted_f1: 0.99,
            macro_f1: 0.98,
            accuracy: 0.99,
            train_seconds: 0.01,
            test_seconds: 2.0,
            n_test: 1000,
        };
        assert!((r.messages_per_hour() - 1_800_000.0).abs() < 1e-6);
    }
}
