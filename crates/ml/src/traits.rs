//! The classifier interface shared by all eight models.

use crate::dataset::Dataset;
use rayon::prelude::*;
use textproc::SparseVec;

/// A multi-class classifier over sparse feature vectors.
///
/// `fit` consumes a training [`Dataset`]; `predict` returns a class index
/// into the dataset's `class_names`. Implementations must be deterministic
/// for a fixed configuration/seed and must tolerate feature indices beyond
/// the training dimensionality (unseen vocabulary ⇒ ignored).
pub trait Classifier: Send + Sync {
    /// Short human-readable model name (matches the paper's Figure 3 rows).
    fn name(&self) -> &'static str;

    /// Train on `data`. Must be callable repeatedly (re-fit replaces state).
    fn fit(&mut self, data: &Dataset);

    /// Predict the class index of one sample. Panics if called before
    /// `fit`.
    fn predict(&self, x: &SparseVec) -> usize;

    /// Predict many samples; the default implementation parallelizes with
    /// rayon. Models with shared per-query scratch state may override.
    fn predict_batch(&self, xs: &[SparseVec]) -> Vec<usize> {
        xs.par_iter().map(|x| self.predict(x)).collect()
    }

    /// Number of classes the model was fitted with (0 before `fit`).
    fn n_classes(&self) -> usize;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use textproc::SparseVec;

    /// A tiny 3-class linearly separable dataset: class i puts weight on
    /// feature block i. Deterministic; useful in every model's tests.
    pub fn toy_dataset() -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for rep in 0..8u32 {
            for class in 0..3u32 {
                let base = class * 3;
                // Distinct-but-similar samples per class.
                let v = SparseVec::from_pairs(vec![
                    (base, 1.0),
                    (base + 1, 0.8),
                    (base + 2, 0.2 + 0.01 * rep as f64),
                    // Small shared feature so classes overlap a little.
                    (9, 0.1),
                ]);
                features.push(v);
                labels.push(class as usize);
            }
        }
        Dataset::new(
            features,
            labels,
            vec!["alpha".into(), "beta".into(), "gamma".into()],
        )
    }

    /// Fit `model` on the toy set and assert it classifies the training
    /// data (near-)perfectly — the minimum bar for a working learner.
    pub fn assert_learns_toy(model: &mut dyn Classifier) {
        let data = toy_dataset();
        model.fit(&data);
        assert_eq!(model.n_classes(), 3);
        let preds = model.predict_batch(&data.features);
        let correct = preds
            .iter()
            .zip(&data.labels)
            .filter(|(p, l)| p == l)
            .count();
        assert!(
            correct >= data.len() - 1,
            "{} classified only {correct}/{} toy samples",
            model.name(),
            data.len()
        );
    }
}
