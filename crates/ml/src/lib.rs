//! From-scratch classical ML for sparse text features.
//!
//! Reimplements every traditional classifier the paper evaluates (Figure 3)
//! plus the dataset tooling and metrics used to evaluate them:
//!
//! | Paper name             | Module        | Algorithm here                              |
//! |------------------------|---------------|---------------------------------------------|
//! | Logistic Regression    | [`logreg`]    | multinomial softmax, full-batch GD          |
//! | Ridge Classifier       | [`ridge`]     | one-vs-rest least squares + L2, GD          |
//! | kNN                    | [`knn`]       | brute-force cosine k-nearest neighbours     |
//! | Random Forest          | [`forest`]    | bagged CART trees, gini, feature sampling   |
//! | Linear SVC             | [`svc`]       | one-vs-rest L2-SVM, dual coordinate descent |
//! | Log-loss SGD           | [`sgd`]       | one-vs-rest logistic SGD, few epochs        |
//! | Nearest Centroid       | [`centroid`]  | per-class mean, cosine distance             |
//! | Complement Naïve Bayes | [`nb`]        | Rennie et al. complement NB                 |
//!
//! All models implement [`Classifier`] over [`textproc::SparseVec`]
//! features, are deterministic under a fixed seed, and parallelize batch
//! prediction (and forest training) with rayon.

pub mod balance;
pub mod batch;
pub mod centroid;
pub mod dataset;
pub mod forest;
mod grad;
pub mod knn;
pub mod logreg;
pub mod metrics;
pub mod nb;
pub mod ridge;
pub mod sgd;
pub mod svc;
pub mod traits;
pub mod tree;

pub use balance::{adasyn_oversample, smote_oversample};
pub use batch::BatchClassifier;
pub use centroid::NearestCentroid;
pub use dataset::Dataset;
pub use forest::{RandomForest, RandomForestConfig};
pub use knn::{KNearestNeighbors, KnnConfig};
pub use logreg::{LogisticRegression, LogisticRegressionConfig};
pub use metrics::{ClassificationReport, ConfusionMatrix};
pub use nb::{ComplementNaiveBayes, ComplementNbConfig};
pub use ridge::{RidgeClassifier, RidgeConfig};
pub use sgd::{SgdClassifier, SgdConfig};
pub use svc::{LinearSvc, LinearSvcConfig};
pub use traits::Classifier;
pub use tree::{DecisionTree, DecisionTreeConfig};

/// Construct the paper's full classifier suite (Figure 3 rows) with
/// defaults tuned for syslog-scale TF-IDF data. Every member supports the
/// batched CSR scoring path (and coerces to `Box<dyn Classifier>` where
/// only scalar prediction is needed).
pub fn paper_suite(seed: u64) -> Vec<Box<dyn BatchClassifier>> {
    vec![
        Box::new(LogisticRegression::new(LogisticRegressionConfig::default())),
        Box::new(RidgeClassifier::new(RidgeConfig::default())),
        Box::new(KNearestNeighbors::new(KnnConfig::default())),
        Box::new(RandomForest::new(RandomForestConfig {
            seed,
            ..RandomForestConfig::default()
        })),
        Box::new(LinearSvc::new(LinearSvcConfig::default())),
        Box::new(SgdClassifier::new(SgdConfig {
            seed,
            ..SgdConfig::default()
        })),
        Box::new(NearestCentroid::default()),
        Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_models_with_unique_names() {
        let suite = paper_suite(7);
        assert_eq!(suite.len(), 8);
        let mut names: Vec<&str> = suite.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
