//! One-vs-rest logistic regression trained by stochastic gradient descent —
//! the paper's "Log-loss SGD" row: a couple of fast passes over the data,
//! trading a little F1 (0.9878 in the paper, the lowest of the linear
//! models) for near-instant training.

use crate::batch::{
    argmax, argmax_scored, linear_predict_csr, linear_predict_csr_scored, BatchClassifier,
};
use crate::dataset::Dataset;
use crate::traits::Classifier;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use textproc::{CsrMatrix, SparseVec};

/// SGD hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Passes over the shuffled data.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            epochs: 5,
            learning_rate: 0.5,
            l2: 1e-6,
            seed: 0,
        }
    }
}

/// One-vs-rest log-loss SGD classifier.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SgdClassifier {
    config: SgdConfig,
    weights: Vec<Vec<f64>>,
    bias: Vec<f64>,
}

impl SgdClassifier {
    /// Create an untrained model.
    pub fn new(config: SgdConfig) -> SgdClassifier {
        SgdClassifier {
            config,
            weights: Vec::new(),
            bias: Vec::new(),
        }
    }

    fn sigmoid(z: f64) -> f64 {
        if z >= 0.0 {
            1.0 / (1.0 + (-z).exp())
        } else {
            let e = z.exp();
            e / (1.0 + e)
        }
    }

    /// Incremental training: one pass over `data` *without* resetting the
    /// weights — the online-adaptation mode that lets a deployed model
    /// absorb firmware drift from a trickle of fresh labels instead of
    /// being retrained from scratch (the LogAn pain point).
    pub fn partial_fit(&mut self, data: &Dataset) {
        let n_classes = data.n_classes().max(self.weights.len());
        let n_features = data.n_features();
        // Grow (never shrink) to accommodate new classes/features.
        self.weights.resize_with(n_classes, Vec::new);
        self.bias.resize(n_classes, 0.0);
        for w in &mut self.weights {
            if w.len() < n_features {
                w.resize(n_features, 0.0);
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x0a11_1abe);
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.shuffle(&mut rng);
        // A gentler fixed rate: the base model is already near a minimum.
        let lr = self.config.learning_rate * 0.1;
        for &i in &order {
            let x = &data.features[i];
            let label = data.labels[i];
            for c in 0..n_classes {
                let y = if c == label { 1.0 } else { 0.0 };
                let z = x.dot_dense(&self.weights[c]) + self.bias[c];
                let err = Self::sigmoid(z) - y;
                if err != 0.0 {
                    x.add_scaled_to_dense(&mut self.weights[c], -lr * err);
                    self.bias[c] -= lr * err;
                }
            }
        }
    }
}

impl Classifier for SgdClassifier {
    fn name(&self) -> &'static str {
        "Log-loss SGD"
    }

    fn fit(&mut self, data: &Dataset) {
        let n_classes = data.n_classes();
        let n_features = data.n_features();
        self.weights = vec![vec![0.0; n_features]; n_classes];
        self.bias = vec![0.0; n_classes];
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut t = 0usize;
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                // Inverse-scaling learning rate, as sklearn's "optimal"-ish
                // schedule.
                let lr = self.config.learning_rate / (1.0 + 1e-3 * t as f64);
                let x = &data.features[i];
                let label = data.labels[i];
                for c in 0..n_classes {
                    let y = if c == label { 1.0 } else { 0.0 };
                    let z = x.dot_dense(&self.weights[c]) + self.bias[c];
                    let err = Self::sigmoid(z) - y;
                    if self.config.l2 > 0.0 {
                        // Lazy-ish decay: shrink only active coordinates;
                        // cheap and adequate at this regularization scale.
                        for &fi in x.indices() {
                            if let Some(w) = self.weights[c].get_mut(fi as usize) {
                                *w *= 1.0 - lr * self.config.l2;
                            }
                        }
                    }
                    if err != 0.0 {
                        x.add_scaled_to_dense(&mut self.weights[c], -lr * err);
                        self.bias[c] -= lr * err;
                    }
                }
            }
        }
    }

    fn predict(&self, x: &SparseVec) -> usize {
        assert!(!self.weights.is_empty(), "predict before fit");
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (c, (w, b)) in self.weights.iter().zip(&self.bias).enumerate() {
            let score = x.dot_dense(w) + b;
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }

    fn n_classes(&self) -> usize {
        self.weights.len()
    }
}

impl BatchClassifier for SgdClassifier {
    fn predict_csr(&self, m: &CsrMatrix) -> Vec<usize> {
        assert!(!self.weights.is_empty(), "predict before fit");
        linear_predict_csr(m, &self.weights, Some(&self.bias), argmax)
    }

    fn predict_csr_scored(&self, m: &CsrMatrix) -> (Vec<usize>, Option<Vec<f64>>) {
        assert!(!self.weights.is_empty(), "predict before fit");
        let (preds, margins) =
            linear_predict_csr_scored(m, &self.weights, Some(&self.bias), argmax_scored);
        (preds, Some(margins))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testutil::{assert_learns_toy, toy_dataset};

    #[test]
    fn learns_toy_problem() {
        let mut m = SgdClassifier::new(SgdConfig::default());
        assert_learns_toy(&mut m);
    }

    #[test]
    fn deterministic_under_seed() {
        let data = toy_dataset();
        let mut a = SgdClassifier::new(SgdConfig {
            seed: 9,
            ..SgdConfig::default()
        });
        let mut b = SgdClassifier::new(SgdConfig {
            seed: 9,
            ..SgdConfig::default()
        });
        a.fit(&data);
        b.fit(&data);
        assert_eq!(
            a.predict_batch(&data.features),
            b.predict_batch(&data.features)
        );
    }

    #[test]
    fn sigmoid_is_stable() {
        assert!(SgdClassifier::sigmoid(1000.0) <= 1.0);
        assert!(SgdClassifier::sigmoid(-1000.0) >= 0.0);
        assert!((SgdClassifier::sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_fit_adapts_without_forgetting() {
        let data = toy_dataset();
        let mut m = SgdClassifier::new(SgdConfig::default());
        m.fit(&data);
        let before = m.predict_batch(&data.features);
        // A new phrasing of class 2: feature 11 replaces feature 6.
        let fresh = Dataset::new(
            vec![SparseVec::from_pairs(vec![(11, 1.0), (7, 0.8)]); 6],
            vec![2; 6],
            data.class_names.clone(),
        );
        for _ in 0..10 {
            m.partial_fit(&fresh);
        }
        // New phrasing learned…
        assert_eq!(
            m.predict(&SparseVec::from_pairs(vec![(11, 1.0), (7, 0.8)])),
            2
        );
        // …old knowledge retained.
        let after = m.predict_batch(&data.features);
        let kept = before.iter().zip(&after).filter(|(a, b)| a == b).count();
        assert!(
            kept >= data.len() - 2,
            "catastrophic forgetting: {kept}/{}",
            data.len()
        );
    }

    #[test]
    fn partial_fit_from_scratch_initializes() {
        let data = toy_dataset();
        let mut m = SgdClassifier::new(SgdConfig::default());
        for _ in 0..30 {
            m.partial_fit(&data);
        }
        let preds = m.predict_batch(&data.features);
        let correct = preds
            .iter()
            .zip(&data.labels)
            .filter(|(p, l)| p == l)
            .count();
        assert!(correct >= data.len() - 2);
    }

    #[test]
    fn single_class_dataset() {
        let data = Dataset::new(
            vec![SparseVec::from_pairs(vec![(0, 1.0)]); 4],
            vec![0; 4],
            vec!["only".into()],
        );
        let mut m = SgdClassifier::new(SgdConfig::default());
        m.fit(&data);
        assert_eq!(m.predict(&data.features[0]), 0);
    }
}
