//! CART decision tree (gini impurity) on sparse features — the base
//! learner for [`crate::forest::RandomForest`] and a classifier in its own
//! right.
//!
//! Split search samples a configurable number of candidate features per
//! node (all features when `feature_subsample` is `None`) and evaluates
//! quantile thresholds over the observed values, which keeps node cost low
//! on high-dimensional TF-IDF data where most values are zero.

use crate::batch::BatchClassifier;
use crate::dataset::Dataset;
use crate::traits::Classifier;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use textproc::SparseVec;

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Candidate features per node (`None` = all).
    pub feature_subsample: Option<usize>,
    /// Maximum candidate thresholds per feature.
    pub max_thresholds: usize,
    /// RNG seed for feature sampling.
    pub seed: u64,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig {
            max_depth: 24,
            min_samples_split: 2,
            feature_subsample: None,
            max_thresholds: 8,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: u32,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART decision tree.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DecisionTree {
    config: DecisionTreeConfig,
    nodes: Vec<Node>,
    n_classes: usize,
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

impl DecisionTree {
    /// Create an untrained tree.
    pub fn new(config: DecisionTreeConfig) -> DecisionTree {
        DecisionTree {
            config,
            nodes: Vec::new(),
            n_classes: 0,
        }
    }

    /// Fit on a subset of `data` given by `indices` (used by the forest for
    /// bootstrap samples); `fit` passes all indices.
    pub fn fit_indices(&mut self, data: &Dataset, indices: &[usize]) {
        self.n_classes = data.n_classes();
        self.nodes.clear();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut indices = indices.to_vec();
        self.build(data, &mut indices, 0, &mut rng);
    }

    /// Recursively build; returns the node index.
    fn build(
        &mut self,
        data: &Dataset,
        indices: &mut [usize],
        depth: usize,
        rng: &mut ChaCha8Rng,
    ) -> usize {
        let mut counts = vec![0usize; self.n_classes];
        for &i in indices.iter() {
            counts[data.labels[i]] += 1;
        }
        let majority = argmax(&counts);
        let node_gini = gini(&counts, indices.len());
        if depth >= self.config.max_depth
            || indices.len() < self.config.min_samples_split
            || node_gini == 0.0
        {
            return self.push(Node::Leaf { class: majority });
        }
        let Some((feature, threshold)) = self.best_split(data, indices, &counts, node_gini, rng)
        else {
            return self.push(Node::Leaf { class: majority });
        };
        // Partition in place: left = value <= threshold.
        let mut mid = 0usize;
        for i in 0..indices.len() {
            if data.features[indices[i]].get(feature) <= threshold {
                indices.swap(i, mid);
                mid += 1;
            }
        }
        if mid == 0 || mid == indices.len() {
            return self.push(Node::Leaf { class: majority });
        }
        // Reserve this node's slot before recursing so children line up.
        let me = self.push(Node::Leaf { class: majority });
        let (left_slice, right_slice) = indices.split_at_mut(mid);
        let left = self.build(data, left_slice, depth + 1, rng);
        let right = self.build(data, right_slice, depth + 1, rng);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Pick the (feature, threshold) with the best gini decrease, or `None`
    /// when nothing splits.
    fn best_split(
        &self,
        data: &Dataset,
        indices: &[usize],
        counts: &[usize],
        node_gini: f64,
        rng: &mut ChaCha8Rng,
    ) -> Option<(u32, f64)> {
        // Candidate features: those actually present in this node's data.
        let mut present: Vec<u32> = {
            let mut set: Vec<u32> = indices
                .iter()
                .flat_map(|&i| data.features[i].indices().iter().copied())
                .collect();
            set.sort_unstable();
            set.dedup();
            set
        };
        if let Some(m) = self.config.feature_subsample {
            if present.len() > m {
                present.shuffle(rng);
                present.truncate(m);
                present.sort_unstable();
            }
        }

        let n = indices.len();
        let mut best: Option<(u32, f64, f64)> = None; // (feature, threshold, score)
        let mut values: Vec<f64> = Vec::with_capacity(n);
        for &feature in &present {
            values.clear();
            values.extend(indices.iter().map(|&i| data.features[i].get(feature)));
            // Candidate thresholds: quantile midpoints over sorted values.
            let mut sorted = values.clone();
            sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            sorted.dedup();
            if sorted.len() < 2 {
                continue;
            }
            let step = ((sorted.len() - 1) as f64 / self.config.max_thresholds as f64).max(1.0);
            let mut t_idx = 0.0;
            while (t_idx as usize) < sorted.len() - 1 {
                let lo = sorted[t_idx as usize];
                let hi = sorted[t_idx as usize + 1];
                let threshold = (lo + hi) / 2.0;
                let mut left_counts = vec![0usize; self.n_classes];
                let mut n_left = 0usize;
                for (&i, &v) in indices.iter().zip(&values) {
                    if v <= threshold {
                        left_counts[data.labels[i]] += 1;
                        n_left += 1;
                    }
                }
                if n_left > 0 && n_left < n {
                    let right_counts: Vec<usize> = counts
                        .iter()
                        .zip(&left_counts)
                        .map(|(&c, &l)| c - l)
                        .collect();
                    let n_right = n - n_left;
                    let weighted = (n_left as f64 * gini(&left_counts, n_left)
                        + n_right as f64 * gini(&right_counts, n_right))
                        / n as f64;
                    let decrease = node_gini - weighted;
                    if decrease > 1e-12 && best.map(|(_, _, s)| decrease > s).unwrap_or(true) {
                        best = Some((feature, threshold, decrease));
                    }
                }
                t_idx += step;
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

fn argmax(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl Classifier for DecisionTree {
    fn name(&self) -> &'static str {
        "Decision Tree"
    }

    fn fit(&mut self, data: &Dataset) {
        let indices: Vec<usize> = (0..data.len()).collect();
        self.fit_indices(data, &indices);
    }

    fn predict(&self, x: &SparseVec) -> usize {
        assert!(!self.nodes.is_empty(), "predict before fit");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x.get(*feature) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

impl BatchClassifier for DecisionTree {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testutil::{assert_learns_toy, toy_dataset};

    #[test]
    fn learns_toy_problem() {
        let mut m = DecisionTree::new(DecisionTreeConfig::default());
        assert_learns_toy(&mut m);
    }

    #[test]
    fn depth_zero_is_majority_class() {
        let data = toy_dataset();
        let mut m = DecisionTree::new(DecisionTreeConfig {
            max_depth: 0,
            ..DecisionTreeConfig::default()
        });
        m.fit(&data);
        // All classes are equal-sized; argmax tie-break picks class 0.
        assert!(data.features.iter().all(|x| m.predict(x) == 0));
    }

    #[test]
    fn pure_node_stops_early() {
        let data = Dataset::new(
            vec![SparseVec::from_pairs(vec![(0, 1.0)]); 5],
            vec![1; 5],
            vec!["a".into(), "b".into()],
        );
        let mut m = DecisionTree::new(DecisionTreeConfig::default());
        m.fit(&data);
        assert_eq!(m.nodes.len(), 1, "pure root must be a single leaf");
        assert_eq!(m.predict(&data.features[0]), 1);
    }

    #[test]
    fn gini_values() {
        assert_eq!(gini(&[4, 0], 4), 0.0);
        assert!((gini(&[2, 2], 4) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[], 0), 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let data = toy_dataset();
        let mut a = DecisionTree::new(DecisionTreeConfig::default());
        let mut b = DecisionTree::new(DecisionTreeConfig::default());
        a.fit(&data);
        b.fit(&data);
        assert_eq!(
            a.predict_batch(&data.features),
            b.predict_batch(&data.features)
        );
    }
}
