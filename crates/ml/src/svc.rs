//! Linear support vector classification via dual coordinate descent —
//! the liblinear algorithm behind scikit-learn's `LinearSVC`, in its
//! L2-regularized squared-hinge (L2-loss) form, one-vs-rest.
//!
//! In the paper this is the most accurate post-ablation model *and* by far
//! the slowest trainer (211.8 s vs 15.4 s for logistic regression); dual CD
//! run to a tight tolerance reproduces that cost profile.

use crate::batch::{
    argmax, argmax_scored, linear_predict_csr, linear_predict_csr_scored, BatchClassifier,
};
use crate::dataset::Dataset;
use crate::traits::Classifier;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use textproc::{CsrMatrix, SparseVec};

/// Linear SVC hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvcConfig {
    /// Inverse regularization (sklearn's `C`).
    pub c: f64,
    /// Maximum dual coordinate-descent epochs per class.
    pub max_epochs: usize,
    /// Convergence tolerance on the maximal projected-gradient violation.
    pub tolerance: f64,
    /// Shuffle seed for the coordinate order.
    pub seed: u64,
}

impl Default for LinearSvcConfig {
    fn default() -> Self {
        LinearSvcConfig {
            c: 1.0,
            max_epochs: 1500,
            tolerance: 0.0,
            seed: 0,
        }
    }
}

/// One-vs-rest linear SVM trained by dual coordinate descent.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LinearSvc {
    config: LinearSvcConfig,
    weights: Vec<Vec<f64>>,
}

impl LinearSvc {
    /// Create an untrained model.
    pub fn new(config: LinearSvcConfig) -> LinearSvc {
        LinearSvc {
            config,
            weights: Vec::new(),
        }
    }

    /// Train one binary L2-loss SVM: labels +1 for `positive_class`.
    fn fit_binary(&self, data: &Dataset, positive_class: usize, n_features: usize) -> Vec<f64> {
        let n = data.len();
        // Squared-hinge dual: 0 ≤ α_i < ∞, diagonal D_ii = 1/(2C).
        let diag = 1.0 / (2.0 * self.config.c);
        let y: Vec<f64> = data
            .labels
            .iter()
            .map(|&l| if l == positive_class { 1.0 } else { -1.0 })
            .collect();
        let q_ii: Vec<f64> = data.features.iter().map(|x| x.norm_sq() + diag).collect();
        let mut alpha = vec![0.0f64; n];
        let mut w = vec![0.0f64; n_features];
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ positive_class as u64);
        for _ in 0..self.config.max_epochs {
            order.shuffle(&mut rng);
            let mut max_violation = 0.0f64;
            for &i in &order {
                if q_ii[i] <= diag {
                    continue; // zero feature vector: contributes nothing
                }
                let x = &data.features[i];
                let g = y[i] * x.dot_dense(&w) - 1.0 + diag * alpha[i];
                // Projected gradient (lower bound 0, no upper bound).
                let pg = if alpha[i] == 0.0 { g.min(0.0) } else { g };
                max_violation = max_violation.max(pg.abs());
                if pg.abs() > 1e-12 {
                    let new_alpha = (alpha[i] - g / q_ii[i]).max(0.0);
                    let delta = new_alpha - alpha[i];
                    if delta != 0.0 {
                        x.add_scaled_to_dense(&mut w, delta * y[i]);
                        alpha[i] = new_alpha;
                    }
                }
            }
            if max_violation < self.config.tolerance {
                break;
            }
        }
        w
    }
}

impl Classifier for LinearSvc {
    fn name(&self) -> &'static str {
        "Linear SVC"
    }

    fn fit(&mut self, data: &Dataset) {
        let n_features = data.n_features();
        let n_classes = data.n_classes();
        // liblinear trains one-vs-rest subproblems sequentially; keep that
        // shape so the training-time comparison against the other models
        // mirrors the paper's (Linear SVC is its slowest trainer by far).
        self.weights = (0..n_classes)
            .map(|c| self.fit_binary(data, c, n_features))
            .collect();
    }

    fn predict(&self, x: &SparseVec) -> usize {
        assert!(!self.weights.is_empty(), "predict before fit");
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (c, w) in self.weights.iter().enumerate() {
            let score = x.dot_dense(w);
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }

    fn n_classes(&self) -> usize {
        self.weights.len()
    }
}

impl BatchClassifier for LinearSvc {
    fn predict_csr(&self, m: &CsrMatrix) -> Vec<usize> {
        assert!(!self.weights.is_empty(), "predict before fit");
        linear_predict_csr(m, &self.weights, None, argmax)
    }

    fn predict_csr_scored(&self, m: &CsrMatrix) -> (Vec<usize>, Option<Vec<f64>>) {
        assert!(!self.weights.is_empty(), "predict before fit");
        let (preds, margins) = linear_predict_csr_scored(m, &self.weights, None, argmax_scored);
        (preds, Some(margins))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testutil::{assert_learns_toy, toy_dataset};

    #[test]
    fn learns_toy_problem() {
        let mut m = LinearSvc::new(LinearSvcConfig::default());
        assert_learns_toy(&mut m);
    }

    #[test]
    fn deterministic_under_seed() {
        let data = toy_dataset();
        let mut a = LinearSvc::new(LinearSvcConfig::default());
        let mut b = LinearSvc::new(LinearSvcConfig::default());
        a.fit(&data);
        b.fit(&data);
        assert_eq!(
            a.predict_batch(&data.features),
            b.predict_batch(&data.features)
        );
    }

    #[test]
    fn margin_separates_classes() {
        let data = toy_dataset();
        let mut m = LinearSvc::new(LinearSvcConfig::default());
        m.fit(&data);
        // The positive-class score must exceed every other class's score
        // for a well-separated sample.
        let x = &data.features[0]; // class 0
        let s0 = x.dot_dense(&m.weights[0]);
        for c in 1..3 {
            assert!(s0 > x.dot_dense(&m.weights[c]));
        }
    }

    #[test]
    fn zero_vectors_are_tolerated() {
        let data = Dataset::new(
            vec![
                SparseVec::new(),
                SparseVec::from_pairs(vec![(0, 1.0)]),
                SparseVec::from_pairs(vec![(1, 1.0)]),
            ],
            vec![0, 0, 1],
            vec!["a".into(), "b".into()],
        );
        let mut m = LinearSvc::new(LinearSvcConfig::default());
        m.fit(&data);
        assert_eq!(m.predict(&data.features[1]), 0);
        assert_eq!(m.predict(&data.features[2]), 1);
    }
}
