//! Complement Naïve Bayes (Rennie et al., 2003) — the variant designed for
//! imbalanced text corpora, which is why it holds up on the paper's
//! Unimportant-dominated dataset while plain multinomial NB would not.
//!
//! For each class `c` the model estimates the feature distribution of the
//! *complement* of `c` (all other classes) and scores a document by how
//! poorly it fits each complement:
//!
//! ```text
//! w_ci = log( (alpha + N_~c,i) / (alpha * |V| + N_~c) )
//! w_ci normalized per class by the L1 norm (weight normalization)
//! predict(d) = argmin_c  Σ_i f_di * w_ci
//! ```

use crate::batch::{
    argmin, argmin_scored, linear_predict_csr, linear_predict_csr_scored, BatchClassifier,
};
use crate::dataset::Dataset;
use crate::traits::Classifier;
use serde::{Deserialize, Serialize};
use textproc::{CsrMatrix, SparseVec};

/// CNB hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComplementNbConfig {
    /// Additive (Lidstone) smoothing.
    pub alpha: f64,
    /// Normalize each class's weight vector by its L1 norm (the "WCNB"
    /// refinement in Rennie et al.).
    pub norm: bool,
}

impl Default for ComplementNbConfig {
    fn default() -> Self {
        ComplementNbConfig {
            alpha: 1.0,
            norm: true,
        }
    }
}

/// Complement Naïve Bayes model.
///
/// Keeps its sufficient statistics (per-class feature counts), so
/// [`ComplementNaiveBayes::partial_fit`] can fold in fresh labeled data
/// incrementally — NB's count-based nature makes it exactly online.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ComplementNaiveBayes {
    config: ComplementNbConfig,
    /// Per-class complement weights, dense over the vocabulary.
    weights: Vec<Vec<f64>>,
    /// Accumulated per-class feature counts (sufficient statistics).
    #[serde(default)]
    class_feature: Vec<Vec<f64>>,
    /// Accumulated per-class total counts.
    #[serde(default)]
    class_total: Vec<f64>,
}

impl ComplementNaiveBayes {
    /// Create an untrained model.
    pub fn new(config: ComplementNbConfig) -> ComplementNaiveBayes {
        ComplementNaiveBayes {
            config,
            weights: Vec::new(),
            class_feature: Vec::new(),
            class_total: Vec::new(),
        }
    }

    /// Accumulate counts from `data` into the sufficient statistics.
    fn accumulate(&mut self, data: &Dataset) {
        let n_classes = data.n_classes().max(self.class_feature.len());
        let n_features = data
            .n_features()
            .max(self.class_feature.first().map(Vec::len).unwrap_or(0));
        self.class_feature.resize_with(n_classes, Vec::new);
        self.class_total.resize(n_classes, 0.0);
        for cf in &mut self.class_feature {
            if cf.len() < n_features {
                cf.resize(n_features, 0.0);
            }
        }
        for (x, &l) in data.features.iter().zip(&data.labels) {
            x.add_scaled_to_dense(&mut self.class_feature[l], 1.0);
            self.class_total[l] += x.values().iter().sum::<f64>();
        }
    }

    /// Recompute the complement weights from the accumulated counts.
    fn recompute_weights(&mut self) {
        let n_classes = self.class_feature.len();
        let n_features = self.class_feature.first().map(Vec::len).unwrap_or(0);
        let all_total: f64 = self.class_total.iter().sum();
        let mut all_feature = vec![0.0f64; n_features];
        for cf in &self.class_feature {
            for (a, v) in all_feature.iter_mut().zip(cf) {
                *a += v;
            }
        }
        let alpha = self.config.alpha;
        self.weights = (0..n_classes)
            .map(|c| {
                let comp_total = all_total - self.class_total[c] + alpha * n_features as f64;
                let mut w: Vec<f64> = (0..n_features)
                    .map(|i| {
                        let comp_count = alpha + all_feature[i] - self.class_feature[c][i];
                        (comp_count / comp_total).ln()
                    })
                    .collect();
                if self.config.norm {
                    let l1: f64 = w.iter().map(|v| v.abs()).sum();
                    if l1 > 0.0 {
                        for v in &mut w {
                            *v /= l1;
                        }
                    }
                }
                w
            })
            .collect();
    }

    /// Incremental training: fold fresh labeled data into the counts and
    /// recompute weights, without discarding earlier knowledge.
    pub fn partial_fit(&mut self, data: &Dataset) {
        self.accumulate(data);
        self.recompute_weights();
    }
}

impl Classifier for ComplementNaiveBayes {
    fn name(&self) -> &'static str {
        "Complement Naive Bayes"
    }

    fn fit(&mut self, data: &Dataset) {
        self.class_feature.clear();
        self.class_total.clear();
        self.accumulate(data);
        self.recompute_weights();
    }

    fn predict(&self, x: &SparseVec) -> usize {
        assert!(!self.weights.is_empty(), "predict before fit");
        // Lowest complement score = poorest fit to "everything else".
        let mut best = 0;
        let mut best_score = f64::INFINITY;
        for (c, w) in self.weights.iter().enumerate() {
            let score = x.dot_dense(w);
            if score < best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }

    fn n_classes(&self) -> usize {
        self.weights.len()
    }
}

impl BatchClassifier for ComplementNaiveBayes {
    fn predict_csr(&self, m: &CsrMatrix) -> Vec<usize> {
        assert!(!self.weights.is_empty(), "predict before fit");
        linear_predict_csr(m, &self.weights, None, argmin)
    }

    fn predict_csr_scored(&self, m: &CsrMatrix) -> (Vec<usize>, Option<Vec<f64>>) {
        assert!(!self.weights.is_empty(), "predict before fit");
        let (preds, margins) = linear_predict_csr_scored(m, &self.weights, None, argmin_scored);
        (preds, Some(margins))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testutil::{assert_learns_toy, toy_dataset};

    #[test]
    fn learns_toy_problem() {
        let mut m = ComplementNaiveBayes::new(ComplementNbConfig::default());
        assert_learns_toy(&mut m);
    }

    #[test]
    fn robust_to_heavy_imbalance() {
        // 20:2 imbalance; CNB must still find the minority class.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            features.push(SparseVec::from_pairs(vec![
                (0, 1.0),
                (1, 0.5 + (i % 3) as f64 * 0.1),
            ]));
            labels.push(0);
        }
        for _ in 0..2 {
            features.push(SparseVec::from_pairs(vec![(2, 1.0), (3, 1.0)]));
            labels.push(1);
        }
        let data = Dataset::new(features, labels, vec!["major".into(), "minor".into()]);
        let mut m = ComplementNaiveBayes::new(ComplementNbConfig::default());
        m.fit(&data);
        assert_eq!(
            m.predict(&SparseVec::from_pairs(vec![(2, 1.0), (3, 0.8)])),
            1
        );
        assert_eq!(m.predict(&SparseVec::from_pairs(vec![(0, 1.0)])), 0);
    }

    #[test]
    fn weight_normalization_changes_scale_not_order() {
        let data = toy_dataset();
        let mut normed = ComplementNaiveBayes::new(ComplementNbConfig {
            norm: true,
            alpha: 1.0,
        });
        let mut raw = ComplementNaiveBayes::new(ComplementNbConfig {
            norm: false,
            alpha: 1.0,
        });
        normed.fit(&data);
        raw.fit(&data);
        assert_eq!(
            normed.predict_batch(&data.features),
            raw.predict_batch(&data.features),
            "normalization should not flip the toy problem"
        );
    }

    #[test]
    fn partial_fit_equals_batch_fit() {
        // CNB is count-based: incremental accumulation over halves must
        // match one batch fit over the whole set exactly.
        let data = toy_dataset();
        let half = data.len() / 2;
        let first = data.subset(&(0..half).collect::<Vec<_>>());
        let second = data.subset(&(half..data.len()).collect::<Vec<_>>());

        let mut batch = ComplementNaiveBayes::new(ComplementNbConfig::default());
        batch.fit(&data);
        let mut online = ComplementNaiveBayes::new(ComplementNbConfig::default());
        online.partial_fit(&first);
        online.partial_fit(&second);
        assert_eq!(
            batch.predict_batch(&data.features),
            online.predict_batch(&data.features)
        );
    }

    #[test]
    fn partial_fit_learns_new_phrasing() {
        let data = toy_dataset();
        let mut m = ComplementNaiveBayes::new(ComplementNbConfig::default());
        m.fit(&data);
        // Fresh labeled data: class 1 gains a new feature signature.
        let fresh = Dataset::new(
            vec![SparseVec::from_pairs(vec![(12, 1.0), (13, 1.0)]); 5],
            vec![1; 5],
            data.class_names.clone(),
        );
        m.partial_fit(&fresh);
        assert_eq!(
            m.predict(&SparseVec::from_pairs(vec![(12, 1.0), (13, 0.9)])),
            1
        );
        // Old signatures still classified correctly.
        assert_eq!(m.predict(&data.features[0]), data.labels[0]);
    }

    #[test]
    fn smoothing_handles_unseen_features() {
        let data = toy_dataset();
        let mut m = ComplementNaiveBayes::new(ComplementNbConfig::default());
        m.fit(&data);
        let x = SparseVec::from_pairs(vec![(0, 1.0), (7, 1.0)]); // 7 unseen in class 0 block
        let p = m.predict(&x);
        assert!(p < 3);
    }
}
