//! Labeled sparse datasets: splits, shuffling, class balancing.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use textproc::SparseVec;

/// A labeled dataset of sparse feature vectors.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// One sparse vector per sample.
    pub features: Vec<SparseVec>,
    /// Class index per sample, parallel to `features`.
    pub labels: Vec<usize>,
    /// Class index → display name.
    pub class_names: Vec<String>,
    n_features: usize,
}

impl Dataset {
    /// Build a dataset; the feature dimensionality is inferred from the
    /// data.
    ///
    /// # Panics
    /// If `features` and `labels` lengths differ, or any label is out of
    /// range for `class_names`.
    pub fn new(features: Vec<SparseVec>, labels: Vec<usize>, class_names: Vec<String>) -> Dataset {
        assert_eq!(
            features.len(),
            labels.len(),
            "features/labels length mismatch"
        );
        assert!(
            labels.iter().all(|&l| l < class_names.len()),
            "label out of range"
        );
        let n_features = features.iter().map(|f| f.max_dim()).max().unwrap_or(0);
        Dataset {
            features,
            labels,
            class_names,
            n_features,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Feature-space dimensionality (max index + 1 over all samples).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Stratified train/test split: each class contributes `test_ratio` of
    /// its samples (rounded down, at least 1 when the class has ≥ 2) to the
    /// test set. Deterministic under `seed`.
    pub fn stratified_split(&self, test_ratio: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            (0.0..1.0).contains(&test_ratio),
            "test_ratio must be in [0,1)"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes()];
        for (i, &l) in self.labels.iter().enumerate() {
            by_class[l].push(i);
        }
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for indices in &mut by_class {
            indices.shuffle(&mut rng);
            let mut n_test = (indices.len() as f64 * test_ratio).floor() as usize;
            if n_test == 0 && indices.len() >= 2 && test_ratio > 0.0 {
                n_test = 1;
            }
            test_idx.extend_from_slice(&indices[..n_test]);
            train_idx.extend_from_slice(&indices[n_test..]);
        }
        train_idx.shuffle(&mut rng);
        test_idx.shuffle(&mut rng);
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// Extract the samples at `indices` (cloning features).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let features: Vec<SparseVec> = indices.iter().map(|&i| self.features[i].clone()).collect();
        let labels: Vec<usize> = indices.iter().map(|&i| self.labels[i]).collect();
        let mut d = Dataset::new(features, labels, self.class_names.clone());
        // Preserve the parent dimensionality so models agree across splits.
        d.n_features = self.n_features;
        d
    }

    /// Random oversampling to the majority-class count (the balancing
    /// strategy §4.4.2 motivates; Studiawan & Sohel recommend it for
    /// imbalanced log data). Deterministic under `seed`.
    pub fn random_oversample(&self, seed: u64) -> Dataset {
        let counts = self.class_counts();
        let target = counts.iter().copied().max().unwrap_or(0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes()];
        for (i, &l) in self.labels.iter().enumerate() {
            by_class[l].push(i);
        }
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for class_indices in by_class.iter().filter(|c| !c.is_empty()) {
            for _ in class_indices.len()..target {
                indices.push(class_indices[rng.gen_range(0..class_indices.len())]);
            }
        }
        indices.shuffle(&mut rng);
        self.subset(&indices)
    }

    /// Remove every sample of `class`, dropping the class from the label
    /// space (the paper's "remove Unimportant" ablation). Returns the new
    /// dataset and the mapping old-class-index → new-class-index.
    pub fn drop_class(&self, class: usize) -> (Dataset, Vec<Option<usize>>) {
        assert!(class < self.n_classes(), "class out of range");
        let mut remap: Vec<Option<usize>> = Vec::with_capacity(self.n_classes());
        let mut new_names = Vec::with_capacity(self.n_classes() - 1);
        for (i, name) in self.class_names.iter().enumerate() {
            if i == class {
                remap.push(None);
            } else {
                remap.push(Some(new_names.len()));
                new_names.push(name.clone());
            }
        }
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for (f, &l) in self.features.iter().zip(&self.labels) {
            if let Some(nl) = remap[l] {
                features.push(f.clone());
                labels.push(nl);
            }
        }
        let mut d = Dataset::new(features, labels, new_names);
        d.n_features = self.n_features;
        (d, remap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unbalanced() -> Dataset {
        // 12 of class 0, 4 of class 1, 2 of class 2.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..18usize {
            let class = if i < 12 {
                0
            } else if i < 16 {
                1
            } else {
                2
            };
            features.push(SparseVec::from_pairs(vec![(i as u32, 1.0)]));
            labels.push(class);
        }
        Dataset::new(features, labels, vec!["a".into(), "b".into(), "c".into()])
    }

    #[test]
    fn construction_and_counts() {
        let d = unbalanced();
        assert_eq!(d.len(), 18);
        assert_eq!(d.n_classes(), 3);
        assert_eq!(d.class_counts(), vec![12, 4, 2]);
        assert_eq!(d.n_features(), 18);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Dataset::new(vec![SparseVec::new()], vec![], vec!["a".into()]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        Dataset::new(vec![SparseVec::new()], vec![3], vec!["a".into()]);
    }

    #[test]
    fn stratified_split_preserves_class_presence() {
        let d = unbalanced();
        let (train, test) = d.stratified_split(0.25, 42);
        assert_eq!(train.len() + test.len(), d.len());
        // Every class appears in both sides (class 2 has 2 samples: 1/1).
        for c in 0..3 {
            assert!(train.class_counts()[c] > 0, "class {c} missing from train");
            assert!(test.class_counts()[c] > 0, "class {c} missing from test");
        }
        // Deterministic under the same seed.
        let (train2, _) = d.stratified_split(0.25, 42);
        assert_eq!(train.labels, train2.labels);
        // Different under a different seed (extremely likely).
        let (train3, _) = d.stratified_split(0.25, 43);
        assert!(train.labels != train3.labels || train.features != train3.features);
    }

    #[test]
    fn oversample_balances() {
        let d = unbalanced();
        let o = d.random_oversample(7);
        assert_eq!(o.class_counts(), vec![12, 12, 12]);
        // Original samples are all retained.
        assert!(o.len() == 36);
    }

    #[test]
    fn drop_class_remaps() {
        let d = unbalanced();
        let (dropped, remap) = d.drop_class(1);
        assert_eq!(dropped.n_classes(), 2);
        assert_eq!(dropped.len(), 14);
        assert_eq!(remap, vec![Some(0), None, Some(1)]);
        assert_eq!(dropped.class_names, vec!["a".to_string(), "c".to_string()]);
        assert_eq!(dropped.class_counts(), vec![12, 2]);
    }

    #[test]
    fn subset_preserves_dimensionality() {
        let d = unbalanced();
        let s = d.subset(&[0, 1]);
        assert_eq!(s.n_features(), d.n_features());
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new(vec![], vec![], vec!["a".into()]);
        assert!(d.is_empty());
        assert_eq!(d.n_features(), 0);
        let (tr, te) = d.stratified_split(0.5, 1);
        assert!(tr.is_empty() && te.is_empty());
    }
}
