//! Ridge classifier: one-vs-rest least squares with L2 regularization,
//! trained by full-batch gradient descent on ±1 targets — the standard
//! `RidgeClassifier` formulation.

use crate::batch::{
    argmax, argmax_scored, linear_predict_csr, linear_predict_csr_scored, BatchClassifier,
};
use crate::dataset::Dataset;
use crate::grad::accumulate_gradients;
use crate::traits::Classifier;
use serde::{Deserialize, Serialize};
use textproc::{CsrMatrix, SparseVec};

/// Ridge hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RidgeConfig {
    /// L2 regularization strength (sklearn's `alpha`).
    pub alpha: f64,
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
}

impl Default for RidgeConfig {
    fn default() -> Self {
        RidgeConfig {
            alpha: 1e-5,
            epochs: 250,
            learning_rate: 1.2,
        }
    }
}

/// One-vs-rest ridge regression classifier.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RidgeClassifier {
    config: RidgeConfig,
    weights: Vec<Vec<f64>>,
    bias: Vec<f64>,
}

impl RidgeClassifier {
    /// Create an untrained model.
    pub fn new(config: RidgeConfig) -> RidgeClassifier {
        RidgeClassifier {
            config,
            weights: Vec::new(),
            bias: Vec::new(),
        }
    }
}

impl Classifier for RidgeClassifier {
    fn name(&self) -> &'static str {
        "Ridge Classifier"
    }

    fn fit(&mut self, data: &Dataset) {
        let n_classes = data.n_classes();
        let n_features = data.n_features();
        let n = data.len().max(1) as f64;
        self.weights = vec![vec![0.0; n_features]; n_classes];
        self.bias = vec![0.0; n_classes];

        for _ in 0..self.config.epochs {
            // Fixed-block parallel accumulation (see `grad.rs`): summation
            // order, and so the trained weights, are thread-count invariant.
            let (grad, bias_grad) =
                accumulate_gradients(data.len(), n_classes, n_features, |i, g, bg| {
                    let x = &data.features[i];
                    let label = data.labels[i];
                    for c in 0..n_classes {
                        let y = if c == label { 1.0 } else { -1.0 };
                        let pred = x.dot_dense(&self.weights[c]) + self.bias[c];
                        let err = pred - y;
                        x.add_scaled_to_dense(&mut g[c], err);
                        bg[c] += err;
                    }
                });
            let lr = self.config.learning_rate / n;
            for c in 0..n_classes {
                for (w, g) in self.weights[c].iter_mut().zip(&grad[c]) {
                    *w -= lr * (g + self.config.alpha * *w * n);
                }
                self.bias[c] -= lr * bias_grad[c];
            }
        }
    }

    fn predict(&self, x: &SparseVec) -> usize {
        assert!(!self.weights.is_empty(), "predict before fit");
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (c, (w, b)) in self.weights.iter().zip(&self.bias).enumerate() {
            let score = x.dot_dense(w) + b;
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }

    fn n_classes(&self) -> usize {
        self.weights.len()
    }
}

impl BatchClassifier for RidgeClassifier {
    fn predict_csr(&self, m: &CsrMatrix) -> Vec<usize> {
        assert!(!self.weights.is_empty(), "predict before fit");
        linear_predict_csr(m, &self.weights, Some(&self.bias), argmax)
    }

    fn predict_csr_scored(&self, m: &CsrMatrix) -> (Vec<usize>, Option<Vec<f64>>) {
        assert!(!self.weights.is_empty(), "predict before fit");
        let (preds, margins) =
            linear_predict_csr_scored(m, &self.weights, Some(&self.bias), argmax_scored);
        (preds, Some(margins))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testutil::{assert_learns_toy, toy_dataset};

    #[test]
    fn learns_toy_problem() {
        let mut m = RidgeClassifier::new(RidgeConfig::default());
        assert_learns_toy(&mut m);
    }

    #[test]
    fn heavier_regularization_shrinks_weights() {
        let data = toy_dataset();
        let mut light = RidgeClassifier::new(RidgeConfig {
            alpha: 1e-6,
            ..RidgeConfig::default()
        });
        let mut heavy = RidgeClassifier::new(RidgeConfig {
            alpha: 1e-2,
            ..RidgeConfig::default()
        });
        light.fit(&data);
        heavy.fit(&data);
        let norm = |m: &RidgeClassifier| -> f64 {
            m.weights
                .iter()
                .flatten()
                .map(|w| w * w)
                .sum::<f64>()
                .sqrt()
        };
        assert!(norm(&heavy) < norm(&light));
    }

    #[test]
    fn deterministic() {
        let data = toy_dataset();
        let mut a = RidgeClassifier::new(RidgeConfig::default());
        let mut b = RidgeClassifier::new(RidgeConfig::default());
        a.fit(&data);
        b.fit(&data);
        assert_eq!(
            a.predict_batch(&data.features),
            b.predict_batch(&data.features)
        );
    }
}
