//! Multinomial logistic regression (softmax) with full-batch gradient
//! descent and L2 regularization.
//!
//! Plays the role of scikit-learn's `LogisticRegression(solver="lbfgs")` in
//! the paper's Figure 3: a well-converged but not cheap linear model —
//! slower to train than SGD, faster than Linear SVC.

use crate::batch::{
    argmax, argmax_scored, linear_predict_csr, linear_predict_csr_scored, BatchClassifier,
};
use crate::dataset::Dataset;
use crate::grad::accumulate_gradients;
use crate::traits::Classifier;
use serde::{Deserialize, Serialize};
use textproc::{CsrMatrix, SparseVec};

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegressionConfig {
    /// Full-batch epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Stop early when the mean absolute weight update falls below this.
    pub tolerance: f64,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        LogisticRegressionConfig {
            epochs: 400,
            learning_rate: 4.0,
            l2: 1e-6,
            tolerance: 5e-8,
        }
    }
}

/// Multinomial logistic regression model.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LogisticRegression {
    config: LogisticRegressionConfig,
    /// Per-class weight rows, each `n_features` long.
    weights: Vec<Vec<f64>>,
    bias: Vec<f64>,
}

impl LogisticRegression {
    /// Create an untrained model.
    pub fn new(config: LogisticRegressionConfig) -> LogisticRegression {
        LogisticRegression {
            config,
            weights: Vec::new(),
            bias: Vec::new(),
        }
    }

    /// Per-class probabilities for one sample.
    pub fn predict_proba(&self, x: &SparseVec) -> Vec<f64> {
        assert!(!self.weights.is_empty(), "predict before fit");
        let scores: Vec<f64> = self
            .weights
            .iter()
            .zip(&self.bias)
            .map(|(w, b)| x.dot_dense(w) + b)
            .collect();
        softmax(&scores)
    }
}

/// Numerically stable softmax.
pub(crate) fn softmax(scores: &[f64]) -> Vec<f64> {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

impl Classifier for LogisticRegression {
    fn name(&self) -> &'static str {
        "Logistic Regression"
    }

    fn fit(&mut self, data: &Dataset) {
        let n_classes = data.n_classes();
        let n_features = data.n_features();
        let n = data.len().max(1);
        self.weights = vec![vec![0.0; n_features]; n_classes];
        self.bias = vec![0.0; n_classes];

        for _ in 0..self.config.epochs {
            // Parallel gradient accumulation over fixed-size sample blocks
            // (see `grad.rs`): the summation order — and therefore every
            // bit of the trained weights — is independent of the worker
            // count.
            let (grad, bias_grad) =
                accumulate_gradients(data.len(), n_classes, n_features, |i, g, bg| {
                    let x = &data.features[i];
                    let label = data.labels[i];
                    let scores: Vec<f64> = self
                        .weights
                        .iter()
                        .zip(&self.bias)
                        .map(|(w, b)| x.dot_dense(w) + b)
                        .collect();
                    let probs = softmax(&scores);
                    for c in 0..n_classes {
                        let err = probs[c] - if c == label { 1.0 } else { 0.0 };
                        if err != 0.0 {
                            x.add_scaled_to_dense(&mut g[c], err);
                            bg[c] += err;
                        }
                    }
                });

            let lr = self.config.learning_rate / n as f64;
            let mut total_update = 0.0;
            for c in 0..n_classes {
                for (w, g) in self.weights[c].iter_mut().zip(&grad[c]) {
                    let update = lr * (g + self.config.l2 * *w * n as f64);
                    *w -= update;
                    total_update += update.abs();
                }
                self.bias[c] -= lr * bias_grad[c];
            }
            if total_update / ((n_classes * n_features.max(1)) as f64) < self.config.tolerance {
                break;
            }
        }
    }

    fn predict(&self, x: &SparseVec) -> usize {
        assert!(!self.weights.is_empty(), "predict before fit");
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (c, (w, b)) in self.weights.iter().zip(&self.bias).enumerate() {
            let score = x.dot_dense(w) + b;
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }

    fn n_classes(&self) -> usize {
        self.weights.len()
    }
}

impl BatchClassifier for LogisticRegression {
    fn predict_csr(&self, m: &CsrMatrix) -> Vec<usize> {
        assert!(!self.weights.is_empty(), "predict before fit");
        linear_predict_csr(m, &self.weights, Some(&self.bias), argmax)
    }

    fn predict_csr_scored(&self, m: &CsrMatrix) -> (Vec<usize>, Option<Vec<f64>>) {
        assert!(!self.weights.is_empty(), "predict before fit");
        let (preds, margins) =
            linear_predict_csr_scored(m, &self.weights, Some(&self.bias), argmax_scored);
        (preds, Some(margins))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testutil::{assert_learns_toy, toy_dataset};

    #[test]
    fn learns_toy_problem() {
        let mut m = LogisticRegression::new(LogisticRegressionConfig::default());
        assert_learns_toy(&mut m);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let data = toy_dataset();
        let mut m = LogisticRegression::new(LogisticRegressionConfig::default());
        m.fit(&data);
        let p = m.predict_proba(&data.features[0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn softmax_stability_under_large_scores() {
        let p = softmax(&[1000.0, 1001.0, 999.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[1] > p[0] && p[0] > p[2]);
    }

    #[test]
    fn refit_replaces_state() {
        let data = toy_dataset();
        let mut m = LogisticRegression::new(LogisticRegressionConfig::default());
        m.fit(&data);
        let before = m.predict_batch(&data.features);
        m.fit(&data);
        let after = m.predict_batch(&data.features);
        assert_eq!(before, after, "fit must be deterministic and re-entrant");
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        LogisticRegression::new(LogisticRegressionConfig::default()).predict(&SparseVec::new());
    }

    #[test]
    fn unseen_features_ignored() {
        let data = toy_dataset();
        let mut m = LogisticRegression::new(LogisticRegressionConfig::default());
        m.fit(&data);
        // Feature index 9999 is outside the trained space.
        let x = SparseVec::from_pairs(vec![(0, 1.0), (1, 0.8), (9999, 5.0)]);
        assert_eq!(m.predict(&x), 0);
    }
}
