//! Brute-force k-nearest-neighbours with cosine similarity.
//!
//! Training just indexes the data, prediction pays the full scan — the
//! exact cost profile the paper measures (fastest training at 0.011 s,
//! slowest testing at 4.9 s). Queries scan every training vector with a
//! sparse-sparse dot product; batch prediction parallelizes over queries
//! with rayon.

use crate::batch::{map_row_chunks_with, BatchClassifier, InvertedIndex};
use crate::dataset::Dataset;
use crate::traits::Classifier;
use serde::{Deserialize, Serialize};
use textproc::{CsrMatrix, SparseVec};

/// kNN hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnConfig {
    /// Number of neighbours to vote.
    pub k: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig { k: 5 }
    }
}

/// k-nearest-neighbours classifier (cosine similarity).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KNearestNeighbors {
    config: KnnConfig,
    train: Vec<SparseVec>,
    norms: Vec<f64>,
    labels: Vec<usize>,
    n_classes: usize,
}

impl KNearestNeighbors {
    /// Create an untrained model.
    pub fn new(config: KnnConfig) -> KNearestNeighbors {
        KNearestNeighbors {
            config,
            ..KNearestNeighbors::default()
        }
    }

    /// Pick the winning class from per-training-row cosine scores: top-k by
    /// partial selection, then majority vote with ties broken by summed
    /// similarity then class index. Shared verbatim between the scalar and
    /// CSR paths so both decide identically from identical scores.
    fn vote(&self, scores: &[f64]) -> usize {
        let k = self.config.k.min(self.train.len()).max(1);
        let mut idx: Vec<usize> = (0..self.train.len()).collect();
        idx.select_nth_unstable_by(k - 1, |&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let top = &idx[..k];
        let mut votes = vec![0usize; self.n_classes];
        let mut sims = vec![0.0f64; self.n_classes];
        for &i in top {
            votes[self.labels[i]] += 1;
            sims[self.labels[i]] += scores[i];
        }
        (0..self.n_classes)
            .max_by(|&a, &b| {
                votes[a]
                    .cmp(&votes[b])
                    .then(
                        sims[a]
                            .partial_cmp(&sims[b])
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
                    .then(b.cmp(&a))
            })
            .unwrap_or(0)
    }
}

impl Classifier for KNearestNeighbors {
    fn name(&self) -> &'static str {
        "kNN"
    }

    fn fit(&mut self, data: &Dataset) {
        // Deliberately minimal: clone the data, cache norms. All real work
        // happens at query time (matching the paper's timing shape).
        self.train = data.features.clone();
        self.norms = data.features.iter().map(SparseVec::norm).collect();
        self.labels = data.labels.clone();
        self.n_classes = data.n_classes();
    }

    fn predict(&self, x: &SparseVec) -> usize {
        assert!(!self.train.is_empty(), "predict before fit");
        let x_norm = x.norm();
        let scores: Vec<f64> = self
            .train
            .iter()
            .zip(&self.norms)
            .map(|(t, &n)| {
                if n == 0.0 || x_norm == 0.0 {
                    0.0
                } else {
                    x.dot(t) / (n * x_norm)
                }
            })
            .collect();
        self.vote(&scores)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

impl BatchClassifier for KNearestNeighbors {
    /// Pruned batch scoring: instead of a full sparse-sparse scan per query,
    /// build an inverted index over the training columns once per batch and
    /// accumulate each query's dot products only against training rows that
    /// share a feature. Accumulation order per training row equals the merge
    /// order of [`SparseVec::dot`], and the vote is the shared
    /// [`KNearestNeighbors::vote`], so predictions match the scalar path
    /// exactly.
    fn predict_csr(&self, m: &CsrMatrix) -> Vec<usize> {
        assert!(!self.train.is_empty(), "predict before fit");
        let index = InvertedIndex::build(&self.train);
        map_row_chunks_with(
            m.n_rows(),
            || {
                (
                    vec![0.0f64; self.train.len()],
                    vec![0.0f64; self.train.len()],
                )
            },
            |r, (acc, scores)| {
                let (qi, qv) = m.row(r);
                acc.iter_mut().for_each(|a| *a = 0.0);
                index.accumulate_dots(qi, qv, acc);
                let x_norm = qv.iter().map(|v| v * v).sum::<f64>().sqrt();
                for ((s, &dot), &n) in scores.iter_mut().zip(acc.iter()).zip(&self.norms) {
                    *s = if n == 0.0 || x_norm == 0.0 {
                        0.0
                    } else {
                        dot / (n * x_norm)
                    };
                }
                self.vote(scores)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::testutil::{assert_learns_toy, toy_dataset};

    #[test]
    fn learns_toy_problem() {
        let mut m = KNearestNeighbors::new(KnnConfig::default());
        assert_learns_toy(&mut m);
    }

    #[test]
    fn exact_duplicate_wins_with_k1() {
        let data = toy_dataset();
        let mut m = KNearestNeighbors::new(KnnConfig { k: 1 });
        m.fit(&data);
        for (x, &l) in data.features.iter().zip(&data.labels) {
            assert_eq!(m.predict(x), l);
        }
    }

    #[test]
    fn zero_query_vector_is_handled() {
        let data = toy_dataset();
        let mut m = KNearestNeighbors::new(KnnConfig::default());
        m.fit(&data);
        // No features → all scores zero → deterministic fallback.
        let p = m.predict(&SparseVec::new());
        assert!(p < 3);
    }

    #[test]
    fn k_larger_than_train_set() {
        let data = toy_dataset();
        let mut m = KNearestNeighbors::new(KnnConfig { k: 500 });
        m.fit(&data);
        let p = m.predict(&data.features[0]);
        assert!(p < 3);
    }

    #[test]
    fn unseen_feature_indices_ignored() {
        let data = toy_dataset();
        let mut m = KNearestNeighbors::new(KnnConfig::default());
        m.fit(&data);
        let x = SparseVec::from_pairs(vec![(0, 1.0), (10_000, 9.0)]);
        assert_eq!(m.predict(&x), 0);
    }

    #[test]
    fn zero_train_vectors_never_dominate() {
        let data = Dataset::new(
            vec![SparseVec::new(), SparseVec::from_pairs(vec![(0, 1.0)])],
            vec![0, 1],
            vec!["zero".into(), "real".into()],
        );
        let mut m = KNearestNeighbors::new(KnnConfig { k: 1 });
        m.fit(&data);
        assert_eq!(m.predict(&SparseVec::from_pairs(vec![(0, 2.0)])), 1);
    }
}
