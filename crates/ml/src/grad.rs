//! Deterministic parallel gradient accumulation.
//!
//! The full-batch trainers (logistic regression, ridge) sum per-sample
//! gradient contributions in parallel. Floating-point addition is not
//! associative, so the summation *order* is part of the model definition:
//! if chunk boundaries followed the worker count (as a plain
//! `par_iter().fold().reduce()` does), the same corpus and seed would
//! produce slightly different weights on different machines or under
//! different `RAYON_NUM_THREADS` settings — breaking the conformance
//! runner's byte-identical golden checks.
//!
//! The helper here fixes the order: samples are folded sequentially within
//! fixed-size blocks, blocks run in parallel, and block results are merged
//! sequentially in block order. The result depends only on [`GRAD_BLOCK`],
//! never on how many threads executed the blocks.

use rayon::prelude::*;

/// Samples per accumulation block. Fixed (not derived from the worker
/// count) so the float summation order is machine-invariant.
const GRAD_BLOCK: usize = 512;

/// Dense per-class gradient accumulator: one `n_features` row per class
/// plus a bias entry per class.
pub(crate) type GradPair = (Vec<Vec<f64>>, Vec<f64>);

/// Sum per-sample contributions into `(weight_grad, bias_grad)` with a
/// thread-count-invariant summation order.
///
/// `per_sample(i, grad, bias_grad)` adds sample `i`'s contribution into the
/// block-local accumulator. Blocks of [`GRAD_BLOCK`] consecutive samples
/// run in parallel; finished blocks are merged sequentially in block order.
pub(crate) fn accumulate_gradients<F>(
    n_samples: usize,
    n_classes: usize,
    n_features: usize,
    per_sample: F,
) -> GradPair
where
    F: Fn(usize, &mut [Vec<f64>], &mut [f64]) + Sync,
{
    let n_blocks = n_samples.div_ceil(GRAD_BLOCK).max(1);
    let blocks: Vec<GradPair> = (0..n_blocks)
        .into_par_iter()
        .map(|b| {
            let mut grad = vec![vec![0.0; n_features]; n_classes];
            let mut bias = vec![0.0; n_classes];
            let lo = b * GRAD_BLOCK;
            let hi = (lo + GRAD_BLOCK).min(n_samples);
            for i in lo..hi {
                per_sample(i, &mut grad, &mut bias);
            }
            (grad, bias)
        })
        .collect();

    let mut blocks = blocks.into_iter();
    let (mut grad, mut bias) = blocks.next().expect("at least one block");
    for (block_grad, block_bias) in blocks {
        for (row, block_row) in grad.iter_mut().zip(&block_grad) {
            for (acc, v) in row.iter_mut().zip(block_row) {
                *acc += v;
            }
        }
        for (acc, v) in bias.iter_mut().zip(&block_bias) {
            *acc += v;
        }
    }
    (grad, bias)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(n_samples: usize) -> GradPair {
        accumulate_gradients(n_samples, 2, 3, |i, grad, bias| {
            let x = (i as f64).sin();
            for c in 0..2 {
                for (f, g) in grad[c].iter_mut().enumerate() {
                    *g += x * (c as f64 + 1.0) * (f as f64 + 0.5);
                }
                bias[c] += x;
            }
        })
    }

    #[test]
    fn invariant_under_thread_count() {
        // Same fixed blocks regardless of how many workers execute them:
        // the env override must not change a single bit.
        let baseline = run(5000);
        for threads in ["1", "2", "7"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let got = run(5000);
            std::env::remove_var("RAYON_NUM_THREADS");
            assert_eq!(got, baseline, "drift at RAYON_NUM_THREADS={threads}");
        }
    }

    #[test]
    fn empty_input_yields_zeros() {
        let (grad, bias) = accumulate_gradients(0, 2, 3, |_, _, _| unreachable!());
        assert_eq!(grad, vec![vec![0.0; 3]; 2]);
        assert_eq!(bias, vec![0.0; 2]);
    }
}
