//! Matrix-at-a-time inference over [`CsrMatrix`] batches.
//!
//! The scalar [`Classifier::predict`] path materializes one [`SparseVec`]
//! per message and re-touches every class weight row per sample. The batch
//! path scores a whole CSR matrix against the dense class-weight block at
//! once: rows are processed in cache-sized chunks in parallel, and within a
//! row the kernel walks the sparse entries once, updating all class scores
//! column-major.
//!
//! Every implementation here is bit-identical to its scalar counterpart —
//! the kernel accumulates each class's score in the same entry order as
//! [`SparseVec::dot_dense`], applies the bias after the full accumulation,
//! and reuses the exact decision rule (strict-inequality argmax/argmin) of
//! the scalar `predict`. Property tests in `tests/proptests.rs` enforce
//! the equivalence for every model.

use crate::traits::Classifier;
use rayon::prelude::*;
use textproc::{CsrMatrix, SparseVec};

/// Rows scored per parallel work item; the per-chunk score buffer is reused
/// across its rows.
const ROW_CHUNK: usize = 64;

/// A classifier that can score a whole CSR batch at once.
///
/// The default implementation falls back to per-row [`Classifier::predict`]
/// (parallel over rows), so any `Classifier` can be lifted; the linear
/// family and kNN override it with real matrix kernels.
pub trait BatchClassifier: Classifier {
    /// Predict the class index of every row of `m`. Must agree exactly
    /// with calling [`Classifier::predict`] on each row.
    fn predict_csr(&self, m: &CsrMatrix) -> Vec<usize> {
        map_row_chunks(m.n_rows(), |r| self.predict(&m.row_vec(r)))
    }

    /// [`BatchClassifier::predict_csr`] plus a per-row confidence margin:
    /// the winner's decision-score gap to the closest runner-up (in the
    /// model's own score space), `0.0` when fewer than two classes compete.
    ///
    /// Predictions MUST be bit-identical to `predict_csr` — the linear
    /// family derives the margin from the very score vector the decision
    /// rule already reduced. Models without a meaningful margin (kNN's
    /// vote counts, the default per-row fallback) return `None` and their
    /// predictions stay on the plain path.
    fn predict_csr_scored(&self, m: &CsrMatrix) -> (Vec<usize>, Option<Vec<f64>>) {
        (self.predict_csr(m), None)
    }
}

/// Run `per_row` over `0..n_rows` parallel in contiguous chunks, preserving
/// row order in the output.
pub(crate) fn map_row_chunks<F>(n_rows: usize, per_row: F) -> Vec<usize>
where
    F: Fn(usize) -> usize + Sync,
{
    map_row_chunks_with(n_rows, || (), |r, ()| per_row(r))
}

/// [`map_row_chunks`] with per-chunk scratch state: `init` builds the
/// scratch once per chunk and every row of that chunk reuses it, so hot
/// buffers (score accumulators and the like) are allocated per work item
/// rather than per row.
pub(crate) fn map_row_chunks_with<S, I, F>(n_rows: usize, init: I, per_row: F) -> Vec<usize>
where
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> usize + Sync,
{
    let n_chunks = n_rows.div_ceil(ROW_CHUNK).max(1);
    let chunks: Vec<Vec<usize>> = (0..n_chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * ROW_CHUNK;
            let hi = (lo + ROW_CHUNK).min(n_rows);
            let mut scratch = init();
            (lo..hi).map(|r| per_row(r, &mut scratch)).collect()
        })
        .collect();
    chunks.concat()
}

/// The shared linear-family kernel: for every row of `m`, compute
/// `scores[c] = Σ_i weights[c][i] · row[i]` (+ `bias[c]` when given) and
/// reduce the score vector to a class with `decide`.
///
/// Column-major accumulation: the row's sparse entries are walked once in
/// ascending index order and each entry updates all class scores, so each
/// class's partial sums occur in exactly the order of
/// `row.dot_dense(&weights[c])` — same floats in, same float out. Entries
/// at or beyond the weight dimensionality are skipped, mirroring
/// `dot_dense`'s treatment of unseen vocabulary.
pub(crate) fn linear_predict_csr<D>(
    m: &CsrMatrix,
    weights: &[Vec<f64>],
    bias: Option<&[f64]>,
    decide: D,
) -> Vec<usize>
where
    D: Fn(&[f64]) -> usize + Sync,
{
    linear_map_csr(m, weights, bias, decide)
}

/// [`linear_predict_csr`] generalized to an arbitrary per-row reduction:
/// `decide` sees the fully accumulated (bias-applied) score vector and may
/// return any value — a class index, or a `(class, margin)` pair for the
/// scored path. The accumulation loop is shared, so every caller gets the
/// same floats in the same order.
pub(crate) fn linear_map_csr<T, D>(
    m: &CsrMatrix,
    weights: &[Vec<f64>],
    bias: Option<&[f64]>,
    decide: D,
) -> Vec<T>
where
    T: Send,
    D: Fn(&[f64]) -> T + Sync,
{
    let n_classes = weights.len();
    let n_features = weights.first().map(Vec::len).unwrap_or(0);
    let n_rows = m.n_rows();
    let n_chunks = n_rows.div_ceil(ROW_CHUNK).max(1);
    let chunks: Vec<Vec<T>> = (0..n_chunks)
        .into_par_iter()
        .map(|chunk| {
            let lo = chunk * ROW_CHUNK;
            let hi = (lo + ROW_CHUNK).min(n_rows);
            let mut scores = vec![0.0f64; n_classes];
            let mut preds = Vec::with_capacity(hi - lo);
            for r in lo..hi {
                let (indices, values) = m.row(r);
                scores.iter_mut().for_each(|s| *s = 0.0);
                for (&i, &v) in indices.iter().zip(values) {
                    let i = i as usize;
                    if i >= n_features {
                        continue;
                    }
                    for (s, w) in scores.iter_mut().zip(weights) {
                        *s += w[i] * v;
                    }
                }
                if let Some(bias) = bias {
                    for (s, &b) in scores.iter_mut().zip(bias) {
                        *s += b;
                    }
                }
                preds.push(decide(&scores));
            }
            preds
        })
        .collect();
    chunks.into_iter().flatten().collect()
}

/// The scored companion of [`linear_predict_csr`]: same kernel, but
/// `decide` also reports the winner's confidence margin. Returns the
/// predictions and margins as parallel vectors.
pub(crate) fn linear_predict_csr_scored<D>(
    m: &CsrMatrix,
    weights: &[Vec<f64>],
    bias: Option<&[f64]>,
    decide: D,
) -> (Vec<usize>, Vec<f64>)
where
    D: Fn(&[f64]) -> (usize, f64) + Sync,
{
    linear_map_csr(m, weights, bias, decide).into_iter().unzip()
}

/// The winner's gap to the closest competitor: `min_{c ≠ winner}
/// |scores[c] − scores[winner]|`, or `0.0` when no competitor exists.
pub(crate) fn margin_about(scores: &[f64], winner: usize) -> f64 {
    let mut margin = f64::INFINITY;
    for (c, &s) in scores.iter().enumerate() {
        if c != winner {
            let gap = (s - scores[winner]).abs();
            if gap < margin {
                margin = gap;
            }
        }
    }
    if margin.is_finite() {
        margin
    } else {
        0.0
    }
}

/// [`argmax`] plus the winner's margin — the scored decision rule for
/// argmax-family linear models. The winner is computed by the *same*
/// `argmax` call, so predictions cannot drift from the plain path.
pub(crate) fn argmax_scored(scores: &[f64]) -> (usize, f64) {
    let winner = argmax(scores);
    (winner, margin_about(scores, winner))
}

/// [`argmin`] plus the winner's margin.
pub(crate) fn argmin_scored(scores: &[f64]) -> (usize, f64) {
    let winner = argmin(scores);
    (winner, margin_about(scores, winner))
}

/// Index of the strictly greatest score, first winner on ties — the exact
/// loop every linear model's scalar `predict` runs.
pub(crate) fn argmax(scores: &[f64]) -> usize {
    let mut best = 0;
    let mut best_score = f64::NEG_INFINITY;
    for (c, &s) in scores.iter().enumerate() {
        if s > best_score {
            best_score = s;
            best = c;
        }
    }
    best
}

/// Index of the strictly smallest score, first winner on ties.
pub(crate) fn argmin(scores: &[f64]) -> usize {
    let mut best = 0;
    let mut best_score = f64::INFINITY;
    for (c, &s) in scores.iter().enumerate() {
        if s < best_score {
            best_score = s;
            best = c;
        }
    }
    best
}

/// Inverted index over a training set's feature columns: postings[f] lists
/// `(train row, value)` for every training vector with feature `f` active.
/// Built by kNN's `predict_csr` so a query touches only the training rows
/// that share at least one feature with it, instead of the full scan.
pub(crate) struct InvertedIndex {
    postings: Vec<Vec<(u32, f64)>>,
}

impl InvertedIndex {
    /// Index `train` by feature column.
    pub(crate) fn build(train: &[SparseVec]) -> InvertedIndex {
        let n_features = train.iter().map(SparseVec::max_dim).max().unwrap_or(0);
        let mut postings: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_features];
        for (t, vec) in train.iter().enumerate() {
            for (i, v) in vec.iter() {
                postings[i as usize].push((t as u32, v));
            }
        }
        InvertedIndex { postings }
    }

    /// Accumulate `acc[t] += q_v · t_v` for every training row `t` sharing a
    /// feature with the query. Because the query's entries are walked in
    /// ascending index order and each posting list is in ascending training
    /// row order, each `acc[t]` receives its products in ascending shared
    /// feature order — the same order as the merge in [`SparseVec::dot`].
    pub(crate) fn accumulate_dots(&self, q_indices: &[u32], q_values: &[f64], acc: &mut [f64]) {
        for (&qi, &qv) in q_indices.iter().zip(q_values) {
            let Some(list) = self.postings.get(qi as usize) else {
                continue;
            };
            for &(t, tv) in list {
                acc[t as usize] += qv * tv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_first_wins_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[f64::NEG_INFINITY]), 0);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn argmin_first_wins_ties() {
        assert_eq!(argmin(&[2.0, 1.0, 1.0]), 1);
        assert_eq!(argmin(&[]), 0);
    }

    #[test]
    fn kernel_matches_row_dot_dense() {
        let rows = vec![
            SparseVec::from_pairs(vec![(0, 1.0), (2, 0.5), (9, 4.0)]),
            SparseVec::new(),
            SparseVec::from_pairs(vec![(1, -2.0), (3, 1.5)]),
        ];
        let m = CsrMatrix::from_rows(&rows, 4);
        let weights = vec![vec![1.0, 2.0, 3.0, 4.0], vec![-1.0, 0.5, 0.0, 2.0]];
        let bias = vec![0.25, -0.5];
        let preds = linear_predict_csr(&m, &weights, Some(&bias), argmax);
        for (r, row) in rows.iter().enumerate() {
            let scores: Vec<f64> = weights
                .iter()
                .zip(&bias)
                .map(|(w, b)| row.dot_dense(w) + b)
                .collect();
            assert_eq!(preds[r], argmax(&scores));
        }
    }

    #[test]
    fn scored_kernel_agrees_with_plain_and_reports_runner_up_gap() {
        let rows = vec![
            SparseVec::from_pairs(vec![(0, 1.0), (2, 0.5), (9, 4.0)]),
            SparseVec::new(),
            SparseVec::from_pairs(vec![(1, -2.0), (3, 1.5)]),
        ];
        let m = CsrMatrix::from_rows(&rows, 4);
        let weights = vec![vec![1.0, 2.0, 3.0, 4.0], vec![-1.0, 0.5, 0.0, 2.0]];
        let bias = vec![0.25, -0.5];
        let plain = linear_predict_csr(&m, &weights, Some(&bias), argmax);
        let (scored, margins) = linear_predict_csr_scored(&m, &weights, Some(&bias), argmax_scored);
        assert_eq!(scored, plain);
        for (r, row) in rows.iter().enumerate() {
            let scores: Vec<f64> = weights
                .iter()
                .zip(&bias)
                .map(|(w, b)| row.dot_dense(w) + b)
                .collect();
            assert_eq!(margins[r], (scores[0] - scores[1]).abs());
        }
    }

    #[test]
    fn margin_is_zero_without_a_competitor() {
        assert_eq!(margin_about(&[3.0], 0), 0.0);
        assert_eq!(margin_about(&[], 0), 0.0);
        assert_eq!(argmax_scored(&[2.0, 5.0, 4.0]), (1, 1.0));
        assert_eq!(argmin_scored(&[2.0, 5.0, 4.0]), (0, 2.0));
    }

    #[test]
    fn inverted_index_matches_sparse_dot() {
        let train = vec![
            SparseVec::from_pairs(vec![(0, 1.0), (3, 2.0)]),
            SparseVec::from_pairs(vec![(1, 0.5)]),
            SparseVec::new(),
        ];
        let index = InvertedIndex::build(&train);
        let q = SparseVec::from_pairs(vec![(0, 2.0), (1, 4.0), (7, 1.0)]);
        let mut acc = vec![0.0; train.len()];
        index.accumulate_dots(q.indices(), q.values(), &mut acc);
        for (t, tv) in train.iter().enumerate() {
            assert_eq!(acc[t], q.dot(tv));
        }
    }
}
