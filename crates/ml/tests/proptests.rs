//! Property tests: metric identities and cross-model invariants on random
//! separable datasets.

use hetsyslog_ml::metrics::ConfusionMatrix;
use hetsyslog_ml::{
    BatchClassifier, Classifier, ComplementNaiveBayes, ComplementNbConfig, Dataset,
    KNearestNeighbors, KnnConfig, LinearSvc, LinearSvcConfig, LogisticRegression,
    LogisticRegressionConfig, NearestCentroid, RandomForest, RandomForestConfig, RidgeClassifier,
    RidgeConfig, SgdClassifier, SgdConfig,
};
use proptest::prelude::*;
use textproc::{CsrMatrix, SparseVec};

fn class_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("c{i}")).collect()
}

/// The full suite with trimmed training budgets — the agreement test is
/// about inference, not fit quality.
fn fast_suite(seed: u64) -> Vec<Box<dyn BatchClassifier>> {
    vec![
        Box::new(LogisticRegression::new(LogisticRegressionConfig {
            epochs: 15,
            ..LogisticRegressionConfig::default()
        })),
        Box::new(RidgeClassifier::new(RidgeConfig {
            epochs: 15,
            ..RidgeConfig::default()
        })),
        Box::new(KNearestNeighbors::new(KnnConfig { k: 3 })),
        Box::new(RandomForest::new(RandomForestConfig {
            n_trees: 4,
            seed,
            ..RandomForestConfig::default()
        })),
        Box::new(LinearSvc::new(LinearSvcConfig {
            max_epochs: 15,
            tolerance: 1e-2,
            seed,
            ..LinearSvcConfig::default()
        })),
        Box::new(SgdClassifier::new(SgdConfig {
            epochs: 3,
            seed,
            ..SgdConfig::default()
        })),
        Box::new(NearestCentroid::new()),
        Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default())),
    ]
}

proptest! {
    /// Confusion-matrix row sums equal per-class support, and the diagonal
    /// of a self-comparison is the full support.
    #[test]
    fn confusion_row_sums(labels in proptest::collection::vec(0usize..4, 1..60)) {
        let cm = ConfusionMatrix::from_predictions(&class_names(4), &labels, &labels);
        prop_assert_eq!(cm.accuracy(), 1.0);
        for c in 0..4 {
            let expected = labels.iter().filter(|&&l| l == c).count() as u64;
            prop_assert_eq!(cm.support(c), expected);
            prop_assert_eq!(cm.get(c, c), expected);
        }
        prop_assert_eq!(cm.total(), labels.len() as u64);
    }

    /// Weighted F1 is bounded by [0, 1] for arbitrary prediction vectors.
    #[test]
    fn weighted_f1_bounded(
        truth in proptest::collection::vec(0usize..3, 1..50),
        seed in 0u64..1000,
    ) {
        let predicted: Vec<usize> = truth
            .iter()
            .enumerate()
            .map(|(i, &t)| if (i as u64 + seed).is_multiple_of(3) { (t + 1) % 3 } else { t })
            .collect();
        let cm = ConfusionMatrix::from_predictions(&class_names(3), &truth, &predicted);
        let f1 = cm.weighted_f1();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f1));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&cm.macro_f1()));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&cm.accuracy()));
    }

    /// On a cleanly separable random dataset, every cheap model predicts
    /// training labels correctly (kNN k=1 must be exact; centroid and CNB
    /// near-exact given disjoint feature blocks).
    #[test]
    fn models_fit_separable_data(
        n_per_class in 2usize..8,
        n_classes in 2usize..5,
        scale in 0.5f64..3.0,
    ) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for c in 0..n_classes {
            for r in 0..n_per_class {
                let base = (c * 4) as u32;
                features.push(SparseVec::from_pairs(vec![
                    (base, scale),
                    (base + 1, scale * 0.5 + r as f64 * 0.01),
                ]));
                labels.push(c);
            }
        }
        let data = Dataset::new(features, labels, class_names(n_classes));

        let mut knn = KNearestNeighbors::new(KnnConfig { k: 1 });
        knn.fit(&data);
        prop_assert_eq!(knn.predict_batch(&data.features), data.labels.clone());

        let mut nc = NearestCentroid::new();
        nc.fit(&data);
        prop_assert_eq!(nc.predict_batch(&data.features), data.labels.clone());

        let mut cnb = ComplementNaiveBayes::new(ComplementNbConfig::default());
        cnb.fit(&data);
        prop_assert_eq!(cnb.predict_batch(&data.features), data.labels.clone());
    }

    /// The batch CSR path is bit-identical to the scalar path: for every
    /// classifier in the suite, `predict_csr` over the whole matrix equals
    /// per-row `predict` exactly (no tolerance — the kernels are built to
    /// reproduce the scalar accumulation order).
    #[test]
    fn predict_csr_matches_scalar_predict(
        n_per_class in 2usize..6,
        n_classes in 2usize..5,
        scale in 0.5f64..3.0,
        seed in 0u64..100,
    ) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for c in 0..n_classes {
            for r in 0..n_per_class {
                let base = (c * 4) as u32;
                features.push(SparseVec::from_pairs(vec![
                    (base, scale),
                    (base + 1, scale * 0.5 + r as f64 * 0.01),
                ]));
                labels.push(c);
            }
        }
        // Query rows include the training points plus off-distribution
        // probes (an empty row and one overlapping two class blocks).
        let mut queries = features.clone();
        queries.push(SparseVec::from_pairs(vec![]));
        queries.push(SparseVec::from_pairs(vec![(0, scale * 0.3), (4, scale * 0.3)]));
        let matrix = CsrMatrix::from_rows(&queries, 0);

        let data = Dataset::new(features, labels, class_names(n_classes));
        for mut model in fast_suite(seed) {
            model.fit(&data);
            let scalar: Vec<usize> = queries.iter().map(|x| model.predict(x)).collect();
            let batch = model.predict_csr(&matrix);
            prop_assert_eq!(batch, scalar, "CSR/scalar divergence in {}", model.name());
        }
    }

    /// The scored batch path returns the *same* predictions as the plain
    /// batch path (and hence the scalar path), and every reported
    /// confidence margin is finite and non-negative.
    #[test]
    fn predict_csr_scored_matches_predict_csr(
        n_per_class in 2usize..6,
        n_classes in 2usize..5,
        scale in 0.5f64..3.0,
        seed in 0u64..100,
    ) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for c in 0..n_classes {
            for r in 0..n_per_class {
                let base = (c * 4) as u32;
                features.push(SparseVec::from_pairs(vec![
                    (base, scale),
                    (base + 1, scale * 0.5 + r as f64 * 0.01),
                ]));
                labels.push(c);
            }
        }
        let mut queries = features.clone();
        queries.push(SparseVec::from_pairs(vec![]));
        queries.push(SparseVec::from_pairs(vec![(0, scale * 0.3), (4, scale * 0.3)]));
        let matrix = CsrMatrix::from_rows(&queries, 0);

        let data = Dataset::new(features, labels, class_names(n_classes));
        for mut model in fast_suite(seed) {
            model.fit(&data);
            let plain = model.predict_csr(&matrix);
            let (scored, margins) = model.predict_csr_scored(&matrix);
            prop_assert_eq!(&scored, &plain, "scored/plain divergence in {}", model.name());
            if let Some(margins) = margins {
                prop_assert_eq!(margins.len(), scored.len());
                for &m in &margins {
                    prop_assert!(
                        m.is_finite() && m >= 0.0,
                        "bad margin {m} from {}",
                        model.name()
                    );
                }
            }
        }
    }

    /// Stratified splits partition the data and never lose samples, for
    /// arbitrary ratios and seeds.
    #[test]
    fn split_partitions(
        labels in proptest::collection::vec(0usize..3, 6..80),
        ratio in 0.1f64..0.9,
        seed in 0u64..500,
    ) {
        let features: Vec<SparseVec> = (0..labels.len())
            .map(|i| SparseVec::from_pairs(vec![(i as u32, 1.0)]))
            .collect();
        let data = Dataset::new(features, labels, class_names(3));
        let (train, test) = data.stratified_split(ratio, seed);
        prop_assert_eq!(train.len() + test.len(), data.len());
        // Class counts are preserved in the union.
        let union: Vec<usize> = (0..3)
            .map(|c| train.class_counts()[c] + test.class_counts()[c])
            .collect();
        prop_assert_eq!(union, data.class_counts());
    }

    /// SMOTE and ADASYN balance every non-empty class to the majority
    /// count, and synthetic points carry only values producible by
    /// interpolation (bounded by the class's max feature values).
    #[test]
    fn smote_adasyn_balance(
        minority in 1usize..5,
        majority in 5usize..12,
        seed in 0u64..50,
    ) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..majority {
            features.push(SparseVec::from_pairs(vec![(0, 1.0 + i as f64 * 0.1)]));
            labels.push(0);
        }
        for i in 0..minority {
            features.push(SparseVec::from_pairs(vec![(5, 2.0 + i as f64 * 0.2)]));
            labels.push(1);
        }
        let data = Dataset::new(features, labels, class_names(2));
        for balanced in [
            hetsyslog_ml::smote_oversample(&data, 3, seed),
            hetsyslog_ml::adasyn_oversample(&data, 3, seed),
        ] {
            prop_assert_eq!(balanced.class_counts(), vec![majority, majority]);
            // Synthetic minority points stay inside the minority's bounding
            // box on feature 5 and never touch majority feature 0.
            let max_v = 2.0 + (minority as f64 - 1.0) * 0.2;
            for (x, &l) in balanced.features.iter().zip(&balanced.labels).skip(data.len()) {
                prop_assert_eq!(l, 1);
                prop_assert_eq!(x.get(0), 0.0);
                prop_assert!(x.get(5) >= 2.0 - 1e-9 && x.get(5) <= max_v + 1e-9);
            }
        }
    }

    /// For arbitrary (truth, prediction) pairs: row sums equal per-class
    /// support, column sums equal per-class prediction counts, and the
    /// `rows()` export agrees with the scalar `get()` accessor.
    #[test]
    fn confusion_marginals(
        truth in proptest::collection::vec(0usize..4, 1..60),
        seed in 0u64..1000,
    ) {
        let predicted: Vec<usize> = truth
            .iter()
            .enumerate()
            .map(|(i, &t)| (t + (i + seed as usize)) % 4)
            .collect();
        let cm = ConfusionMatrix::from_predictions(&class_names(4), &truth, &predicted);
        let rows = cm.row_sums();
        let cols = cm.col_sums();
        for c in 0..4 {
            prop_assert_eq!(rows[c], cm.support(c));
            prop_assert_eq!(rows[c], truth.iter().filter(|&&l| l == c).count() as u64);
            prop_assert_eq!(cols[c], predicted.iter().filter(|&&l| l == c).count() as u64);
        }
        prop_assert_eq!(rows.iter().sum::<u64>(), cm.total());
        for (t, row) in cm.rows().iter().enumerate() {
            for (p, &cell) in row.iter().enumerate() {
                prop_assert_eq!(cell, cm.get(t, p));
            }
        }
    }

    /// F1 scores are invariant under any consistent permutation of the
    /// class labels (relabeling classes cannot change aggregate quality),
    /// and per-class F1 permutes along with the labels.
    #[test]
    fn f1_invariant_under_label_permutation(
        truth in proptest::collection::vec(0usize..4, 1..60),
        noise in proptest::collection::vec(0usize..4, 1..60),
        perm_seed in 0usize..24,
    ) {
        let n = truth.len().min(noise.len());
        let truth = &truth[..n];
        let predicted: Vec<usize> = (0..n).map(|i| (truth[i] + noise[i]) % 4).collect();
        // Decode perm_seed into the perm_seed-th permutation of [0,1,2,3].
        let mut items = vec![0usize, 1, 2, 3];
        let mut k = perm_seed;
        let mut perm = Vec::new();
        for f in [6usize, 2, 1, 1] {
            let idx = k / f;
            k %= f;
            perm.push(items.remove(idx));
        }
        let truth_p: Vec<usize> = truth.iter().map(|&t| perm[t]).collect();
        let pred_p: Vec<usize> = predicted.iter().map(|&p| perm[p]).collect();
        let cm = ConfusionMatrix::from_predictions(&class_names(4), truth, &predicted);
        let cm_p = ConfusionMatrix::from_predictions(&class_names(4), &truth_p, &pred_p);
        prop_assert!((cm.weighted_f1() - cm_p.weighted_f1()).abs() < 1e-12);
        prop_assert!((cm.macro_f1() - cm_p.macro_f1()).abs() < 1e-12);
        prop_assert!((cm.accuracy() - cm_p.accuracy()).abs() < 1e-12);
        let f1 = cm.per_class_f1();
        let f1_p = cm_p.per_class_f1();
        for c in 0..4 {
            prop_assert!((f1[c] - f1_p[perm[c]]).abs() < 1e-12);
        }
    }

    /// Oversampling yields perfectly balanced classes among non-empty ones.
    #[test]
    fn oversample_balances(
        labels in proptest::collection::vec(0usize..3, 3..40),
        seed in 0u64..100,
    ) {
        let features: Vec<SparseVec> = (0..labels.len())
            .map(|i| SparseVec::from_pairs(vec![(i as u32, 1.0)]))
            .collect();
        let data = Dataset::new(features, labels, class_names(3));
        let balanced = data.random_oversample(seed);
        let orig = data.class_counts();
        let target = *orig.iter().max().unwrap();
        for (c, &count) in balanced.class_counts().iter().enumerate() {
            if orig[c] > 0 {
                prop_assert_eq!(count, target);
            } else {
                prop_assert_eq!(count, 0);
            }
        }
    }
}
