//! Levenshtein distance: classic two-row DP plus a banded, early-exit
//! variant for thresholded lookups.
//!
//! Bucket assignment only ever asks "is d(a, b) ≤ 7?", so the bounded
//! variant — which confines the DP to a diagonal band of width `2k+1` and
//! abandons a row as soon as its minimum exceeds `k` — is the hot path. Its
//! cost is O(k·min(|a|,|b|)) instead of O(|a|·|b|).

/// Full Levenshtein distance between two strings (unicode-aware, by chars).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_chars(&a, &b)
}

/// Levenshtein over pre-collected char slices.
pub fn levenshtein_chars(a: &[char], b: &[char]) -> usize {
    // Keep the shorter string in the inner dimension for the smaller row.
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr: Vec<usize> = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub_cost = if ca == cb { 0 } else { 1 };
            curr[j + 1] = (prev[j] + sub_cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Bounded Levenshtein: returns `Some(d)` when `d ≤ max`, else `None`.
///
/// Uses the length-difference lower bound, then a banded DP with per-row
/// early exit. Equivalent to `levenshtein(a, b) <= max` but much faster on
/// mismatches, which dominate bucket lookup.
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_bounded_chars(&a, &b, max)
}

/// Bounded Levenshtein over pre-collected char slices.
pub fn levenshtein_bounded_chars(a: &[char], b: &[char], max: usize) -> Option<usize> {
    let (a, b) = if a.len() < b.len() { (b, a) } else { (a, b) };
    if a.len() - b.len() > max {
        return None;
    }
    if b.is_empty() {
        return (a.len() <= max).then_some(a.len());
    }
    const INF: usize = usize::MAX / 2;
    // Row over b (the shorter string); band of half-width `max` around the
    // main diagonal. Cells one past the band edge are refreshed to INF each
    // row because the next row's band reads them.
    let mut prev: Vec<usize> = (0..=b.len())
        .map(|j| if j <= max { j } else { INF })
        .collect();
    let mut curr: Vec<usize> = vec![INF; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(max);
        let hi = (i + max + 1).min(b.len()); // exclusive bound over j
        let fill_hi = (hi + 1).min(b.len());
        curr[lo..=fill_hi].fill(INF);
        if lo == 0 {
            // Deleting the first i+1 chars of `a`; may exceed `max`, which
            // the row-minimum check below handles.
            curr[0] = i + 1;
        }
        let mut row_min = INF;
        for j in lo..hi {
            let sub_cost = if ca == b[j] { 0 } else { 1 };
            let val = (prev[j] + sub_cost).min(prev[j + 1] + 1).min(curr[j] + 1);
            curr[j + 1] = val;
            row_min = row_min.min(val);
        }
        if row_min > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let d = prev[b.len()];
    (d <= max).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn unicode_chars_not_bytes() {
        assert_eq!(levenshtein("héllo", "hello"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn paper_example_distance_7() {
        // §4.3.1 shows two thermal messages that Levenshtein bucketing
        // fails to group; ours demonstrates the *principle* with masked
        // variants that differ by a handful of token edits.
        let a = "cpu temperature above threshold, cpu clock throttled.";
        let b = "cpu temperature above threshold, cpu clock throttled!";
        assert_eq!(levenshtein(a, b), 1);
    }

    #[test]
    fn bounded_agrees_with_full_within_bound() {
        let pairs = [
            ("kitten", "sitting"),
            ("abcdef", "abcdef"),
            ("abc", "xyz"),
            ("short", "a much longer string entirely"),
            ("", "abc"),
        ];
        for (a, b) in pairs {
            let full = levenshtein(a, b);
            for max in 0..12 {
                let bounded = levenshtein_bounded(a, b, max);
                if full <= max {
                    assert_eq!(bounded, Some(full), "a={a} b={b} max={max}");
                } else {
                    assert_eq!(bounded, None, "a={a} b={b} max={max}");
                }
            }
        }
    }

    #[test]
    fn bounded_length_gap_shortcut() {
        assert_eq!(levenshtein_bounded("ab", "abcdefghij", 3), None);
        assert_eq!(levenshtein_bounded("", "", 0), Some(0));
    }

    #[test]
    fn symmetric() {
        assert_eq!(levenshtein("abcd", "badc"), levenshtein("badc", "abcd"));
        assert_eq!(
            levenshtein_bounded("abcd", "badc", 4),
            levenshtein_bounded("badc", "abcd", 4)
        );
    }
}
