//! Hamming distance (equal-length strings only).
//!
//! The paper cites Hamming distance alongside Levenshtein as the grouping
//! metrics used on Darwin; in practice it was only applicable to the
//! fixed-layout vendor messages, which is why `BucketStore` defaults to
//! Levenshtein.

/// Hamming distance between two strings, by chars.
///
/// Returns `None` when the strings have different char lengths (the metric
/// is undefined there).
pub fn hamming(a: &str, b: &str) -> Option<usize> {
    let mut ai = a.chars();
    let mut bi = b.chars();
    let mut dist = 0usize;
    loop {
        match (ai.next(), bi.next()) {
            (Some(ca), Some(cb)) => {
                if ca != cb {
                    dist += 1;
                }
            }
            (None, None) => return Some(dist),
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(hamming("karolin", "kathrin"), Some(3));
        assert_eq!(hamming("1011101", "1001001"), Some(2));
        assert_eq!(hamming("", ""), Some(0));
        assert_eq!(hamming("same", "same"), Some(0));
    }

    #[test]
    fn length_mismatch_is_none() {
        assert_eq!(hamming("ab", "abc"), None);
        assert_eq!(hamming("abc", ""), None);
    }

    #[test]
    fn unicode_by_char() {
        assert_eq!(hamming("naïve", "naive"), Some(1));
    }
}
