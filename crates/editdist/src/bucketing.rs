//! Exemplar-bucket grouping of syslog messages (Background §3).
//!
//! Every bucket holds one *exemplar* message. An incoming message joins the
//! first bucket whose exemplar is within the edit-distance threshold
//! (Darwin used 7); otherwise it founds a new bucket and lands in the
//! unclassified queue for a human to label. Labeled buckets turn the store
//! into a classifier: a message inherits the label of the bucket it joins.
//!
//! The lookup prunes by exemplar length (|len(a) − len(b)| ≤ threshold is a
//! Levenshtein lower bound) and uses the banded early-exit distance, then
//! falls back to a rayon parallel scan when many candidates survive.

use crate::damerau::damerau_levenshtein;
use crate::levenshtein::levenshtein_bounded_chars;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Which edit metric the store compares with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Plain Levenshtein (insert/delete/substitute). The Darwin default.
    Levenshtein,
    /// Damerau-Levenshtein (adds adjacent transposition).
    Damerau,
}

/// Store configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketingConfig {
    /// Maximum edit distance for a message to join a bucket. The paper's
    /// production threshold was 7.
    pub threshold: usize,
    /// Distance metric.
    pub metric: Metric,
    /// Use a rayon parallel scan when at least this many candidate buckets
    /// survive length pruning.
    pub parallel_cutoff: usize,
}

impl Default for BucketingConfig {
    fn default() -> Self {
        BucketingConfig {
            threshold: 7,
            metric: Metric::Levenshtein,
            parallel_cutoff: 256,
        }
    }
}

/// One message bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Stable id (insertion order).
    pub id: u32,
    /// The founding message.
    pub exemplar: String,
    /// Human-assigned issue-category label, once classified.
    pub label: Option<String>,
    /// How many messages have joined (including the exemplar).
    pub count: u64,
    #[serde(skip)]
    exemplar_chars: Vec<char>,
}

impl Bucket {
    fn new(id: u32, exemplar: &str) -> Bucket {
        Bucket {
            id,
            exemplar: exemplar.to_string(),
            label: None,
            count: 1,
            exemplar_chars: exemplar.chars().collect(),
        }
    }

    fn chars(&self) -> &[char] {
        &self.exemplar_chars
    }
}

/// Result of [`BucketStore::assign`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// The bucket the message joined or founded.
    pub bucket_id: u32,
    /// True when a new bucket was created (message needs human labeling).
    pub is_new: bool,
    /// Edit distance to the bucket exemplar (0 when new).
    pub distance: usize,
}

/// The exemplar-bucket store.
#[derive(Debug, Clone, Default, Serialize)]
pub struct BucketStore {
    config: BucketingConfig,
    buckets: Vec<Bucket>,
}

impl<'de> Deserialize<'de> for BucketStore {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        #[derive(Deserialize)]
        struct Raw {
            config: BucketingConfig,
            buckets: Vec<Bucket>,
        }
        let raw = Raw::deserialize(deserializer)?;
        let mut store = BucketStore {
            config: raw.config,
            buckets: raw.buckets,
        };
        // The per-bucket char caches are serde-skipped; rebuild them so
        // distance computations stay correct after a round-trip.
        store.rebuild_caches();
        Ok(store)
    }
}

impl BucketStore {
    /// Create an empty store.
    pub fn new(config: BucketingConfig) -> BucketStore {
        BucketStore {
            config,
            buckets: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &BucketingConfig {
        &self.config
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when no buckets exist.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Borrow all buckets.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Borrow a bucket by id.
    pub fn bucket(&self, id: u32) -> Option<&Bucket> {
        self.buckets.get(id as usize)
    }

    /// Find the closest bucket within the threshold, without mutating.
    pub fn find(&self, message: &str) -> Option<(u32, usize)> {
        let chars: Vec<char> = message.chars().collect();
        self.find_chars(&chars)
    }

    fn find_chars(&self, chars: &[char]) -> Option<(u32, usize)> {
        let threshold = self.config.threshold;
        let candidates: Vec<&Bucket> = self
            .buckets
            .iter()
            .filter(|b| b.chars().len().abs_diff(chars.len()) <= threshold)
            .collect();
        let best = if candidates.len() >= self.config.parallel_cutoff {
            candidates
                .par_iter()
                .filter_map(|b| self.distance(chars, b).map(|d| (b.id, d)))
                .min_by_key(|&(id, d)| (d, id))
        } else {
            candidates
                .iter()
                .filter_map(|b| self.distance(chars, b).map(|d| (b.id, d)))
                .min_by_key(|&(id, d)| (d, id))
        };
        best
    }

    fn distance(&self, chars: &[char], bucket: &Bucket) -> Option<usize> {
        match self.config.metric {
            Metric::Levenshtein => {
                levenshtein_bounded_chars(chars, bucket.chars(), self.config.threshold)
            }
            Metric::Damerau => {
                let s: String = chars.iter().collect();
                let d = damerau_levenshtein(&s, &bucket.exemplar);
                (d <= self.config.threshold).then_some(d)
            }
        }
    }

    /// Assign a message: join the closest in-threshold bucket, or found a
    /// new one.
    pub fn assign(&mut self, message: &str) -> Assignment {
        let chars: Vec<char> = message.chars().collect();
        if let Some((id, distance)) = self.find_chars(&chars) {
            self.buckets[id as usize].count += 1;
            return Assignment {
                bucket_id: id,
                is_new: false,
                distance,
            };
        }
        let id = self.buckets.len() as u32;
        self.buckets.push(Bucket::new(id, message));
        Assignment {
            bucket_id: id,
            is_new: true,
            distance: 0,
        }
    }

    /// Label a bucket with an issue category. Returns false for unknown ids.
    pub fn label_bucket(&mut self, id: u32, label: impl Into<String>) -> bool {
        match self.buckets.get_mut(id as usize) {
            Some(b) => {
                b.label = Some(label.into());
                true
            }
            None => false,
        }
    }

    /// Classify a message through its bucket's label (None when the message
    /// founds no bucket within threshold or the bucket is unlabeled).
    pub fn classify(&self, message: &str) -> Option<&str> {
        let (id, _) = self.find(message)?;
        self.buckets[id as usize].label.as_deref()
    }

    /// Buckets still waiting for a human label — the "unclassified queue"
    /// whose growth rate is the system's retraining burden.
    pub fn unlabeled(&self) -> impl Iterator<Item = &Bucket> {
        self.buckets.iter().filter(|b| b.label.is_none())
    }

    /// Restore the char caches after deserialization.
    pub fn rebuild_caches(&mut self) {
        for b in &mut self.buckets {
            b.exemplar_chars = b.exemplar.chars().collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(threshold: usize) -> BucketStore {
        BucketStore::new(BucketingConfig {
            threshold,
            ..BucketingConfig::default()
        })
    }

    #[test]
    fn similar_messages_share_bucket() {
        let mut s = store(7);
        let a = s.assign("cpu 3 temperature above threshold");
        let b = s.assign("cpu 7 temperature above threshold");
        assert!(a.is_new);
        assert!(!b.is_new);
        assert_eq!(a.bucket_id, b.bucket_id);
        assert_eq!(s.len(), 1);
        assert_eq!(s.bucket(a.bucket_id).unwrap().count, 2);
    }

    #[test]
    fn distant_messages_split() {
        let mut s = store(7);
        s.assign("cpu temperature above threshold");
        let b = s.assign("usb device 4 disconnected from hub");
        assert!(b.is_new);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn classification_via_labels() {
        let mut s = store(7);
        let a = s.assign("cpu 3 temperature above threshold");
        s.label_bucket(a.bucket_id, "Thermal Issue");
        assert_eq!(s.classify("cpu 9 temperature above threshold"), Some("Thermal Issue"));
        assert_eq!(s.classify("totally different text about slurm"), None);
        assert_eq!(s.unlabeled().count(), 0);
    }

    #[test]
    fn unlabeled_queue_tracks_new_buckets() {
        let mut s = store(3);
        s.assign("first message kind");
        s.assign("second message kind entirely different");
        assert_eq!(s.unlabeled().count(), 2);
        s.label_bucket(0, "X");
        assert_eq!(s.unlabeled().count(), 1);
    }

    #[test]
    fn paper_failure_mode_same_issue_different_phrasing() {
        // §4.3.1: these describe the same thermal issue but exceed the
        // threshold, so bucketing wrongly splits them — the motivating
        // failure for the ML approach.
        let mut s = store(7);
        s.assign("CPU temperature above threshold, cpu clock throttled.");
        let b = s.assign("CPU 1 Temperature Above Non-Recoverable - Asserted. Current temperature: 95C");
        assert!(b.is_new, "heterogeneous phrasing must found a new bucket");
    }

    #[test]
    fn ties_go_to_lowest_bucket_id() {
        let mut s = store(2);
        s.assign("aaaa");
        s.assign("bbbb");
        // "aabb" is distance 2 from both; must deterministically join id 0.
        let a = s.assign("aabb");
        assert_eq!(a.bucket_id, 0);
    }

    #[test]
    fn damerau_metric_accepts_swaps() {
        let mut s = BucketStore::new(BucketingConfig {
            threshold: 1,
            metric: Metric::Damerau,
            ..BucketingConfig::default()
        });
        s.assign("thermal event");
        // "thremal event" is one adjacent transposition away.
        let c = s.assign("thremal event");
        assert!(!c.is_new);
    }

    #[test]
    fn empty_message_is_a_bucket() {
        let mut s = store(7);
        let a = s.assign("");
        assert!(a.is_new);
        let b = s.assign("short");
        assert!(!b.is_new, "within threshold of empty exemplar");
    }

    #[test]
    fn label_unknown_bucket_is_false() {
        let mut s = store(7);
        assert!(!s.label_bucket(42, "X"));
    }
}
