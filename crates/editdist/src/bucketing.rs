//! Exemplar-bucket grouping of syslog messages (Background §3).
//!
//! Every bucket holds one *exemplar* message. An incoming message joins the
//! first bucket whose exemplar is within the edit-distance threshold
//! (Darwin used 7); otherwise it founds a new bucket and lands in the
//! unclassified queue for a human to label. Labeled buckets turn the store
//! into a classifier: a message inherits the label of the bucket it joins.
//!
//! The lookup prunes by exemplar length (|len(a) − len(b)| ≤ threshold is a
//! Levenshtein lower bound) and uses the banded early-exit distance, then
//! falls back to a rayon parallel scan when many candidates survive.

use crate::damerau::damerau_levenshtein;
use crate::levenshtein::levenshtein_bounded_chars;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Which edit metric the store compares with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Plain Levenshtein (insert/delete/substitute). The Darwin default.
    Levenshtein,
    /// Damerau-Levenshtein (adds adjacent transposition).
    Damerau,
}

/// Store configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketingConfig {
    /// Maximum edit distance for a message to join a bucket. The paper's
    /// production threshold was 7.
    pub threshold: usize,
    /// Distance metric.
    pub metric: Metric,
    /// Use a rayon parallel scan when at least this many candidate buckets
    /// survive length pruning.
    pub parallel_cutoff: usize,
}

impl Default for BucketingConfig {
    fn default() -> Self {
        BucketingConfig {
            threshold: 7,
            metric: Metric::Levenshtein,
            parallel_cutoff: 256,
        }
    }
}

/// One message bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Stable id (insertion order).
    pub id: u32,
    /// The founding message.
    pub exemplar: String,
    /// Human-assigned issue-category label, once classified.
    pub label: Option<String>,
    /// How many messages have joined (including the exemplar).
    pub count: u64,
    #[serde(skip)]
    exemplar_chars: Vec<char>,
    /// Character-presence bitmask of the exemplar (see [`charmask`]).
    #[serde(skip)]
    charmask: u64,
}

/// 64-bit character-presence mask: bit `c mod 64` is set for every char in
/// `chars`. One unit edit changes at most one char occurrence out and one
/// in, flipping at most two bits of the mask, so
/// `popcount(mask(a) ^ mask(b)) ≤ 2 · levenshtein(a, b)` — a constant-time
/// lower bound used to skip the DP for clearly-distant pairs. (A Damerau
/// transposition permutes chars without changing the bag: zero bits flip,
/// so the bound holds for that metric too.)
fn charmask(chars: &[char]) -> u64 {
    let mut mask = 0u64;
    for &c in chars {
        mask |= 1 << (c as u32 % 64);
    }
    mask
}

impl Bucket {
    fn new(id: u32, exemplar: &str) -> Bucket {
        let exemplar_chars: Vec<char> = exemplar.chars().collect();
        Bucket {
            id,
            exemplar: exemplar.to_string(),
            label: None,
            count: 1,
            charmask: charmask(&exemplar_chars),
            exemplar_chars,
        }
    }

    fn chars(&self) -> &[char] {
        &self.exemplar_chars
    }
}

/// Result of [`BucketStore::assign`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// The bucket the message joined or founded.
    pub bucket_id: u32,
    /// True when a new bucket was created (message needs human labeling).
    pub is_new: bool,
    /// Edit distance to the bucket exemplar (0 when new).
    pub distance: usize,
}

/// The exemplar-bucket store.
#[derive(Debug, Clone, Default, Serialize)]
pub struct BucketStore {
    config: BucketingConfig,
    buckets: Vec<Bucket>,
    /// Bucket ids grouped by exemplar char length: `len_index[l]` holds the
    /// ids (in insertion order) of every bucket whose exemplar is `l` chars
    /// long. Lookups only visit the `±threshold` length window instead of
    /// scanning all buckets — |len(a) − len(b)| ≤ threshold is a Levenshtein
    /// lower bound, so no candidate is ever missed.
    #[serde(skip)]
    len_index: Vec<Vec<u32>>,
}

impl<'de> Deserialize<'de> for BucketStore {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        #[derive(Deserialize)]
        struct Raw {
            config: BucketingConfig,
            buckets: Vec<Bucket>,
        }
        let raw = Raw::deserialize(deserializer)?;
        let mut store = BucketStore {
            config: raw.config,
            buckets: raw.buckets,
            len_index: Vec::new(),
        };
        // The per-bucket char caches are serde-skipped; rebuild them so
        // distance computations stay correct after a round-trip.
        store.rebuild_caches();
        Ok(store)
    }
}

impl BucketStore {
    /// Create an empty store.
    pub fn new(config: BucketingConfig) -> BucketStore {
        BucketStore {
            config,
            buckets: Vec::new(),
            len_index: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &BucketingConfig {
        &self.config
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when no buckets exist.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Borrow all buckets.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Borrow a bucket by id.
    pub fn bucket(&self, id: u32) -> Option<&Bucket> {
        self.buckets.get(id as usize)
    }

    /// Find the closest bucket within the threshold, without mutating.
    pub fn find(&self, message: &str) -> Option<(u32, usize)> {
        let chars: Vec<char> = message.chars().collect();
        self.find_chars(&chars)
    }

    fn find_chars(&self, chars: &[char]) -> Option<(u32, usize)> {
        let candidates = self.length_window_candidates(chars.len(), charmask(chars));
        let best = if candidates.len() >= self.config.parallel_cutoff {
            candidates
                .par_iter()
                .filter_map(|b| self.distance(chars, b).map(|d| (b.id, d)))
                .min_by_key(|&(id, d)| (d, id))
        } else {
            candidates
                .iter()
                .filter_map(|b| self.distance(chars, b).map(|d| (b.id, d)))
                .min_by_key(|&(id, d)| (d, id))
        };
        best
    }

    /// True when some bucket is within the threshold. Boolean-identical to
    /// `find(message).is_some()` but exits on the first hit instead of
    /// scanning the whole length window for the minimum — the fast path for
    /// blacklist membership checks on the ingest hot loop.
    pub fn contains(&self, message: &str) -> bool {
        let chars: Vec<char> = message.chars().collect();
        let mask = charmask(&chars);
        let threshold = self.config.threshold;
        let lo = chars.len().saturating_sub(threshold);
        let hi = chars.len() + threshold;
        for l in lo..=hi.min(self.len_index.len().saturating_sub(1)) {
            let Some(ids) = self.len_index.get(l) else {
                continue;
            };
            for &id in ids {
                let b = &self.buckets[id as usize];
                if (mask ^ b.charmask).count_ones() as usize <= 2 * threshold
                    && self.distance(&chars, b).is_some()
                {
                    return true;
                }
            }
        }
        false
    }

    /// Buckets whose exemplar length is within `threshold` of `len` and
    /// whose charmask passes the 2-bits-per-edit lower bound, in insertion
    /// order — a subset of the full scan's candidates that provably
    /// contains every in-threshold bucket.
    fn length_window_candidates(&self, len: usize, mask: u64) -> Vec<&Bucket> {
        let threshold = self.config.threshold;
        let lo = len.saturating_sub(threshold);
        let hi = (len + threshold).min(self.len_index.len().saturating_sub(1));
        let mut candidates: Vec<&Bucket> = Vec::new();
        for l in lo..=hi {
            if let Some(ids) = self.len_index.get(l) {
                candidates.extend(ids.iter().filter_map(|&id| {
                    let b = &self.buckets[id as usize];
                    ((mask ^ b.charmask).count_ones() as usize <= 2 * threshold).then_some(b)
                }));
            }
        }
        candidates
    }

    fn index_bucket(&mut self, id: u32) {
        let len = self.buckets[id as usize].chars().len();
        if self.len_index.len() <= len {
            self.len_index.resize_with(len + 1, Vec::new);
        }
        self.len_index[len].push(id);
    }

    fn distance(&self, chars: &[char], bucket: &Bucket) -> Option<usize> {
        match self.config.metric {
            Metric::Levenshtein => {
                levenshtein_bounded_chars(chars, bucket.chars(), self.config.threshold)
            }
            Metric::Damerau => {
                let s: String = chars.iter().collect();
                let d = damerau_levenshtein(&s, &bucket.exemplar);
                (d <= self.config.threshold).then_some(d)
            }
        }
    }

    /// Assign a message: join the closest in-threshold bucket, or found a
    /// new one.
    pub fn assign(&mut self, message: &str) -> Assignment {
        let chars: Vec<char> = message.chars().collect();
        if let Some((id, distance)) = self.find_chars(&chars) {
            self.buckets[id as usize].count += 1;
            return Assignment {
                bucket_id: id,
                is_new: false,
                distance,
            };
        }
        let id = self.buckets.len() as u32;
        self.buckets.push(Bucket::new(id, message));
        self.index_bucket(id);
        Assignment {
            bucket_id: id,
            is_new: true,
            distance: 0,
        }
    }

    /// Label a bucket with an issue category. Returns false for unknown ids.
    pub fn label_bucket(&mut self, id: u32, label: impl Into<String>) -> bool {
        match self.buckets.get_mut(id as usize) {
            Some(b) => {
                b.label = Some(label.into());
                true
            }
            None => false,
        }
    }

    /// Classify a message through its bucket's label (None when the message
    /// founds no bucket within threshold or the bucket is unlabeled).
    pub fn classify(&self, message: &str) -> Option<&str> {
        let (id, _) = self.find(message)?;
        self.buckets[id as usize].label.as_deref()
    }

    /// Buckets still waiting for a human label — the "unclassified queue"
    /// whose growth rate is the system's retraining burden.
    pub fn unlabeled(&self) -> impl Iterator<Item = &Bucket> {
        self.buckets.iter().filter(|b| b.label.is_none())
    }

    /// Restore the char caches and length index after deserialization.
    pub fn rebuild_caches(&mut self) {
        for b in &mut self.buckets {
            b.exemplar_chars = b.exemplar.chars().collect();
            b.charmask = charmask(&b.exemplar_chars);
        }
        self.len_index.clear();
        for id in 0..self.buckets.len() as u32 {
            self.index_bucket(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(threshold: usize) -> BucketStore {
        BucketStore::new(BucketingConfig {
            threshold,
            ..BucketingConfig::default()
        })
    }

    #[test]
    fn similar_messages_share_bucket() {
        let mut s = store(7);
        let a = s.assign("cpu 3 temperature above threshold");
        let b = s.assign("cpu 7 temperature above threshold");
        assert!(a.is_new);
        assert!(!b.is_new);
        assert_eq!(a.bucket_id, b.bucket_id);
        assert_eq!(s.len(), 1);
        assert_eq!(s.bucket(a.bucket_id).unwrap().count, 2);
    }

    #[test]
    fn distant_messages_split() {
        let mut s = store(7);
        s.assign("cpu temperature above threshold");
        let b = s.assign("usb device 4 disconnected from hub");
        assert!(b.is_new);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn classification_via_labels() {
        let mut s = store(7);
        let a = s.assign("cpu 3 temperature above threshold");
        s.label_bucket(a.bucket_id, "Thermal Issue");
        assert_eq!(
            s.classify("cpu 9 temperature above threshold"),
            Some("Thermal Issue")
        );
        assert_eq!(s.classify("totally different text about slurm"), None);
        assert_eq!(s.unlabeled().count(), 0);
    }

    #[test]
    fn unlabeled_queue_tracks_new_buckets() {
        let mut s = store(3);
        s.assign("first message kind");
        s.assign("second message kind entirely different");
        assert_eq!(s.unlabeled().count(), 2);
        s.label_bucket(0, "X");
        assert_eq!(s.unlabeled().count(), 1);
    }

    #[test]
    fn paper_failure_mode_same_issue_different_phrasing() {
        // §4.3.1: these describe the same thermal issue but exceed the
        // threshold, so bucketing wrongly splits them — the motivating
        // failure for the ML approach.
        let mut s = store(7);
        s.assign("CPU temperature above threshold, cpu clock throttled.");
        let b = s
            .assign("CPU 1 Temperature Above Non-Recoverable - Asserted. Current temperature: 95C");
        assert!(b.is_new, "heterogeneous phrasing must found a new bucket");
    }

    #[test]
    fn ties_go_to_lowest_bucket_id() {
        let mut s = store(2);
        s.assign("aaaa");
        s.assign("bbbb");
        // "aabb" is distance 2 from both; must deterministically join id 0.
        let a = s.assign("aabb");
        assert_eq!(a.bucket_id, 0);
    }

    #[test]
    fn damerau_metric_accepts_swaps() {
        let mut s = BucketStore::new(BucketingConfig {
            threshold: 1,
            metric: Metric::Damerau,
            ..BucketingConfig::default()
        });
        s.assign("thermal event");
        // "thremal event" is one adjacent transposition away.
        let c = s.assign("thremal event");
        assert!(!c.is_new);
    }

    #[test]
    fn empty_message_is_a_bucket() {
        let mut s = store(7);
        let a = s.assign("");
        assert!(a.is_new);
        let b = s.assign("short");
        assert!(!b.is_new, "within threshold of empty exemplar");
    }

    #[test]
    fn label_unknown_bucket_is_false() {
        let mut s = store(7);
        assert!(!s.label_bucket(42, "X"));
    }
}
