//! Edit-distance metrics and the exemplar-bucket baseline classifier.
//!
//! Before this paper's ML work, Darwin's syslog was organized by minimum
//! edit distance (Background §3): messages within Levenshtein distance 7 of
//! a bucket's *exemplar* joined that bucket, buckets were hand-labeled with
//! an issue category, and new exemplars landed in an unclassified queue for
//! a human. This crate reproduces that whole system — it is both the
//! baseline the paper's classifiers are compared against and the
//! recommended "Unimportant" pre-filter from the paper's conclusion.
//!
//! Metrics provided: Levenshtein (full, two-row, banded with early exit),
//! Damerau-Levenshtein (adjacent transpositions), and Hamming.

pub mod blacklist;
pub mod bucketing;
pub mod damerau;
pub mod hamming;
pub mod levenshtein;

pub use blacklist::Blacklist;
pub use bucketing::{Bucket, BucketStore, BucketingConfig};
pub use damerau::damerau_levenshtein;
pub use hamming::hamming;
pub use levenshtein::{levenshtein, levenshtein_bounded};
