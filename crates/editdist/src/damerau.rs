//! Damerau-Levenshtein distance (optimal string alignment variant).
//!
//! Adds adjacent transposition to the Levenshtein edit set. Vendor firmware
//! typos and field reorderings occasionally differ by exactly a swap, so
//! the bucketing engine exposes this as an alternative metric.

/// Optimal-string-alignment Damerau-Levenshtein distance (each substring
/// may be edited at most once; the common variant used in practice).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let cols = b.len() + 1;
    // Three rolling rows: i-2, i-1, i.
    let mut prev2: Vec<usize> = vec![0; cols];
    let mut prev: Vec<usize> = (0..cols).collect();
    let mut curr: Vec<usize> = vec![0; cols];
    for i in 1..=a.len() {
        curr[0] = i;
        for j in 1..=b.len() {
            let sub_cost = if a[i - 1] == b[j - 1] { 0 } else { 1 };
            let mut best = (prev[j - 1] + sub_cost)
                .min(prev[j] + 1)
                .min(curr[j - 1] + 1);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(prev2[j - 2] + 1);
            }
            curr[j] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::levenshtein;

    #[test]
    fn transposition_costs_one() {
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("thermal", "thremal"), 1);
    }

    #[test]
    fn matches_levenshtein_without_swaps() {
        for (a, b) in [("kitten", "sitting"), ("", "abc"), ("same", "same")] {
            assert_eq!(damerau_levenshtein(a, b), levenshtein(a, b));
        }
    }

    #[test]
    fn never_exceeds_levenshtein() {
        let pairs = [
            ("abcdef", "badcfe"),
            ("warning cpu hot", "warning hot cpu"),
            ("xy", "yx"),
        ];
        for (a, b) in pairs {
            assert!(damerau_levenshtein(a, b) <= levenshtein(a, b));
        }
    }

    #[test]
    fn empty_cases() {
        assert_eq!(damerau_levenshtein("", ""), 0);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
    }
}
