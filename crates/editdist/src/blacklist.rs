//! The "Unimportant" pre-filter recommended by the paper's conclusion.
//!
//! §5.1 observes that the "Unimportant" category is the one the classifiers
//! most often confuse, and the conclusion proposes filtering known-ignorable
//! messages *before* classification using the minimum-edit-distance
//! technique at a *lower* threshold (tight matching, so the filter stays
//! precise and the general classifier sees everything genuinely new).

use crate::bucketing::{BucketStore, BucketingConfig};
use serde::{Deserialize, Serialize};

/// An edit-distance blacklist of administrator-ignorable messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Blacklist {
    store: BucketStore,
}

impl Blacklist {
    /// Build an empty blacklist with the given (tight) threshold.
    ///
    /// The paper suggests "a lower value for the categorization threshold"
    /// than the general-purpose 7; 3 is the default here.
    pub fn new(threshold: usize) -> Blacklist {
        Blacklist {
            store: BucketStore::new(BucketingConfig {
                threshold,
                ..BucketingConfig::default()
            }),
        }
    }

    /// Build from a set of known-unimportant messages.
    pub fn from_messages<S: AsRef<str>>(threshold: usize, messages: &[S]) -> Blacklist {
        let mut bl = Blacklist::new(threshold);
        for m in messages {
            bl.add(m.as_ref());
        }
        bl
    }

    /// Register a message pattern as ignorable.
    pub fn add(&mut self, message: &str) {
        self.store.assign(message);
    }

    /// True when `message` matches a blacklisted pattern within threshold.
    /// Uses the early-exit membership check: any in-threshold pattern
    /// suffices, so there is no need to find the *closest* one.
    pub fn is_blacklisted(&self, message: &str) -> bool {
        self.store.contains(message)
    }

    /// Number of distinct blacklisted patterns.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when no patterns are registered.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Partition messages into (kept, filtered) — the pre-filter step
    /// upstream of the general classifier.
    pub fn partition<'a>(&self, messages: &[&'a str]) -> (Vec<&'a str>, Vec<&'a str>) {
        let mut kept = Vec::with_capacity(messages.len());
        let mut filtered = Vec::new();
        for &m in messages {
            if self.is_blacklisted(m) {
                filtered.push(m);
            } else {
                kept.push(m);
            }
        }
        (kept, filtered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_near_duplicates_only() {
        let bl = Blacklist::from_messages(
            3,
            &[
                "systemd: Started Session 1 of user root",
                "rsyslogd was HUPed",
            ],
        );
        assert!(bl.is_blacklisted("systemd: Started Session 9 of user root"));
        assert!(!bl.is_blacklisted("kernel: CPU temperature above threshold"));
        assert_eq!(bl.len(), 2);
    }

    #[test]
    fn tight_threshold_rejects_loose_matches() {
        let bl = Blacklist::from_messages(2, &["Started Session 1 of user root"]);
        // 8 edits away — unimportant-ish but not a known pattern.
        assert!(!bl.is_blacklisted("Started Session 1 of user somebodyelse"));
    }

    #[test]
    fn partition_splits_stream() {
        let bl = Blacklist::from_messages(2, &["noise pattern alpha"]);
        let msgs = [
            "noise pattern alpha",
            "noise pattern alph4",
            "real thermal problem",
        ];
        let (kept, filtered) = bl.partition(&msgs);
        assert_eq!(filtered.len(), 2);
        assert_eq!(kept, vec!["real thermal problem"]);
    }

    #[test]
    fn empty_blacklist_keeps_everything() {
        let bl = Blacklist::new(3);
        assert!(bl.is_empty());
        assert!(!bl.is_blacklisted("anything"));
    }

    #[test]
    fn dedupes_similar_patterns() {
        let mut bl = Blacklist::new(3);
        bl.add("Started Session 1 of user root");
        bl.add("Started Session 2 of user root");
        assert_eq!(bl.len(), 1, "near-identical patterns share a bucket");
    }
}
