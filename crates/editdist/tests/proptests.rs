//! Property tests: metric axioms for the edit distances and invariants of
//! the bucket store.

use editdist::bucketing::{BucketStore, BucketingConfig};
use editdist::{damerau_levenshtein, hamming, levenshtein, levenshtein_bounded};
use proptest::prelude::*;

proptest! {
    /// Levenshtein satisfies the metric axioms.
    #[test]
    fn levenshtein_is_a_metric(
        a in "[a-c]{0,12}",
        b in "[a-c]{0,12}",
        c in "[a-c]{0,12}",
    ) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        // Triangle inequality.
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // Identity of indiscernibles.
        if levenshtein(&a, &b) == 0 {
            prop_assert_eq!(&a, &b);
        }
    }

    /// Distance is bounded by max(len) and at least the length difference.
    #[test]
    fn levenshtein_bounds(a in "[a-e]{0,20}", b in "[a-e]{0,20}") {
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(d >= la.abs_diff(lb));
        prop_assert!(d <= la.max(lb));
    }

    /// The banded variant agrees with the full DP for every bound.
    #[test]
    fn bounded_matches_full(a in "[a-d]{0,16}", b in "[a-d]{0,16}", max in 0usize..20) {
        let full = levenshtein(&a, &b);
        match levenshtein_bounded(&a, &b, max) {
            Some(d) => {
                prop_assert_eq!(d, full);
                prop_assert!(d <= max);
            }
            None => prop_assert!(full > max),
        }
    }

    /// Damerau is bounded above by Levenshtein and below by half of it.
    #[test]
    fn damerau_relation(a in "[a-d]{0,14}", b in "[a-d]{0,14}") {
        let lev = levenshtein(&a, &b);
        let dam = damerau_levenshtein(&a, &b);
        prop_assert!(dam <= lev);
        prop_assert!(dam * 2 >= lev, "each swap replaces at most 2 edits");
    }

    /// Hamming is defined exactly for equal char lengths and bounds
    /// Levenshtein from above.
    #[test]
    fn hamming_vs_levenshtein(a in "[a-d]{0,14}", b in "[a-d]{0,14}") {
        match hamming(&a, &b) {
            Some(h) => {
                prop_assert_eq!(a.chars().count(), b.chars().count());
                prop_assert!(levenshtein(&a, &b) <= h);
            }
            None => prop_assert_ne!(a.chars().count(), b.chars().count()),
        }
    }

    /// Assigning the same message twice never founds a second bucket, and
    /// bucket counts always sum to the number of assignments.
    #[test]
    fn bucket_store_invariants(msgs in proptest::collection::vec("[a-c ]{0,10}", 1..24)) {
        let mut store = BucketStore::new(BucketingConfig { threshold: 2, ..BucketingConfig::default() });
        for m in &msgs {
            store.assign(m);
        }
        let n_before = store.len();
        for m in &msgs {
            let a = store.assign(m);
            prop_assert!(!a.is_new, "re-assigning a seen message founded a bucket");
        }
        prop_assert_eq!(store.len(), n_before);
        let total: u64 = store.buckets().iter().map(|b| b.count).sum();
        prop_assert_eq!(total, msgs.len() as u64 * 2);
    }

    /// The length-window + charmask prescreen never changes membership:
    /// `contains` agrees with a naive full scan over every exemplar, and
    /// with `find(..).is_some()`, for arbitrary stores and probes.
    #[test]
    fn prescreen_preserves_contains(
        seeds in proptest::collection::vec("[a-d ]{0,12}", 1..16),
        probes in proptest::collection::vec("[a-f ]{0,16}", 1..16),
        threshold in 0usize..5,
    ) {
        let mut store = BucketStore::new(BucketingConfig { threshold, ..BucketingConfig::default() });
        for m in &seeds {
            store.assign(m);
        }
        for p in &probes {
            let naive = store
                .buckets()
                .iter()
                .any(|b| levenshtein(p, &b.exemplar) <= threshold);
            prop_assert_eq!(
                store.contains(p),
                naive,
                "prescreen changed membership for probe {:?}",
                p
            );
            prop_assert_eq!(store.find(p).is_some(), naive);
        }
    }

    /// Every assignment distance respects the threshold.
    #[test]
    fn assignment_distance_within_threshold(
        msgs in proptest::collection::vec("[a-d]{0,12}", 1..20),
        threshold in 0usize..6,
    ) {
        let mut store = BucketStore::new(BucketingConfig { threshold, ..BucketingConfig::default() });
        for m in &msgs {
            let a = store.assign(m);
            prop_assert!(a.distance <= threshold);
            if !a.is_new {
                let ex = &store.bucket(a.bucket_id).unwrap().exemplar;
                prop_assert_eq!(levenshtein(m, ex), a.distance);
            }
        }
    }
}
