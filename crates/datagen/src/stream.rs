//! Timestamped arrival process for the real-time pipeline experiments.
//!
//! The paper motivates everything with volume: "in just an hour over a
//! million messages can be produced" on Darwin. This generator produces a
//! stream with a Poisson base load plus correlated bursts (the §4.5.1
//! "surges of repeated messages" that signal thermal/memory incidents),
//! each message stamped with synthetic Unix time and a full syslog frame.

use crate::corpus::LabeledMessage;
use crate::templates::{fill, templates_for};
use hetsyslog_core::Category;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use syslog_model::{Facility, Severity, Timestamp};

/// One timestamped stream element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedMessage {
    /// Unix seconds (synthetic clock).
    pub unix_seconds: i64,
    /// The labeled message.
    pub message: LabeledMessage,
    /// True when this element belongs to an injected burst.
    pub in_burst: bool,
}

impl TimedMessage {
    /// Render an RFC 5424 frame (modern emitters; exercises the structured
    /// parser and its SD handling end-to-end).
    pub fn to_frame_rfc5424(&self) -> String {
        let ts = Timestamp::from_unix_seconds(self.unix_seconds);
        let severity = if self.message.category.is_actionable() {
            Severity::Warning
        } else {
            Severity::Informational
        };
        let pri = Facility::Daemon.code() as u16 * 8 + severity.code() as u16;
        format!(
            "<{pri}>1 {ts} {} {} - - [origin@48577 family=\"{}\"] {}",
            self.message.node, self.message.app, self.message.family, self.message.text
        )
    }

    /// Render the frame as RFC 6587 octet-counted wire bytes (how a TCP
    /// sender would actually ship it).
    pub fn to_wire(&self) -> Vec<u8> {
        let frame = self.to_frame();
        format!("{} {frame}", frame.len()).into_bytes()
    }

    /// Render a full RFC 3164-style frame for the parser / pipeline.
    pub fn to_frame(&self) -> String {
        let ts = Timestamp::from_unix_seconds(self.unix_seconds);
        let severity = if self.message.category.is_actionable() {
            Severity::Warning
        } else {
            Severity::Informational
        };
        let pri = Facility::Daemon.code() as u16 * 8 + severity.code() as u16;
        format!(
            "<{pri}>{} {:02}:{:02}:{:02} {} {}: {}",
            month_day(ts),
            ts.hour,
            ts.minute,
            ts.second,
            self.message.node,
            self.message.app,
            self.message.text
        )
    }
}

fn month_day(ts: Timestamp) -> String {
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    format!("{} {:2}", MONTHS[(ts.month - 1) as usize], ts.day)
}

/// Stream options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Mean messages per second of the Poisson base load.
    pub base_rate: f64,
    /// Probability per generated message that a burst starts.
    pub burst_probability: f64,
    /// Messages per burst (min, max).
    pub burst_size: (usize, usize),
    /// Starting synthetic Unix time.
    pub start_unix: i64,
    /// Seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            base_rate: 300.0, // ~1.08M messages/hour: the Darwin figure
            burst_probability: 0.002,
            burst_size: (50, 400),
            start_unix: 1_697_000_000,
            seed: 42,
        }
    }
}

/// Infinite stream generator ([`Iterator`] of [`TimedMessage`]).
#[derive(Debug, Clone)]
pub struct StreamGenerator {
    config: StreamConfig,
    rng: ChaCha8Rng,
    clock: f64,
    /// Remaining burst messages and the burst's template category/node.
    burst: Option<(usize, Category, String)>,
}

impl StreamGenerator {
    /// Create a stream.
    pub fn new(config: StreamConfig) -> StreamGenerator {
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        let clock = config.start_unix as f64;
        StreamGenerator {
            config,
            rng,
            clock,
            burst: None,
        }
    }

    /// Category mix of the background load — weighted toward noise like
    /// the real stream (Table 2 proportions).
    fn draw_category(&mut self) -> Category {
        let total: usize = Category::ALL.iter().map(|c| c.paper_count()).sum();
        let mut pick = self.rng.gen_range(0..total);
        for &c in &Category::ALL {
            let w = c.paper_count();
            if pick < w {
                return c;
            }
            pick -= w;
        }
        Category::Unimportant
    }

    fn make_message(&mut self, category: Category, node: Option<&str>) -> LabeledMessage {
        let templates = templates_for(category);
        let total_weight: u32 = templates.iter().map(|t| t.weight).sum();
        let mut pick = self.rng.gen_range(0..total_weight);
        let mut template = templates[0];
        for t in &templates {
            if pick < t.weight {
                template = t;
                break;
            }
            pick -= t.weight;
        }
        let text = fill(template, &mut self.rng);
        let node = node
            .map(str::to_string)
            .unwrap_or_else(|| format!("cn{:04}", self.rng.gen_range(1..420)));
        LabeledMessage {
            text,
            category,
            family: template.family.to_string(),
            app: template.app.to_string(),
            node,
        }
    }
}

impl Iterator for StreamGenerator {
    type Item = TimedMessage;

    fn next(&mut self) -> Option<TimedMessage> {
        // Bursts arrive much faster than the base process and repeat one
        // category from one node — a thermal runaway or OOM loop.
        if let Some((remaining, category, node)) = self.burst.take() {
            let node_clone = node.clone();
            if remaining > 1 {
                self.burst = Some((remaining - 1, category, node));
            }
            self.clock += 0.005;
            let message = self.make_message(category, Some(&node_clone));
            return Some(TimedMessage {
                unix_seconds: self.clock as i64,
                message,
                in_burst: true,
            });
        }
        if self.rng.gen_bool(self.config.burst_probability) {
            let (lo, hi) = self.config.burst_size;
            let size = self.rng.gen_range(lo..=hi.max(lo));
            // Bursts come from incident-prone categories.
            let category = if self.rng.gen_bool(0.6) {
                Category::ThermalIssue
            } else {
                Category::MemoryIssue
            };
            let node = format!("cn{:04}", self.rng.gen_range(1..420));
            self.burst = Some((size, category, node));
            return self.next();
        }
        // Exponential inter-arrival for the Poisson base process.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        self.clock += -u.ln() / self.config.base_rate;
        let category = self.draw_category();
        let message = self.make_message(category, None);
        Some(TimedMessage {
            unix_seconds: self.clock as i64,
            message,
            in_burst: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> StreamConfig {
        StreamConfig {
            seed: 5,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn time_is_monotonic() {
        let stream = StreamGenerator::new(config());
        let msgs: Vec<TimedMessage> = stream.take(2000).collect();
        for w in msgs.windows(2) {
            assert!(w[1].unix_seconds >= w[0].unix_seconds);
        }
    }

    #[test]
    fn base_rate_is_approximated() {
        let stream = StreamGenerator::new(StreamConfig {
            burst_probability: 0.0,
            ..config()
        });
        let msgs: Vec<TimedMessage> = stream.take(20_000).collect();
        let span = (msgs.last().unwrap().unix_seconds - msgs[0].unix_seconds) as f64;
        let rate = msgs.len() as f64 / span.max(1.0);
        assert!(
            (rate - 300.0).abs() < 60.0,
            "rate {rate} too far from configured 300/s"
        );
    }

    #[test]
    fn bursts_repeat_node_and_category() {
        let stream = StreamGenerator::new(StreamConfig {
            burst_probability: 0.05,
            ..config()
        });
        let msgs: Vec<TimedMessage> = stream.take(5000).collect();
        let burst_msgs: Vec<&TimedMessage> = msgs.iter().filter(|m| m.in_burst).collect();
        assert!(!burst_msgs.is_empty(), "no bursts generated");
        // Consecutive burst messages share node and category.
        let consecutive = burst_msgs.windows(2).filter(|w| {
            w[0].message.node == w[1].message.node && w[0].message.category == w[1].message.category
        });
        assert!(consecutive.count() > burst_msgs.len() / 2);
    }

    #[test]
    fn frames_parse_back() {
        let stream = StreamGenerator::new(config());
        for tm in stream.take(200) {
            let frame = tm.to_frame();
            let parsed = syslog_model::parse(&frame).expect("frame must parse");
            assert_eq!(parsed.hostname.as_deref(), Some(tm.message.node.as_str()));
            assert_eq!(parsed.message, tm.message.text);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<TimedMessage> = StreamGenerator::new(config()).take(100).collect();
        let b: Vec<TimedMessage> = StreamGenerator::new(config()).take(100).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn rfc5424_frames_parse_with_structured_data() {
        for tm in StreamGenerator::new(config()).take(100) {
            let frame = tm.to_frame_rfc5424();
            let parsed = syslog_model::parse(&frame).expect("5424 frame must parse");
            assert_eq!(parsed.protocol, syslog_model::Protocol::Rfc5424);
            assert_eq!(parsed.hostname.as_deref(), Some(tm.message.node.as_str()));
            assert_eq!(parsed.message, tm.message.text);
            // The template family rides along as structured data.
            assert_eq!(
                parsed.structured_data[0].params["family"],
                tm.message.family
            );
        }
    }

    #[test]
    fn wire_bytes_decode_through_framing() {
        let msgs: Vec<TimedMessage> = StreamGenerator::new(config()).take(20).collect();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&m.to_wire());
        }
        let frames = syslog_model::split_stream(&wire);
        assert_eq!(frames.len(), 20);
        for (frame, m) in frames.iter().zip(&msgs) {
            assert_eq!(syslog_model::parse(frame).unwrap().message, m.message.text);
        }
    }
}
