//! Corpus generation with the paper's Table 2 class balance.

use crate::templates::{fill, templates_for, Template};
use hetsyslog_core::Category;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One labeled synthetic message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledMessage {
    /// The message text (the MSG part of a syslog frame).
    pub text: String,
    /// Ground-truth category.
    pub category: Category,
    /// Template family that produced it (for drift / bucketing studies).
    pub family: String,
    /// Emitting application tag.
    pub app: String,
    /// Originating node name.
    pub node: String,
}

impl LabeledMessage {
    /// Borrowed `(text, category)` pair for classifier training.
    pub fn pair(&self) -> (String, Category) {
        (self.text.clone(), self.category)
    }
}

/// Corpus generation options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Scale factor relative to the paper's 196 393 unique messages.
    /// 1.0 reproduces Table 2 exactly; 0.1 is a laptop-friendly ~19.6k.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Every class keeps at least this many messages regardless of scale
    /// (Slurm Issues has only 46 at scale 1.0).
    pub min_per_class: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            scale: 0.1,
            seed: 42,
            min_per_class: 12,
        }
    }
}

/// Target unique-message count for one category under `config`.
pub fn target_count(category: Category, config: &CorpusConfig) -> usize {
    let scaled = (category.paper_count() as f64 * config.scale).round() as usize;
    scaled.max(config.min_per_class)
}

/// Generate a corpus of unique labeled messages matching the scaled
/// Table 2 distribution. Messages are globally unique, like the paper's
/// deduplicated dataset.
pub fn generate_corpus(config: &CorpusConfig) -> Vec<LabeledMessage> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut seen: HashSet<String> = HashSet::new();
    let mut corpus = Vec::new();
    for &category in &Category::ALL {
        let templates = templates_for(category);
        assert!(!templates.is_empty(), "no templates for {category}");
        let total_weight: u32 = templates.iter().map(|t| t.weight).sum();
        let target = target_count(category, config);
        let mut produced = 0usize;
        let mut attempts = 0usize;
        // Uniqueness is slot-entropy-bound; the attempt cap guards against
        // a template family with too little entropy for the requested scale.
        let max_attempts = target * 40 + 10_000;
        while produced < target && attempts < max_attempts {
            attempts += 1;
            let template: &Template = {
                let mut pick = rng.gen_range(0..total_weight);
                let mut chosen = templates[0];
                for t in &templates {
                    if pick < t.weight {
                        chosen = t;
                        break;
                    }
                    pick -= t.weight;
                }
                chosen
            };
            let text = fill(template, &mut rng);
            if seen.insert(text.clone()) {
                corpus.push(LabeledMessage {
                    text,
                    category,
                    family: template.family.to_string(),
                    app: template.app.to_string(),
                    node: format!("cn{:04}", rng.gen_range(1..420)),
                });
                produced += 1;
            }
        }
        assert!(
            produced >= target.min(max_attempts / 40),
            "could not reach uniqueness target for {category}: {produced}/{target}"
        );
    }
    corpus
}

/// Convenience: `(text, category)` pairs for classifier training.
pub fn as_pairs(corpus: &[LabeledMessage]) -> Vec<(String, Category)> {
    corpus.iter().map(LabeledMessage::pair).collect()
}

/// Write a corpus as JSON lines (the CLI's interchange format).
pub fn write_jsonl<W: std::io::Write>(
    corpus: &[LabeledMessage],
    mut writer: W,
) -> std::io::Result<()> {
    for m in corpus {
        serde_json::to_writer(&mut writer, m).map_err(std::io::Error::other)?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Read a JSONL corpus; reports the offending line number on parse errors.
pub fn read_jsonl<R: std::io::BufRead>(reader: R) -> Result<Vec<LabeledMessage>, String> {
    let mut corpus = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        let msg: LabeledMessage =
            serde_json::from_str(&line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        corpus.push(msg);
    }
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CorpusConfig {
        CorpusConfig {
            scale: 0.01,
            seed: 7,
            min_per_class: 10,
        }
    }

    #[test]
    fn respects_scaled_table2_distribution() {
        let config = small();
        let corpus = generate_corpus(&config);
        for &c in &Category::ALL {
            let count = corpus.iter().filter(|m| m.category == c).count();
            assert_eq!(count, target_count(c, &config), "category {c}");
        }
        // Unimportant dominates, Slurm is rare — the paper's imbalance.
        let unimportant = corpus
            .iter()
            .filter(|m| m.category == Category::Unimportant)
            .count();
        let slurm = corpus
            .iter()
            .filter(|m| m.category == Category::SlurmIssue)
            .count();
        assert!(unimportant > 50 * slurm / 10, "imbalance not preserved");
    }

    #[test]
    fn messages_are_unique() {
        let corpus = generate_corpus(&small());
        let mut texts: Vec<&str> = corpus.iter().map(|m| m.text.as_str()).collect();
        let n = texts.len();
        texts.sort_unstable();
        texts.dedup();
        assert_eq!(texts.len(), n, "duplicate messages generated");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate_corpus(&small());
        let b = generate_corpus(&small());
        assert_eq!(a, b);
        let c = generate_corpus(&CorpusConfig { seed: 8, ..small() });
        assert_ne!(a, c);
    }

    #[test]
    fn min_per_class_floor() {
        let config = CorpusConfig {
            scale: 0.0001,
            seed: 1,
            min_per_class: 15,
        };
        let corpus = generate_corpus(&config);
        for &c in &Category::ALL {
            let count = corpus.iter().filter(|m| m.category == c).count();
            assert!(count >= 15, "{c} below floor: {count}");
        }
    }

    #[test]
    fn pairs_preserve_labels() {
        let corpus = generate_corpus(&small());
        let pairs = as_pairs(&corpus);
        assert_eq!(pairs.len(), corpus.len());
        assert!(pairs
            .iter()
            .zip(&corpus)
            .all(|((t, c), m)| *t == m.text && *c == m.category));
    }

    #[test]
    fn jsonl_roundtrip() {
        let corpus = generate_corpus(&small());
        let mut buf = Vec::new();
        write_jsonl(&corpus, &mut buf).unwrap();
        let back = read_jsonl(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, corpus);
    }

    #[test]
    fn jsonl_reports_bad_line() {
        let err = read_jsonl(std::io::BufReader::new(&b"{}\nnot json\n"[..])).unwrap_err();
        assert!(err.contains("line 1") || err.contains("line 2"), "{err}");
    }

    #[test]
    fn metadata_is_populated() {
        let corpus = generate_corpus(&small());
        for m in corpus.iter().take(50) {
            assert!(m.node.starts_with("cn"));
            assert!(!m.app.is_empty());
            assert!(!m.family.is_empty());
        }
    }
}
