//! Firmware-drift mutations (Background §3).
//!
//! "As time went on, and systems received new firmware updates … the
//! semantics and syntax of the messages would differ slightly which would
//! produce new buckets in the queue that needed to be classified."
//!
//! [`DriftModel`] rewrites a message the way a firmware rev does: synonym
//! substitutions that *preserve the category vocabulary's meaning* but move
//! the string far in edit distance, plus separator/casing churn and
//! inserted fields. Experiment X1 uses this to quantify the retraining
//! burden: bucket stores fracture under drift while TF-IDF classifiers,
//! whose lemmatized features survive the rewording, degrade far less.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Synonym table: firmware revs swap phrasings like these.
const SYNONYMS: &[(&str, &str)] = &[
    ("above threshold", "exceeds configured limit"),
    ("temperature", "thermal reading"),
    ("throttled", "throttling engaged"),
    ("failure detected", "fault condition observed"),
    ("Connection closed", "Session terminated"),
    ("disconnected", "link dropped"),
    (
        "new high-speed USB device",
        "high-speed USB device attached,",
    ),
    ("not responding", "unreachable"),
    ("error", "err"),
    ("Warning", "WARN"),
    ("memory read error", "read fault in memory subsystem"),
    ("speed increased", "rpm raised"),
    ("started", "launched"),
    // Inflection churn: the same stem in a different part of speech —
    // §4.3.2's motivating case for lemmatization.
    ("closed by", "closing from"),
    ("exceeds", "exceeding"),
    ("increased", "increasing"),
    ("detected", "detecting"),
    ("reports", "reported"),
    ("complete", "completed"),
    ("revoked", "revoking"),
    ("parsed", "parsing"),
];

/// Aggressive vendor-jargon rewrites: a *new hardware generation* whose
/// firmware renames the concepts themselves. These defeat a fixed
/// vocabulary outright (every replacement is out-of-vocabulary for a model
/// trained pre-drift), modeling the paper's "new systems would be added to
/// the test-bed" case rather than a firmware point release.
const VENDOR_JARGON: &[(&str, &str)] = &[
    ("temperature", "tjunction"),
    ("Temperature", "Tjunction"),
    ("throttled", "downclocked"),
    ("throttling", "downclocking"),
    ("threshold", "setpoint"),
    ("preauth", "prehandshake"),
    ("Connection", "Sesslink"),
    ("connection", "sesslink"),
    ("memory", "drampool"),
    ("USB device", "xhci endpoint"),
    ("USB", "XHCI"),
    ("usb", "xhci"),
    ("device", "endpoint"),
    ("sensor", "probe"),
    ("error", "faultevt"),
    ("session", "logonctx"),
    ("Fan", "Blower"),
    ("fan", "blower"),
];

/// Drift options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// Probability each applicable synonym substitution fires.
    pub synonym_rate: f64,
    /// Probability the field separator style changes (": " ↔ " - ").
    pub separator_rate: f64,
    /// Probability a firmware-version suffix is appended.
    pub suffix_rate: f64,
    /// Apply the aggressive vendor-jargon table (a new hardware
    /// generation, not a point release): each entry fires with
    /// `synonym_rate` like the base table.
    pub vendor_jargon: bool,
    /// Seed.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            synonym_rate: 0.8,
            separator_rate: 0.5,
            suffix_rate: 0.3,
            vendor_jargon: false,
            seed: 99,
        }
    }
}

/// A deterministic firmware-drift rewriter.
#[derive(Debug, Clone)]
pub struct DriftModel {
    config: DriftConfig,
    rng: ChaCha8Rng,
}

impl DriftModel {
    /// Build from config.
    pub fn new(config: DriftConfig) -> DriftModel {
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        DriftModel { config, rng }
    }

    /// Apply drift to one message.
    pub fn mutate(&mut self, message: &str) -> String {
        let mut out = message.to_string();
        for (from, to) in SYNONYMS {
            if out.contains(from) && self.rng.gen_bool(self.config.synonym_rate) {
                out = out.replace(from, to);
            }
        }
        if self.config.vendor_jargon {
            for (from, to) in VENDOR_JARGON {
                if out.contains(from) && self.rng.gen_bool(self.config.synonym_rate) {
                    out = out.replace(from, to);
                }
            }
        }
        if self.rng.gen_bool(self.config.separator_rate) {
            out = out.replace(": ", " - ");
        }
        if self.rng.gen_bool(self.config.suffix_rate) {
            let maj = self.rng.gen_range(2..9);
            let min = self.rng.gen_range(0..30);
            out.push_str(&format!(" [fw {maj}.{min}]"));
        }
        out
    }

    /// Apply drift to a whole corpus, returning mutated texts in order.
    pub fn mutate_all<S: AsRef<str>>(&mut self, messages: &[S]) -> Vec<String> {
        messages.iter().map(|m| self.mutate(m.as_ref())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use editdist::levenshtein;

    fn model() -> DriftModel {
        DriftModel::new(DriftConfig::default())
    }

    #[test]
    fn drift_changes_surface_form() {
        let mut m = model();
        let original = "CPU 3 temperature above threshold, cpu clock throttled";
        // With default rates almost every message mutates within a few
        // draws; assert at least one of 10 drafts moved far in edit space.
        let moved = (0..10).any(|_| levenshtein(original, &m.mutate(original)) > 7);
        assert!(moved, "drift never exceeded the bucketing threshold");
    }

    #[test]
    fn drift_preserves_category_keywords() {
        let mut m = model();
        let original = "CPU 3 temperature above threshold, cpu clock throttled";
        for _ in 0..10 {
            let drifted = m.mutate(original).to_lowercase();
            assert!(
                drifted.contains("thermal") || drifted.contains("temperature"),
                "thermal vocabulary lost: {drifted}"
            );
            assert!(drifted.contains("throttl"), "throttle stem lost: {drifted}");
        }
    }

    #[test]
    fn zero_rates_are_identity() {
        let mut m = DriftModel::new(DriftConfig {
            synonym_rate: 0.0,
            separator_rate: 0.0,
            suffix_rate: 0.0,
            vendor_jargon: false,
            seed: 1,
        });
        let msg = "Connection closed by 10.1.2.3 port 22 [preauth]";
        assert_eq!(m.mutate(msg), msg);
    }

    #[test]
    fn vendor_jargon_breaks_vocabulary() {
        let mut m = DriftModel::new(DriftConfig {
            synonym_rate: 1.0,
            separator_rate: 0.0,
            suffix_rate: 0.0,
            vendor_jargon: true,
            seed: 1,
        });
        let drifted = m.mutate("CPU temperature above threshold, cpu clock throttled");
        // The base table composes with the jargon table; either way the
        // category-critical training vocabulary must be gone.
        assert!(!drifted.contains("temperature"), "{drifted}");
        assert!(!drifted.contains("throttled"), "{drifted}");
        assert_ne!(
            drifted,
            "CPU temperature above threshold, cpu clock throttled"
        );
        // A message the base table does not touch gets pure jargon.
        let d2 = m.mutate("usb device sensor error session preauth");
        assert!(d2.contains("xhci") && d2.contains("probe"), "{d2}");
    }

    #[test]
    fn deterministic_sequence_under_seed() {
        let msgs = ["error one", "Warning two", "temperature three"];
        let a = DriftModel::new(DriftConfig::default()).mutate_all(&msgs);
        let b = DriftModel::new(DriftConfig::default()).mutate_all(&msgs);
        assert_eq!(a, b);
    }
}
