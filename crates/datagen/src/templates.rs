//! Per-category message template families across vendor dialects.
//!
//! Each [`Template`] is a format string with `{slot}` placeholders; filling
//! the slots with random-but-plausible values produces the per-instance
//! variation (node ids, temperatures, PIDs…) that real syslog exhibits,
//! while the fixed text carries the category's lexical signature. The fixed
//! vocabulary deliberately covers the paper's Table 1 top tokens so the
//! TF-IDF analysis reproduces.
//!
//! Families within a category use *different phrasings of the same
//! condition* — the heterogeneity that defeats edit-distance bucketing
//! (§4.3.1's two thermal messages are family pairs here).

use hetsyslog_core::Category;
use rand::Rng;

/// One message family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Template {
    /// Stable family id, unique across all categories.
    pub family: &'static str,
    /// Category every instance of this family belongs to.
    pub category: Category,
    /// The syslog APP-NAME this family is emitted under.
    pub app: &'static str,
    /// Format text with `{slot}` placeholders.
    pub text: &'static str,
    /// Relative sampling weight within the category (confusable-noise
    /// families are rarer than routine noise, like in the real stream).
    pub weight: u32,
}

/// All template families.
pub const TEMPLATES: &[Template] = &[
    // ---------------- Thermal Issue (the dominant actionable class) ------
    Template {
        family: "thermal-kernel-throttle",
        category: Category::ThermalIssue,
        app: "kernel",
        text: "CPU{cpu}: Core temperature above threshold, cpu clock throttled (total events = {count})",
        weight: 3,
    },
    Template {
        family: "thermal-kernel-normal",
        category: Category::ThermalIssue,
        app: "kernel",
        text: "CPU{cpu}: Core temperature/speed normal, cpu clock unthrottled after {count} events",
        weight: 3,
    },
    Template {
        family: "thermal-ipmi-assert",
        category: Category::ThermalIssue,
        app: "ipmievd",
        text: "CPU {cpu} Temperature Above Non-Recoverable - Asserted. Current temperature: {temp}C",
        weight: 3,
    },
    Template {
        family: "thermal-ipmi-sensor",
        category: Category::ThermalIssue,
        app: "ipmievd",
        text: "SEL event: sensor Temp_{sensor} reading {temp} degrees exceeds upper critical threshold on socket {socket}",
        weight: 3,
    },
    Template {
        family: "thermal-bmc-warning",
        category: Category::ThermalIssue,
        app: "bmc",
        text: "Warning: Socket {socket} - CPU {cpu} throttling, processor thermal sensor trip point reached",
        weight: 3,
    },
    Template {
        family: "thermal-fan-response",
        category: Category::ThermalIssue,
        app: "ipmievd",
        text: "Fan {fan} speed increased to {pct}% in response to processor temperature sensor {sensor}",
        weight: 3,
    },
    Template {
        family: "thermal-package",
        category: Category::ThermalIssue,
        app: "kernel",
        text: "mce: CPU{cpu}: Package temperature above threshold, cpu clock throttled ({count} additional messages suppressed)",
        weight: 3,
    },
    Template {
        family: "thermal-inlet",
        category: Category::ThermalIssue,
        app: "bmc",
        text: "Chassis inlet temperature sensor {sensor} reports {temp}C, above warning threshold; throttled memory and processor domains",
        weight: 3,
    },
    Template {
        family: "thermal-telemetry-scan",
        category: Category::ThermalIssue,
        app: "telegraf",
        text: "telemetry scan: cpu {cpu} package temperature {temp}C sensor sweep complete",
        weight: 1,
    },
    Template {
        family: "thermal-idrac",
        category: Category::ThermalIssue,
        app: "idrac",
        text: "iDRAC: Temp probe {sensor} detected above upper warning, CPU{cpu} temperature {temp} degrees C",
        weight: 2,
    },
    Template {
        family: "thermal-cooling-restored",
        category: Category::ThermalIssue,
        app: "ipmievd",
        text: "SEL event: processor temperature sensor {sensor} returned below threshold, throttling released after {count}s",
        weight: 2,
    },
    // ---------------- Memory Issue ---------------------------------------
    Template {
        family: "memory-slurm-realmem",
        category: Category::MemoryIssue,
        app: "slurmd",
        text: "error: Node cn{node} has low real_memory size ({size} < {size2}) node configuration unusable",
        weight: 3,
    },
    Template {
        family: "memory-kernel-oom",
        category: Category::MemoryIssue,
        app: "kernel",
        text: "Out of memory: Killed process {pid} ({proc}) total-vm:{size}kB, anon-rss:{size2}kB on node cn{node}",
        weight: 3,
    },
    Template {
        family: "memory-edac-ce",
        category: Category::MemoryIssue,
        app: "kernel",
        text: "EDAC MC{mc}: {count} CE memory read error on DIMM_{dimm} (channel:{chan} slot:{slot} page:0x{hex})",
        weight: 3,
    },
    Template {
        family: "memory-edac-ue",
        category: Category::MemoryIssue,
        app: "kernel",
        text: "EDAC MC{mc}: {count} UE memory error on DIMM_{dimm} low address 0x{hex} node cn{node} size mismatch",
        weight: 3,
    },
    Template {
        family: "memory-alloc-fail",
        category: Category::MemoryIssue,
        app: "kernel",
        text: "page allocation failure on node cn{node}: order:{order}, mode:0x{hex}, size {size}kB low memory condition",
        weight: 3,
    },
    Template {
        family: "memory-hbm",
        category: Category::MemoryIssue,
        app: "kernel",
        text: "hbm: uncorrectable memory error detected bank {chan} size {size} low watermark on node cn{node}",
        weight: 3,
    },
    Template {
        family: "memory-mcelog",
        category: Category::MemoryIssue,
        app: "mcelog",
        text: "Hardware event: corrected memory error count {count} exceeded threshold on DIMM_{dimm}, size {size}kB page offlined",
        weight: 2,
    },
    Template {
        family: "memory-numa-reclaim",
        category: Category::MemoryIssue,
        app: "kernel",
        text: "numa: node cn{node} zone Normal low memory, kswapd reclaim size {size}kB failed order {order}",
        weight: 2,
    },
    // ---------------- SSH-Connection -------------------------------------
    Template {
        family: "ssh-closed-preauth",
        category: Category::SshConnection,
        app: "sshd",
        text: "Connection closed by {ip} port {port} [preauth]",
        weight: 3,
    },
    Template {
        family: "ssh-disconnect-user",
        category: Category::SshConnection,
        app: "sshd",
        text: "Received disconnect from {ip} port {port}:11: disconnected by user {user}",
        weight: 3,
    },
    Template {
        family: "ssh-accepted",
        category: Category::SshConnection,
        app: "sshd",
        text: "Accepted publickey for {user} from {ip} port {port} ssh2: ED25519 SHA256:{hex}",
        weight: 3,
    },
    Template {
        family: "ssh-invalid-user",
        category: Category::SshConnection,
        app: "sshd",
        text: "Invalid user {user} from {ip} port {port} connection closed [preauth]",
        weight: 3,
    },
    Template {
        family: "ssh-pam-session",
        category: Category::SshConnection,
        app: "sshd",
        text: "pam_unix(sshd:session): session closed for user {user} port {port} connection terminated",
        weight: 3,
    },
    Template {
        family: "ssh-timeout",
        category: Category::SshConnection,
        app: "sshd",
        text: "Timeout before authentication for {ip} port {port}, connection closed",
        weight: 2,
    },
    // ---------------- Intrusion Detection --------------------------------
    Template {
        family: "intrusion-root-session",
        category: Category::IntrusionDetection,
        app: "systemd-logind",
        text: "New session {session} of user root started on seat{socket} after boot",
        weight: 3,
    },
    Template {
        family: "intrusion-su-root",
        category: Category::IntrusionDetection,
        app: "su",
        text: "pam_unix(su:session): session opened for user root by {user}(uid={uid})",
        weight: 3,
    },
    Template {
        family: "intrusion-sudo",
        category: Category::IntrusionDetection,
        app: "sudo",
        text: "{user} : TTY=pts/{tty} ; PWD=/home/{user} ; USER=root ; COMMAND=/usr/bin/{proc} session started",
        weight: 3,
    },
    Template {
        family: "intrusion-failed-password",
        category: Category::IntrusionDetection,
        app: "sshd",
        text: "Failed password for root from {ip} port {port} ssh2 repeated {count} times since boot",
        weight: 3,
    },
    Template {
        family: "intrusion-audit-boot",
        category: Category::IntrusionDetection,
        app: "auditd",
        text: "user session audit: login acct=root exe=/usr/sbin/sshd terminal=ssh res=failed session={session} started at boot+{count}s",
        weight: 3,
    },
    Template {
        family: "intrusion-selinux",
        category: Category::IntrusionDetection,
        app: "audit",
        text: "AVC avc: denied execute for pid={pid} comm={proc} scontext=user_u tcontext=root session={session} started audit",
        weight: 2,
    },
    // ---------------- USB-Device ------------------------------------------
    Template {
        family: "usb-new-device",
        category: Category::UsbDevice,
        app: "kernel",
        text: "usb {bus}-{usbport}: new high-speed USB device number {devnum} using xhci_hcd",
        weight: 3,
    },
    Template {
        family: "usb-device-strings",
        category: Category::UsbDevice,
        app: "kernel",
        text: "usb {bus}-{usbport}: New USB device found, idVendor=0x{hex4}, idProduct=0x{hex4}, bcdDevice={version}",
        weight: 3,
    },
    Template {
        family: "usb-disconnect",
        category: Category::UsbDevice,
        app: "kernel",
        text: "usb {bus}-{usbport}: USB disconnect, device number {devnum}",
        weight: 3,
    },
    Template {
        family: "usb-hub-port",
        category: Category::UsbDevice,
        app: "kernel",
        text: "hub {bus}-0:1.0: port {usbport} new device detected, {devnum} ports enabled",
        weight: 3,
    },
    Template {
        family: "usb-enumerate-fail",
        category: Category::UsbDevice,
        app: "kernel",
        text: "usb usb{bus}-port{usbport}: unable to enumerate USB device number {devnum} on hub",
        weight: 3,
    },
    Template {
        family: "usb-overcurrent",
        category: Category::UsbDevice,
        app: "kernel",
        text: "usb {bus}-{usbport}: over-current condition on USB port, device number {devnum} disabled by hub",
        weight: 2,
    },
    // ---------------- Slurm Issues (rare: 46 in the paper) ---------------
    Template {
        family: "slurm-version-mismatch",
        category: Category::SlurmIssue,
        app: "slurmctld",
        text: "error: Node cn{node} appears to have a different version of slurm ({version}), please update node",
        weight: 3,
    },
    Template {
        family: "slurm-not-responding",
        category: Category::SlurmIssue,
        app: "slurmctld",
        text: "error: Nodes cn{node} not responding, slurm update pending please investigate",
        weight: 3,
    },
    Template {
        family: "slurm-credential",
        category: Category::SlurmIssue,
        app: "slurmd",
        text: "error: slurm credential for job {jobid} revoked, node cn{node} version {version} requires update please resubmit",
        weight: 3,
    },
    // ---------------- Hardware Issue --------------------------------------
    Template {
        family: "hardware-clock-sync",
        category: Category::HardwareIssue,
        app: "chronyd",
        text: "System clock wrong by {float} seconds, sync to timestamp event lost on cn{node}",
        weight: 3,
    },
    Template {
        family: "hardware-ntp-timestamp",
        category: Category::HardwareIssue,
        app: "ntpd",
        text: "timestamp sync event: clock drift {float} ppm exceeds system limit, event id {count}",
        weight: 3,
    },
    Template {
        family: "hardware-psu",
        category: Category::HardwareIssue,
        app: "ipmievd",
        text: "SEL event: Power Supply {psu} failure detected, system event log timestamp 0x{hex} asserted",
        weight: 3,
    },
    Template {
        family: "hardware-pcie",
        category: Category::HardwareIssue,
        app: "kernel",
        text: "pcieport 0000:{busaddr}: AER: Corrected error received, system event id={count} clock lane margin",
        weight: 3,
    },
    Template {
        family: "hardware-watchdog",
        category: Category::HardwareIssue,
        app: "kernel",
        text: "watchdog: BUG: soft lockup - CPU#{cpu} stuck for {count}s! system clock event timestamp skew detected",
        weight: 3,
    },
    Template {
        family: "hardware-nvme",
        category: Category::HardwareIssue,
        app: "kernel",
        text: "nvme nvme{mc}: controller reset, system event timestamp {count} clock recovery after sync loss",
        weight: 3,
    },
    Template {
        family: "hardware-ib-link",
        category: Category::HardwareIssue,
        app: "kernel",
        text: "ib0: link speed renegotiated, system event timestamp drift {float}us, clock sync retry {count}",
        weight: 2,
    },
    Template {
        family: "hardware-raid-battery",
        category: Category::HardwareIssue,
        app: "megaraid",
        text: "Controller battery learn cycle event: system timestamp 0x{hex}, clock retention test {count}s, sync pending",
        weight: 2,
    },
    // ---------------- Unimportant (the majority noise class) --------------
    Template {
        family: "noise-slurm-registration",
        category: Category::Unimportant,
        app: "slurmd",
        text: "slurm_rpc_node_registration complete for cn{node} usec={count}",
        weight: 3,
    },
    Template {
        family: "noise-lpi-hbm",
        category: Category::Unimportant,
        app: "lpi_daemon",
        text: "lpi_hbm_nn status poll error code 0 job_argument={jobid} retry not required",
        weight: 3,
    },
    Template {
        family: "noise-job-argument",
        category: Category::Unimportant,
        app: "slurmstepd",
        text: "task {count}: job_argument list parsed, {count2} entries, no error, elapsed {float}ms",
        weight: 3,
    },
    Template {
        family: "noise-systemd-session",
        category: Category::Unimportant,
        app: "systemd",
        text: "Started Session {session} of user {user}.",
        weight: 3,
    },
    Template {
        family: "noise-cron",
        category: Category::Unimportant,
        app: "CROND",
        text: "({user}) CMD (/usr/lib64/sa/sa1 {count} {count2}) exit status 0 no error",
        weight: 3,
    },
    Template {
        family: "noise-dhcp",
        category: Category::Unimportant,
        app: "dhclient",
        text: "DHCPREQUEST on eth{mc} to {ip} port 67 (xid=0x{hex}) renewal, no error",
        weight: 3,
    },
    Template {
        family: "noise-beegfs",
        category: Category::Unimportant,
        app: "beegfs-client",
        text: "info: connection heartbeat to storage target {count} ok rtt {float}ms error count 0",
        weight: 3,
    },
    Template {
        family: "noise-ib-counter",
        category: Category::Unimportant,
        app: "opensm",
        text: "polling port counters lid {count} port {usbport} ok, error counters clear, job_argument cache refreshed",
        weight: 3,
    },
    // Confusable noise: §5.1 attributes the Unimportant confusion to
    // "messages that use significant words from other categories, but that
    // aren't actually an interesting issue". These families exist to
    // reproduce exactly that effect in Figure 2.
    Template {
        family: "noise-thermal-nominal",
        category: Category::Unimportant,
        app: "ipmievd",
        text: "sensor Temp_{sensor} cpu {cpu} temperature reading {lowtemp}C nominal, below threshold, no throttle",
        weight: 1,
    },
    Template {
        family: "noise-usb-poll",
        category: Category::Unimportant,
        app: "kernel",
        text: "usb hub {bus}-0 status poll complete, no new device on port {usbport}",
        weight: 1,
    },
    Template {
        family: "noise-mem-scrub",
        category: Category::Unimportant,
        app: "kernel",
        text: "memory scrub pass complete size {size}kB node cn{node} no error low priority",
        weight: 1,
    },
    Template {
        family: "noise-ssh-debug",
        category: Category::Unimportant,
        app: "sshd",
        text: "debug1: connection from {ip} port {port} user {user} env check passed",
        weight: 1,
    },
    // The Thermal twin of this family lives in the Thermal section: the
    // phrasing is identical and only the numeric reading separates a
    // thermal event from routine telemetry. Unseen readings at test time
    // are where even linear models confuse Thermal vs Unimportant (the
    // Figure 2 hotspot the paper describes).
    Template {
        family: "noise-telemetry-scan",
        category: Category::Unimportant,
        app: "telegraf",
        text: "telemetry scan: cpu {cpu} package temperature {lowtemp}C sensor sweep complete",
        weight: 1,
    },
];

/// The usernames the generators draw from.
pub const USERS: &[&str] = &[
    "aquan", "leahh", "hng", "drich", "wmason", "build", "ops", "jsmith", "mlopez", "kchen",
    "testbed", "deploy", "svc_mon", "rvega", "tkim",
];

/// Process names for OOM-style messages.
pub const PROCS: &[&str] = &[
    "python3",
    "lammps",
    "gromacs_mpi",
    "orted",
    "charm_run",
    "tensorflow",
    "fio",
    "stress-ng",
    "namd2",
    "paraview",
];

/// IPMI-ish sensor names.
pub const SENSORS: &[&str] = &["01", "02", "CPU", "VRM", "MB", "DIMM", "PCH", "EXH"];

/// Fill one template's slots with values drawn from `rng`.
pub fn fill<R: Rng + ?Sized>(template: &Template, rng: &mut R) -> String {
    let text = template.text;
    let mut out = String::with_capacity(text.len() + 16);
    let mut rest = text;
    while let Some(open) = rest.find('{') {
        out.push_str(&rest[..open]);
        let after = &rest[open + 1..];
        let close = after.find('}').expect("unterminated slot in template");
        let name = &after[..close];
        fill_slot(name, rng, &mut out);
        rest = &after[close + 1..];
    }
    out.push_str(rest);
    out
}

fn fill_slot<R: Rng + ?Sized>(name: &str, rng: &mut R, out: &mut String) {
    use std::fmt::Write;
    match name {
        "cpu" => write!(out, "{}", rng.gen_range(0..256)),
        "socket" => write!(out, "{}", rng.gen_range(0..8)),
        "temp" => write!(out, "{}", rng.gen_range(62..108)),
        "lowtemp" => write!(out, "{}", rng.gen_range(30..72)),
        "count" => write!(out, "{}", rng.gen_range(1..100_000)),
        "count2" => write!(out, "{}", rng.gen_range(1..10_000)),
        "node" => write!(out, "{:04}", rng.gen_range(1..420)),
        "port" => write!(out, "{}", rng.gen_range(1024..65_536)),
        "user" => write!(out, "{}", USERS[rng.gen_range(0..USERS.len())]),
        "proc" => write!(out, "{}", PROCS[rng.gen_range(0..PROCS.len())]),
        "sensor" => write!(out, "{}", SENSORS[rng.gen_range(0..SENSORS.len())]),
        "pid" => write!(out, "{}", rng.gen_range(100..100_000)),
        "uid" => write!(out, "{}", rng.gen_range(1000..60_000)),
        "tty" => write!(out, "{}", rng.gen_range(0..32)),
        "hex" => write!(out, "{:08x}", rng.gen::<u32>()),
        "hex4" => write!(out, "{:04x}", rng.gen::<u16>()),
        "size" => write!(out, "{}", rng.gen_range(1_000..64_000_000)),
        "size2" => write!(out, "{}", rng.gen_range(64_000_000..256_000_000u64)),
        "pct" => write!(out, "{}", rng.gen_range(10..101)),
        "fan" => write!(out, "{}", rng.gen_range(0..12)),
        "bus" => write!(out, "{}", rng.gen_range(1..5)),
        "usbport" => write!(out, "{}", rng.gen_range(1..15)),
        "devnum" => write!(out, "{}", rng.gen_range(2..128)),
        "jobid" => write!(out, "{}", rng.gen_range(10_000..10_000_000)),
        "session" => write!(out, "{}", rng.gen_range(1..100_000)),
        "version" => write!(
            out,
            "{}.{:02}.{}",
            rng.gen_range(17..24),
            rng.gen_range(0..12),
            rng.gen_range(0..10)
        ),
        "float" => write!(out, "{:.3}", rng.gen_range(0.0..500.0f64)),
        "order" => write!(out, "{}", rng.gen_range(0..11)),
        "mc" => write!(out, "{}", rng.gen_range(0..8)),
        "chan" => write!(out, "{}", rng.gen_range(0..8)),
        "slot" => write!(out, "{}", rng.gen_range(0..4)),
        "dimm" => write!(
            out,
            "{}{}",
            (b'A' + rng.gen_range(0..8u8)) as char,
            rng.gen_range(0..8)
        ),
        "psu" => write!(out, "{}", rng.gen_range(1..5)),
        "ip" => write!(
            out,
            "{}.{}.{}.{}",
            10,
            rng.gen_range(0..256),
            rng.gen_range(0..256),
            rng.gen_range(1..255)
        ),
        "busaddr" => write!(
            out,
            "{:02x}:{:02x}.{}",
            rng.gen_range(0..256),
            rng.gen_range(0..32),
            rng.gen_range(0..8)
        ),
        other => panic!("unknown template slot {{{other}}}"),
    }
    .expect("writing to String cannot fail");
}

/// The templates belonging to one category.
pub fn templates_for(category: Category) -> Vec<&'static Template> {
    TEMPLATES
        .iter()
        .filter(|t| t.category == category)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn every_category_has_families() {
        for &c in &Category::ALL {
            let n = templates_for(c).len();
            assert!(n >= 2, "{c} has only {n} template families");
        }
    }

    #[test]
    fn family_ids_unique() {
        let mut ids: Vec<_> = TEMPLATES.iter().map(|t| t.family).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), TEMPLATES.len());
    }

    #[test]
    fn all_templates_fill_without_panic() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for t in TEMPLATES {
            let m = fill(t, &mut rng);
            assert!(!m.contains('{'), "unfilled slot in {}: {m}", t.family);
            assert!(!m.contains('}'), "stray brace in {}: {m}", t.family);
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn filling_is_deterministic_per_seed() {
        let t = &TEMPLATES[0];
        let a = fill(t, &mut ChaCha8Rng::seed_from_u64(7));
        let b = fill(t, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn table1_signature_tokens_present() {
        // The fixed text of each category's families must carry the
        // paper's Table 1 signature vocabulary.
        let has = |c: Category, needle: &str| {
            templates_for(c)
                .iter()
                .any(|t| t.text.to_lowercase().contains(needle))
        };
        assert!(has(Category::ThermalIssue, "throttled"));
        assert!(has(Category::ThermalIssue, "temperature"));
        assert!(has(Category::SshConnection, "preauth"));
        assert!(has(Category::SshConnection, "closed"));
        assert!(has(Category::MemoryIssue, "real_memory"));
        assert!(has(Category::SlurmIssue, "please"));
        assert!(has(Category::UsbDevice, "usb"));
        assert!(has(Category::IntrusionDetection, "root"));
        assert!(has(Category::IntrusionDetection, "session"));
        assert!(has(Category::HardwareIssue, "timestamp"));
        assert!(has(Category::HardwareIssue, "sync"));
        assert!(has(Category::Unimportant, "lpi_hbm_nn"));
        assert!(has(Category::Unimportant, "slurm_rpc_node_registration"));
        assert!(has(Category::Unimportant, "job_argument"));
    }
}
