//! Synthetic heterogeneous syslog corpus, modeled on the Darwin test-bed
//! dataset of §4.4 (Table 2).
//!
//! The paper's corpus is 196 393 unique messages collected over a year from
//! a heterogeneous test-bed and labeled with eight categories via
//! Levenshtein bucketing (3 415 hand-labeled exemplars). That data is
//! LANL-internal, so this crate generates the closest synthetic equivalent:
//!
//! * [`templates`] — per-category message *families* in several vendor
//!   dialects, whose fixed vocabulary matches the Table 1 signature tokens
//!   (`throttled`, `preauth`, `real_memory`, `lpi_hbm_nn`, …);
//! * [`corpus`] — a generator that reproduces the Table 2 class imbalance
//!   at any scale, guaranteeing message uniqueness like the paper's
//!   deduplicated dataset;
//! * [`drift`] — the firmware-drift mutation model that recreates the
//!   Background §3 failure mode (new firmware ⇒ reworded messages ⇒ stale
//!   buckets);
//! * [`stream`] — a timestamped arrival process (Poisson base load plus
//!   correlated bursts) for the real-time pipeline experiments.

pub mod corpus;
pub mod drift;
pub mod stream;
pub mod templates;

pub use corpus::{generate_corpus, CorpusConfig, LabeledMessage};
pub use drift::{DriftConfig, DriftModel};
pub use stream::{StreamConfig, StreamGenerator, TimedMessage};
