//! LLM-simulator microbenches: prompt construction, one generation step,
//! zero-shot scoring. These measure *simulator* CPU cost (the modeled GPU
//! seconds are accounted separately on the virtual clock).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datagen::{generate_corpus, CorpusConfig};
use hetsyslog_core::Category;
use llmsim::{GenerativeLlm, ModelPreset, PromptBuilder, ZeroShotModel};

fn corpus() -> Vec<(String, Category)> {
    datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.005,
        seed: 42,
        min_per_class: 12,
    }))
}

fn bench_prompt_build(c: &mut Criterion) {
    let builder = PromptBuilder::new().with_top_words(vec![
        vec![
            "timestamp".into(),
            "sync".into(),
            "clock".into()
        ];
        Category::ALL.len()
    ]);
    let mut g = c.benchmark_group("llm_prompt");
    g.throughput(Throughput::Elements(1));
    g.bench_function("build", |b| {
        b.iter(|| builder.build("Warning: Socket 2 - CPU 23 throttling at 95C"))
    });
    g.bench_function("token_count", |b| {
        b.iter(|| builder.token_count("Warning: Socket 2 - CPU 23 throttling at 95C"))
    });
    g.finish();
}

fn bench_generation(c: &mut Criterion) {
    let corpus = corpus();
    let prompt = PromptBuilder::new().build("CPU 3 temperature above threshold");
    let mut g = c.benchmark_group("llm_generate");
    g.throughput(Throughput::Elements(1));
    for preset in [ModelPreset::falcon_7b(), ModelPreset::falcon_40b()] {
        let mut llm = GenerativeLlm::new(preset, &corpus, 1);
        let id = preset.name.to_lowercase().replace('-', "_");
        g.bench_function(id, |b| {
            b.iter(|| llm.generate(&prompt, "CPU 3 temperature above threshold", Some(24)))
        });
    }
    g.finish();
}

fn bench_zero_shot(c: &mut Criterion) {
    let corpus = corpus();
    let model = ZeroShotModel::new(&corpus);
    let mut g = c.benchmark_group("llm_zero_shot");
    g.throughput(Throughput::Elements(1));
    g.bench_function("score_8_labels", |b| {
        b.iter(|| model.classify("CPU 3 temperature above threshold clock throttled"))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_prompt_build,
    bench_generation,
    bench_zero_shot
);
criterion_main!(benches);
