//! Ingest-path microbenches: frame parsing, store insertion, indexed
//! queries, and the multi-threaded pipeline end to end.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use datagen::{StreamConfig, StreamGenerator};
use logpipeline::{IngestPipeline, LogRecord, LogStore, Query};
use std::sync::Arc;

fn frames(n: usize) -> Vec<String> {
    StreamGenerator::new(StreamConfig {
        seed: 42,
        ..StreamConfig::default()
    })
    .take(n)
    .map(|t| t.to_frame())
    .collect()
}

fn bench_parse(c: &mut Criterion) {
    let fs = frames(1000);
    let mut g = c.benchmark_group("syslog_parse");
    g.throughput(Throughput::Elements(fs.len() as u64));
    g.bench_function("rfc3164_1k_frames", |b| {
        b.iter(|| fs.iter().filter(|f| syslog_model::parse(f).is_ok()).count())
    });
    g.finish();
}

fn bench_store_insert(c: &mut Criterion) {
    let fs = frames(1000);
    let records: Vec<LogRecord> = fs
        .iter()
        .enumerate()
        .map(|(i, f)| LogRecord::from_message(i as u64, &syslog_model::parse(f).unwrap(), 0))
        .collect();
    let mut g = c.benchmark_group("log_store");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("insert_1k", |b| {
        b.iter_batched(
            LogStore::new,
            |store| {
                for r in &records {
                    store.insert(r.clone());
                }
                store.len()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let store = Arc::new(LogStore::with_shard_seconds(600));
    let pipeline = IngestPipeline::new(store.clone(), 4);
    pipeline.run(frames(20_000));
    let mut g = c.benchmark_group("query");
    g.bench_function("term_20k_docs", |b| {
        b.iter(|| {
            Query::range(0, i64::MAX / 2)
                .term("throttled")
                .count(&store)
        })
    });
    g.bench_function("two_terms_20k_docs", |b| {
        b.iter(|| {
            Query::range(0, i64::MAX / 2)
                .term("temperature")
                .term("threshold")
                .count(&store)
        })
    });
    g.finish();
}

fn bench_pipeline_end_to_end(c: &mut Criterion) {
    let fs = frames(10_000);
    let mut g = c.benchmark_group("ingest_pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(fs.len() as u64));
    g.bench_function("parse_index_10k_frames_4_workers", |b| {
        b.iter_batched(
            || fs.clone(),
            |fs| {
                let store = Arc::new(LogStore::with_shard_seconds(600));
                IngestPipeline::new(store, 4).run(fs).ingested
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_store_insert,
    bench_query,
    bench_pipeline_end_to_end
);
criterion_main!(benches);
