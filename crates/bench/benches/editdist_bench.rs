//! Microbenches for the edit-distance substrate: full vs banded
//! Levenshtein (the DESIGN.md ablation) and bucket-store lookup cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datagen::{generate_corpus, CorpusConfig};
use editdist::bucketing::{BucketStore, BucketingConfig};
use editdist::{damerau_levenshtein, levenshtein, levenshtein_bounded};

const A: &str = "CPU temperature above threshold, cpu clock throttled.";
const B: &str = "CPU 1 Temperature Above Non-Recoverable - Asserted. Current temperature: 95C";

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("edit_distance");
    g.bench_function("levenshtein_full", |b| b.iter(|| levenshtein(A, B)));
    g.bench_function("levenshtein_bounded_hit", |b| {
        // Distance within bound: full band work.
        b.iter(|| levenshtein_bounded(A, &format!("{A}!"), 7))
    });
    g.bench_function("levenshtein_bounded_miss", |b| {
        // Early exit: the hot path of bucket lookup misses.
        b.iter(|| levenshtein_bounded(A, B, 7))
    });
    g.bench_function("damerau", |b| b.iter(|| damerau_levenshtein(A, B)));
    g.finish();
}

fn bench_bucket_lookup(c: &mut Criterion) {
    let corpus = generate_corpus(&CorpusConfig {
        scale: 0.01,
        seed: 42,
        min_per_class: 12,
    });
    let mut store = BucketStore::new(BucketingConfig::default());
    for m in corpus.iter().take(2000) {
        store.assign(&m.text);
    }
    let probe_hit = &corpus[17].text;
    let probe_miss = "an entirely novel firmware message shape never seen before xyzzy";
    let mut g = c.benchmark_group("bucket_store");
    g.throughput(Throughput::Elements(1));
    g.bench_function(format!("find_hit_{}_buckets", store.len()), |b| {
        b.iter(|| store.find(probe_hit))
    });
    g.bench_function(format!("find_miss_{}_buckets", store.len()), |b| {
        b.iter(|| store.find(probe_miss))
    });
    g.finish();
}

fn bench_bucket_build(c: &mut Criterion) {
    let corpus = generate_corpus(&CorpusConfig {
        scale: 0.002,
        seed: 42,
        min_per_class: 8,
    });
    let texts: Vec<&str> = corpus.iter().map(|m| m.text.as_str()).collect();
    let mut g = c.benchmark_group("bucket_store");
    g.throughput(Throughput::Elements(texts.len() as u64));
    g.bench_function(format!("assign_{}_messages", texts.len()), |b| {
        b.iter(|| {
            let mut store = BucketStore::new(BucketingConfig::default());
            for t in &texts {
                store.assign(t);
            }
            store.len()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_metrics,
    bench_bucket_lookup,
    bench_bucket_build
);
criterion_main!(benches);
