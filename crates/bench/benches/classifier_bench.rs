//! Per-classifier single-message prediction latency — the number that
//! decides whether a technique survives Darwin's >1M messages/hour.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datagen::{generate_corpus, CorpusConfig};
use hetsyslog_core::eval::{prepare_split, EvalConfig};
use hetsyslog_ml::paper_suite;

fn bench_predict_latency(c: &mut Criterion) {
    let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.01,
        seed: 42,
        min_per_class: 12,
    }));
    let split = prepare_split(&corpus, &EvalConfig::default());
    let probe = split.test.features[0].clone();

    let mut g = c.benchmark_group("predict_one");
    g.throughput(Throughput::Elements(1));
    for mut model in paper_suite(42) {
        model.fit(&split.train);
        let name = model.name().replace(' ', "_").to_lowercase();
        g.bench_function(name, |b| b.iter(|| model.predict(&probe)));
    }
    g.finish();
}

fn bench_train_cheap_models(c: &mut Criterion) {
    // Training microbench restricted to the sub-second models; the full
    // Figure 3 timing lives in the fig3_traditional binary.
    let corpus = datagen::corpus::as_pairs(&generate_corpus(&CorpusConfig {
        scale: 0.005,
        seed: 42,
        min_per_class: 12,
    }));
    let split = prepare_split(&corpus, &EvalConfig::default());
    let mut g = c.benchmark_group("fit");
    g.sample_size(10);
    for name in [
        "kNN",
        "Nearest Centroid",
        "Complement Naive Bayes",
        "Log-loss SGD",
    ] {
        let mut model = paper_suite(42)
            .into_iter()
            .find(|m| m.name() == name)
            .expect("model in suite");
        let id = name.replace(' ', "_").to_lowercase();
        g.bench_function(id, |b| b.iter(|| model.fit(&split.train)));
    }
    g.finish();
}

criterion_group!(benches, bench_predict_latency, bench_train_cheap_models);
criterion_main!(benches);
