//! Microbenches for the NLP substrate: tokenization, lemmatization, and
//! TF-IDF fitting/transforming on realistic syslog text.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use datagen::{generate_corpus, CorpusConfig};
use hetsyslog_core::{FeatureConfig, FeaturePipeline};
use textproc::{preprocess, tokenize, HashingVectorizer, Lemmatizer, TfidfConfig, TfidfVectorizer};

fn messages(n: usize) -> Vec<String> {
    generate_corpus(&CorpusConfig {
        scale: 0.01,
        seed: 42,
        min_per_class: 12,
    })
    .into_iter()
    .take(n)
    .map(|m| m.text)
    .collect()
}

fn bench_tokenize(c: &mut Criterion) {
    let msgs = messages(1000);
    let total_bytes: usize = msgs.iter().map(String::len).sum();
    let mut g = c.benchmark_group("tokenize");
    g.throughput(Throughput::Bytes(total_bytes as u64));
    g.bench_function("1k_messages", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for m in &msgs {
                count += tokenize(m).len();
            }
            count
        })
    });
    g.finish();
}

fn bench_lemmatize(c: &mut Criterion) {
    let msgs = messages(1000);
    let lem = Lemmatizer::new();
    let tokens: Vec<Vec<String>> = msgs.iter().map(|m| tokenize(m)).collect();
    let n_tokens: usize = tokens.iter().map(Vec::len).sum();
    let mut g = c.benchmark_group("lemmatize");
    g.throughput(Throughput::Elements(n_tokens as u64));
    g.bench_function("1k_messages", |b| {
        b.iter(|| {
            let mut out = 0usize;
            for doc in &tokens {
                out += lem.lemmatize_all(doc).len();
            }
            out
        })
    });
    g.finish();
}

fn bench_preprocess_full(c: &mut Criterion) {
    let msgs = messages(1000);
    let mut g = c.benchmark_group("preprocess_full");
    g.throughput(Throughput::Elements(msgs.len() as u64));
    g.bench_function("tokenize_stopword_lemma", |b| {
        b.iter(|| msgs.iter().map(|m| preprocess(m).len()).sum::<usize>())
    });
    g.finish();
}

fn bench_tfidf(c: &mut Criterion) {
    let msgs = messages(2000);
    let docs: Vec<Vec<String>> = msgs.iter().map(|m| preprocess(m)).collect();
    let mut g = c.benchmark_group("tfidf");
    g.throughput(Throughput::Elements(docs.len() as u64));
    g.bench_function("fit_2k_docs", |b| {
        b.iter_batched(
            || TfidfVectorizer::new(TfidfConfig::default()),
            |mut v| {
                v.fit(&docs);
                v.n_features()
            },
            BatchSize::SmallInput,
        )
    });
    let mut fitted = TfidfVectorizer::new(TfidfConfig::default());
    fitted.fit(&docs);
    g.bench_function("transform_one", |b| b.iter(|| fitted.transform(&docs[7])));
    g.finish();
}

fn bench_feature_pipeline(c: &mut Criterion) {
    let msgs = messages(1000);
    let refs: Vec<&str> = msgs.iter().map(String::as_str).collect();
    let mut pipeline = FeaturePipeline::new(FeatureConfig::default());
    pipeline.fit(&refs);
    let mut g = c.benchmark_group("feature_pipeline");
    g.throughput(Throughput::Elements(1));
    g.bench_function("end_to_end_transform_one", |b| {
        b.iter(|| pipeline.transform("CPU 3 temperature above threshold cpu clock throttled"))
    });
    g.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let msgs = messages(1000);
    let docs: Vec<Vec<String>> = msgs.iter().map(|m| preprocess(m)).collect();
    let v = HashingVectorizer::default();
    let mut g = c.benchmark_group("hashing_vectorizer");
    g.throughput(Throughput::Elements(1));
    g.bench_function("transform_one", |b| b.iter(|| v.transform(&docs[7])));
    g.finish();
}

criterion_group!(
    benches,
    bench_tokenize,
    bench_lemmatize,
    bench_preprocess_full,
    bench_tfidf,
    bench_feature_pipeline,
    bench_hashing
);
criterion_main!(benches);
