//! The columnar-store compression gate (release-only, run explicitly in
//! CI): sealing the datagen stream into template-mined columnar segments
//! must compress at least 5x against the hot tier's at-rest JSONL bytes,
//! losslessly, and the header-served template count must beat a raw
//! decoding scan.
//!
//! Run: `cargo test -p bench --release --test columnar_gate -- --ignored`
//!
//! The sweep JSON is also written to `target/columnar_sweep.json` so CI
//! can upload it as an artifact.

use bench::{experiments, write_json, ExpArgs};

#[test]
#[ignore = "release-mode compression sweep: run explicitly in CI"]
fn columnar_store_compresses_at_least_5x_and_speeds_up_template_counts() {
    let args = ExpArgs {
        scale: 0.02,
        seed: 42,
        ..ExpArgs::default()
    };
    let sweep = experiments::columnar_store(&args);
    // Workspace-root target dir (the test's cwd is the crate dir).
    write_json(
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/columnar_sweep.json"
        ),
        &sweep,
    );
    let field = |key: &str| {
        sweep
            .get(key)
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(0.0)
    };
    let ratio = field("compression_ratio");
    let speedup = field("query_speedup");
    assert!(
        field("n_messages") > 0.0 && field("encoded_bytes") > 0.0,
        "sweep must complete: {sweep:?}"
    );
    assert!(
        ratio >= 5.0,
        "columnar compression below the 5x floor: {:.0} raw JSONL bytes vs {:.0} encoded (ratio {ratio:.2})",
        field("raw_jsonl_bytes"),
        field("encoded_bytes"),
    );
    assert!(
        speedup > 1.0,
        "count_by_template must beat the raw decoding scan: {:.0}us vs {:.0}us (speedup {speedup:.2})",
        field("count_by_template_us"),
        field("full_scan_us"),
    );
}
