//! The telemetry overhead gate (release-only, run explicitly in CI):
//! the fully instrumented live listener path — registry-backed counters
//! and histograms at every stage, batch spans, scrape endpoint up — must
//! sustain at least 95% of the uninstrumented throughput at the
//! `max_batch = 64` setting of the live_batching sweep.
//!
//! Run: `cargo test -p bench --release --test overhead_gate -- --ignored`

use bench::{experiments, ExpArgs};

#[test]
#[ignore = "timing assertion: run in release mode on an idle machine"]
fn instrumented_ingest_keeps_95_percent_of_uninstrumented_throughput() {
    let args = ExpArgs {
        scale: 0.02,
        seed: 42,
        ..ExpArgs::default()
    };
    let overhead = experiments::observability_overhead(&args);
    let field = |key: &str| {
        overhead
            .get(key)
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(0.0)
    };
    let detached = field("uninstrumented_msgs_per_sec");
    let instrumented = field("instrumented_msgs_per_sec");
    let ratio = field("ratio");
    assert!(
        detached > 0.0 && instrumented > 0.0,
        "both arms must complete: {overhead:?}"
    );
    assert!(
        ratio >= 0.95,
        "telemetry overhead above the 5% budget: {instrumented:.0} msg/s instrumented \
         vs {detached:.0} msg/s uninstrumented (ratio {ratio:.3})"
    );
}
