//! Every DESIGN.md §3 experiment as a library function.
//!
//! Each function takes the shared [`ExpArgs`] (scale / seed), runs the full
//! experiment, and returns an [`ExperimentOutput`]: the machine-readable
//! JSON value (what `--json` used to emit) plus the human-readable report
//! (what the binary used to print). The per-experiment binaries in
//! `src/bin/` and the `repro` conformance runner both route through these,
//! so a golden checked by `repro --check` is byte-for-byte what the binary
//! writes.

use crate::{fmt_seconds, render_table, ExpArgs};
use datagen::corpus::target_count;
use datagen::{DriftConfig, DriftModel, StreamConfig, StreamGenerator};
use hetsyslog_core::eval::{evaluate_model, evaluate_suite, prepare_split, EvalConfig};
use hetsyslog_core::{
    BucketBaseline, Category, FeatureConfig, FeaturePipeline, MonitorService, NoiseFilter,
    TextClassifier, TraditionalPipeline,
};
use hetsyslog_ml::{
    paper_suite, BatchClassifier, Classifier, ComplementNaiveBayes, ComplementNbConfig, Dataset,
    LinearSvc, LinearSvcConfig, LogisticRegression, LogisticRegressionConfig, NearestCentroid,
    RandomForest, RandomForestConfig, RidgeClassifier, RidgeConfig, SgdClassifier, SgdConfig,
};
use llmsim::{GenerativeLlmClassifier, ModelPreset, PromptBuilder, ZeroShotLlmClassifier};
use logpipeline::{
    ClassifyingIngest, Frontend, ListenerConfig, LogStore, OverloadPolicy, SyslogListener,
};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::Value;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};
use textproc::{HashingVectorizer, SparseVec, TfidfConfig};

/// One experiment's results: the JSON value the conformance goldens pin,
/// and the human-readable console report.
pub struct ExperimentOutput {
    /// Machine-readable result (serialized canonically by `write_json`).
    pub value: Value,
    /// The report the experiment binary prints.
    pub report: String,
}

// ---------------------------------------------------------------- Table 1

/// Table 1 — top TF-IDF tokens per category.
pub fn table1(args: &ExpArgs) -> ExperimentOutput {
    let corpus = args.corpus();
    let mut r = String::new();
    let _ = writeln!(
        r,
        "Table 1 reproduction: top TF-IDF tokens per category ({} messages, scale {})\n",
        corpus.len(),
        args.scale
    );

    let mut pipeline = FeaturePipeline::new(FeatureConfig::default());
    let messages: Vec<&str> = corpus.iter().map(|(m, _)| m.as_str()).collect();
    pipeline.fit(&messages);
    let table1 = pipeline.table1(&corpus, 5);

    let rows: Vec<Vec<String>> = table1
        .iter()
        .map(|ct| {
            vec![
                ct.category.clone(),
                ct.tokens
                    .iter()
                    .map(|(t, _)| t.as_str())
                    .collect::<Vec<_>>()
                    .join(", "),
            ]
        })
        .collect();
    let _ = writeln!(r, "{}", render_table(&["Category", "Top Tokens"], &rows));

    let _ = writeln!(r, "Paper's Table 1 for comparison:");
    let _ = writeln!(
        r,
        "  Thermal Issue : processor, throttled, sensor, cpu, temperature"
    );
    let _ = writeln!(
        r,
        "  SSH Connection: closed, preauth, connection, port, user"
    );
    let _ = writeln!(r, "  USB Device    : usb, device, hub, number, new");
    let _ = writeln!(
        r,
        "  (the shape to check: category-discriminative vocabulary, not shared words)"
    );

    let value = serde_json::json!({
        "experiment": "table1",
        "scale": args.scale,
        "seed": args.seed,
        "n_messages": corpus.len(),
        "vocab_signature": format!("{:016x}", pipeline.vocab_signature()),
        "categories": table1.iter().map(|ct| {
            serde_json::json!({
                "category": ct.category,
                "tokens": ct.tokens.iter().map(|(t, s)| serde_json::json!({"token": t, "score": s})).collect::<Vec<_>>(),
            })
        }).collect::<Vec<_>>(),
    });
    ExperimentOutput { value, report: r }
}

// ---------------------------------------------------------------- Table 2

/// Table 2 — dataset composition and bucket-exemplar economy.
pub fn table2(args: &ExpArgs) -> ExperimentOutput {
    let corpus = args.corpus();
    let mut r = String::new();
    let _ = writeln!(
        r,
        "Table 2 reproduction: dataset composition (scale {}, {} unique messages)\n",
        args.scale,
        corpus.len()
    );

    let config = args.corpus_config();
    let rows: Vec<Vec<String>> = Category::ALL
        .iter()
        .map(|&c| {
            let count = corpus.iter().filter(|(_, cat)| *cat == c).count();
            vec![
                c.label().to_string(),
                count.to_string(),
                c.paper_count().to_string(),
                format!("{}", target_count(c, &config)),
            ]
        })
        .collect();
    let _ = writeln!(
        r,
        "{}",
        render_table(&["Category", "Ours", "Paper (scale 1.0)", "Target"], &rows)
    );

    let baseline = BucketBaseline::train(7, &corpus);
    let ratio = corpus.len() as f64 / baseline.n_buckets() as f64;
    let _ = writeln!(
        r,
        "Bucket economy at threshold 7: {} buckets cover {} messages ({ratio:.1} messages/exemplar).",
        baseline.n_buckets(),
        corpus.len(),
    );
    let _ = writeln!(
        r,
        "Paper: 3 415 exemplars for ~196k messages (57.5 messages/exemplar)."
    );

    let value = serde_json::json!({
        "experiment": "table2",
        "scale": args.scale,
        "seed": args.seed,
        "total": corpus.len(),
        "counts": Category::ALL.iter().map(|&c| serde_json::json!({
            "category": c.label(),
            "ours": corpus.iter().filter(|(_, cat)| *cat == c).count(),
            "paper": c.paper_count(),
        })).collect::<Vec<_>>(),
        "buckets": baseline.n_buckets(),
        "messages_per_exemplar": ratio,
    });
    ExperimentOutput { value, report: r }
}

// ---------------------------------------------------------------- Figure 2

/// Figure 2 — the Linear SVC confusion matrix.
pub fn fig2(args: &ExpArgs) -> ExperimentOutput {
    let corpus = args.corpus();
    let mut r = String::new();
    let _ = writeln!(
        r,
        "Figure 2 reproduction: Linear SVC confusion matrix ({} messages, scale {})\n",
        corpus.len(),
        args.scale
    );

    let config = EvalConfig {
        seed: args.seed,
        ..EvalConfig::default()
    };
    let split = prepare_split(&corpus, &config);
    let mut model = LinearSvc::new(LinearSvcConfig::default());
    let eval = evaluate_model(&mut model, &split);

    let _ = writeln!(r, "{}", eval.confusion);
    let _ = writeln!(r, "{}", eval.confusion.classification_report());
    let _ = writeln!(
        r,
        "weighted F1 = {:.6}, accuracy = {:.6}",
        eval.report.weighted_f1, eval.report.accuracy
    );
    match eval.confusion.most_confused() {
        Some((t, p, n)) => {
            let names = eval.confusion.class_names();
            let _ = writeln!(
                r,
                "most confused: {n} × true '{}' predicted as '{}'",
                names[t], names[p]
            );
            let unimp = Category::Unimportant.index();
            if t == unimp || p == unimp {
                let _ = writeln!(
                    r,
                    "⇒ matches the paper: 'Unimportant' is the troublesome category"
                );
            }
        }
        None => {
            let _ = writeln!(r, "no misclassifications at this scale");
        }
    }

    let names = eval.confusion.class_names().to_vec();
    let value = serde_json::json!({
        "experiment": "fig2",
        "scale": args.scale,
        "seed": args.seed,
        "split": split.signature(),
        "class_names": names,
        "matrix": eval.confusion.rows(),
        "weighted_f1": eval.report.weighted_f1,
        "most_confused": eval.confusion.most_confused().map(|(t, p, n)| serde_json::json!({
            "true": eval.confusion.class_names()[t],
            "predicted": eval.confusion.class_names()[p],
            "count": n,
        })),
    });
    ExperimentOutput { value, report: r }
}

// ---------------------------------------------------------------- Figure 3

/// Figure 3 — the eight traditional classifiers (`drop_unimportant` runs
/// the §5.1 ablation).
pub fn fig3(args: &ExpArgs, drop_unimportant: bool) -> ExperimentOutput {
    let corpus = args.corpus();
    let mut r = String::new();
    let _ = writeln!(
        r,
        "Figure 3 reproduction: traditional classifiers with TF-IDF preprocessing\n\
         ({} messages, scale {}, drop_unimportant={})\n",
        corpus.len(),
        args.scale,
        drop_unimportant
    );

    let config = EvalConfig {
        seed: args.seed,
        drop_unimportant,
        ..EvalConfig::default()
    };
    let mut models = paper_suite(args.seed);
    let (split, evals) = evaluate_suite(&corpus, &mut models, &config);
    let _ = writeln!(
        r,
        "split: {} train / {} test, {} features (preprocess {})\n",
        split.train.len(),
        split.test.len(),
        split.train.n_features(),
        fmt_seconds(split.preprocess_seconds)
    );

    let rows: Vec<Vec<String>> = evals
        .iter()
        .map(|e| {
            vec![
                e.report.model.clone(),
                format!("{:.6}", e.report.weighted_f1),
                fmt_seconds(e.report.train_seconds),
                fmt_seconds(e.report.test_seconds),
            ]
        })
        .collect();
    let _ = writeln!(
        r,
        "{}",
        render_table(
            &["Classifier", "Weighted F1", "Training Time", "Testing Time"],
            &rows
        )
    );

    let _ = writeln!(r, "Paper's Figure 3 shape checks:");
    let _ = writeln!(
        r,
        "  - every model's weighted F1 > 0.95 (paper: 0.9523..0.9995)"
    );
    let _ = writeln!(r, "  - kNN: fastest training, slowest testing");
    let _ = writeln!(r, "  - Linear SVC: slowest training");
    let _ = writeln!(r, "  - Complement NB: fastest testing");
    if drop_unimportant {
        let _ = writeln!(
            r,
            "  - ablation: all F1 scores rise, Linear SVC training collapses"
        );
    }

    let value = serde_json::json!({
        "experiment": if drop_unimportant { "fig3_drop_unimportant" } else { "fig3" },
        "scale": args.scale,
        "seed": args.seed,
        "split": split.signature(),
        "n_train": split.train.len(),
        "n_test": split.test.len(),
        "n_features": split.train.n_features(),
        "rows": evals.iter().map(|e| serde_json::json!({
            "model": e.report.model,
            "weighted_f1": e.report.weighted_f1,
            "macro_f1": e.report.macro_f1,
            "accuracy": e.report.accuracy,
            "train_seconds": e.report.train_seconds,
            "test_seconds": e.report.test_seconds,
            "messages_per_hour": e.report.messages_per_hour(),
        })).collect::<Vec<_>>(),
    });
    ExperimentOutput { value, report: r }
}

// ---------------------------------------------------------------- Table 3

/// Evaluate an LLM classifier over a message sample; returns
/// (accuracy, mean virtual seconds, messages/hour).
fn eval_llm(
    clf: &dyn TextClassifier,
    sample: &[(String, Category)],
    mean_seconds: impl Fn() -> f64,
) -> (f64, f64, f64) {
    let correct = sample
        .iter()
        .filter(|(m, c)| clf.classify(m).category == *c)
        .count();
    let accuracy = correct as f64 / sample.len().max(1) as f64;
    let mean = mean_seconds();
    (accuracy, mean, 3600.0 / mean.max(1e-9))
}

/// Table 3 — LLM inference cost, failure modes, and the `max_new_tokens`
/// mitigation.
pub fn table3(args: &ExpArgs) -> ExperimentOutput {
    let corpus = args.corpus();
    let mut r = String::new();
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed ^ 0x7ab1e3);
    let mut shuffled: Vec<(String, Category)> = corpus.clone();
    shuffled.shuffle(&mut rng);
    let n_sample = shuffled.len().min(400);
    let sample = &shuffled[..n_sample];
    let _ = writeln!(
        r,
        "Table 3 reproduction: LLM classification cost ({} training messages, {} sampled test messages)\n",
        corpus.len(),
        n_sample
    );

    let mut pipeline = FeaturePipeline::new(FeatureConfig::default());
    let messages: Vec<&str> = corpus.iter().map(|(m, _)| m.as_str()).collect();
    pipeline.fit(&messages);
    let top_words: Vec<Vec<String>> = pipeline
        .table1(&corpus, 5)
        .into_iter()
        .map(|ct| ct.tokens.into_iter().map(|(t, _)| t).collect())
        .collect();
    let prompt = PromptBuilder::new().with_top_words(top_words);

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();

    for preset in [ModelPreset::falcon_7b(), ModelPreset::falcon_40b()] {
        let name = preset.name;
        let clf =
            GenerativeLlmClassifier::new(preset, &corpus, prompt.clone(), Some(24), args.seed);
        let (acc, mean_s, mph) = eval_llm(&clf, sample, || clf.mean_inference_seconds());
        let counters = clf.counters();
        rows.push(vec![
            name.to_string(),
            format!("{mean_s:.3}"),
            format!("{mph:.0}"),
            format!("{acc:.3}"),
            format!(
                "novel={} truncated={}",
                counters.novel_category, counters.truncated
            ),
        ]);
        json_rows.push(serde_json::json!({
            "model": name,
            "inference_seconds": mean_s,
            "messages_per_hour": mph,
            "accuracy": acc,
            "novel_category": counters.novel_category,
            "truncated": counters.truncated,
            "total": counters.total,
        }));
    }

    let zs = ZeroShotLlmClassifier::new(&corpus);
    let (acc, mean_s, mph) = eval_llm(&zs, sample, || zs.mean_inference_seconds());
    rows.push(vec![
        zs.name(),
        format!("{mean_s:.5}"),
        format!("{mph:.0}"),
        format!("{acc:.3}"),
        "always in-taxonomy".to_string(),
    ]);
    json_rows.push(serde_json::json!({
        "model": zs.name(),
        "inference_seconds": mean_s,
        "messages_per_hour": mph,
        "accuracy": acc,
    }));

    let _ = writeln!(
        r,
        "{}",
        render_table(
            &[
                "Model",
                "Inference (s/msg)",
                "Messages/hour",
                "Accuracy",
                "Failure modes"
            ],
            &rows
        )
    );
    let _ = writeln!(r, "Paper's Table 3: Falcon-7b 0.639s (5 633/h) · Falcon-40b 2.184s (1 648/h) · BART-MNLI 0.134s (26 948/h)");
    let _ = writeln!(
        r,
        "Shape: zero-shot ≫ 7b ≫ 40b in throughput; all orders of magnitude below the"
    );
    let _ = writeln!(
        r,
        "traditional models (fig3) and below Darwin's >1M msgs/hour ingest rate."
    );

    let unbounded = GenerativeLlmClassifier::new(
        ModelPreset::falcon_7b(),
        &corpus,
        prompt.clone(),
        None,
        args.seed,
    );
    for (m, _) in sample.iter().take(100) {
        let _ = unbounded.classify(m);
    }
    let capped = GenerativeLlmClassifier::new(
        ModelPreset::falcon_7b(),
        &corpus,
        prompt,
        Some(24),
        args.seed,
    );
    for (m, _) in sample.iter().take(100) {
        let _ = capped.classify(m);
    }
    let _ = writeln!(
        r,
        "\nmax_new_tokens mitigation (Falcon-7b, 100 msgs): unbounded {:.2} virtual s, capped {:.2} virtual s",
        unbounded.virtual_seconds(),
        capped.virtual_seconds()
    );

    use llmsim::latency::{LatencyModel, PAPER_GENERATED_TOKENS, PAPER_PROMPT_TOKENS};
    let _ = writeln!(
        r,
        "\nbatched-serving extrapolation (msgs/hour at batch size b):"
    );
    for (name, model) in [
        ("Falcon-7b", LatencyModel::falcon_7b()),
        ("Falcon-40b", LatencyModel::falcon_40b()),
    ] {
        let mph = |b: usize| {
            3600.0
                / model.batched_seconds_per_message(b, PAPER_PROMPT_TOKENS, PAPER_GENERATED_TOKENS)
        };
        let _ = writeln!(
            r,
            "  {name:<11} b=1: {:>7.0}  b=8: {:>7.0}  b=64: {:>7.0}  b=1024: {:>7.0}   (need >1,000,000)",
            mph(1), mph(8), mph(64), mph(1024)
        );
    }
    let _ = writeln!(
        r,
        "  even a saturated ~12x batching speedup leaves both models an order of magnitude short."
    );

    let value = serde_json::json!({
        "experiment": "table3",
        "scale": args.scale,
        "seed": args.seed,
        "n_sample": n_sample,
        "rows": json_rows,
        "max_new_tokens_ablation": {
            "unbounded_virtual_seconds": unbounded.virtual_seconds(),
            "capped_virtual_seconds": capped.virtual_seconds(),
        },
    });
    ExperimentOutput { value, report: r }
}

// ---------------------------------------------------------------- X1 drift

fn stream_accuracy(clf: &dyn TextClassifier, data: &[(String, Category)]) -> f64 {
    let texts: Vec<&str> = data.iter().map(|(m, _)| m.as_str()).collect();
    let preds = clf.classify_batch(&texts);
    let correct = preds
        .iter()
        .zip(data)
        .filter(|(p, (_, c))| p.category == *c)
        .count();
    correct as f64 / data.len().max(1) as f64
}

/// Experiment X1 — firmware drift vs. classifiers.
pub fn xp_drift(args: &ExpArgs) -> ExperimentOutput {
    let corpus = args.corpus();
    let mut r = String::new();
    let _ = writeln!(
        r,
        "Experiment X1: firmware drift vs. classifiers ({} messages, scale {})\n",
        corpus.len(),
        args.scale
    );

    let mut drift = DriftModel::new(DriftConfig {
        seed: args.seed ^ 0xd41f7,
        ..DriftConfig::default()
    });
    let drifted: Vec<(String, Category)> =
        corpus.iter().map(|(m, c)| (drift.mutate(m), *c)).collect();

    let bucket = BucketBaseline::train(7, &corpus);
    let buckets_before = bucket.n_buckets();
    let bucket_acc_before = stream_accuracy(&bucket, &corpus);
    let bucket_acc_after = stream_accuracy(&bucket, &drifted);
    let orphaned = drifted
        .iter()
        .filter(|(m, _)| bucket.find(m).is_none())
        .count();
    let orphan_rate = orphaned as f64 / drifted.len() as f64;

    let tfidf = TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default())),
        &corpus,
    );
    let tfidf_acc_before = stream_accuracy(&tfidf, &corpus);
    let tfidf_acc_after = stream_accuracy(&tfidf, &drifted);

    let rows = vec![
        vec![
            bucket.name(),
            format!("{bucket_acc_before:.4}"),
            format!("{bucket_acc_after:.4}"),
            format!("{:.1}%", orphan_rate * 100.0),
        ],
        vec![
            tfidf.name(),
            format!("{tfidf_acc_before:.4}"),
            format!("{tfidf_acc_after:.4}"),
            "0.0% (no exemplars)".to_string(),
        ],
    ];
    let _ = writeln!(
        r,
        "{}",
        render_table(
            &[
                "Classifier",
                "Accuracy pre-drift",
                "Accuracy post-drift",
                "Orphaned msgs"
            ],
            &rows
        )
    );
    let _ = writeln!(
        r,
        "bucket store: {} exemplars pre-drift; {orphaned} of {} drifted messages would found NEW buckets",
        buckets_before,
        drifted.len()
    );
    let _ = writeln!(
        r,
        "shape to check: TF-IDF degrades far less than bucketing, whose orphan rate IS the"
    );
    let _ = writeln!(r, "retraining burden the paper complains about.");

    assert!(
        tfidf_acc_after >= bucket_acc_after,
        "shape violation: TF-IDF should survive drift better than bucketing"
    );

    let value = serde_json::json!({
        "experiment": "xp_drift",
        "scale": args.scale,
        "seed": args.seed,
        "bucket": {
            "name": bucket.name(),
            "exemplars": buckets_before,
            "accuracy_before": bucket_acc_before,
            "accuracy_after": bucket_acc_after,
            "orphaned": orphaned,
            "orphan_rate": orphan_rate,
        },
        "tfidf": {
            "name": tfidf.name(),
            "accuracy_before": tfidf_acc_before,
            "accuracy_after": tfidf_acc_after,
        },
    });
    ExperimentOutput { value, report: r }
}

// ---------------------------------------------------------------- X2 throughput

/// The linear-family suite for the batch-vs-scalar comparison. Linear SVC
/// gets a reduced epoch budget — its dual coordinate descent is the
/// paper's slowest trainer and this experiment measures inference, not
/// training.
fn linear_suite(seed: u64) -> Vec<(&'static str, Box<dyn BatchClassifier>)> {
    vec![
        (
            "Logistic Regression",
            Box::new(LogisticRegression::new(LogisticRegressionConfig::default())),
        ),
        (
            "Ridge Classifier",
            Box::new(RidgeClassifier::new(RidgeConfig::default())),
        ),
        (
            "Linear SVC",
            Box::new(LinearSvc::new(LinearSvcConfig {
                max_epochs: 200,
                tolerance: 1e-3,
                ..LinearSvcConfig::default()
            })),
        ),
        (
            "Log-loss SGD",
            Box::new(SgdClassifier::new(SgdConfig {
                seed,
                ..SgdConfig::default()
            })),
        ),
        ("Nearest Centroid", Box::new(NearestCentroid::new())),
        (
            "Complement Naive Bayes",
            Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default())),
        ),
    ]
}

/// Result of the loopback listener run: final counters plus wall time.
struct ListenerBench {
    connections: usize,
    report: hetsyslog_core::IngestSnapshot,
    seconds: f64,
}

impl ListenerBench {
    fn msgs_per_sec(&self) -> f64 {
        self.report.ingested as f64 / self.seconds
    }
}

/// Push `frames` through the loopback TCP listener over 4 concurrent
/// octet-counted connections and report sustained wire-to-store ingest.
fn bench_listener(frames: &[String]) -> ListenerBench {
    const CONNECTIONS: usize = 4;
    let store = Arc::new(LogStore::new());
    let listener = SyslogListener::start(
        store.clone(),
        None,
        ListenerConfig {
            workers: 4,
            queue_depth: 4096,
            overload: OverloadPolicy::Block,
            idle_timeout: Duration::from_secs(30),
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    let addr = listener.tcp_addr();

    let started = Instant::now();
    let senders: Vec<_> = (0..CONNECTIONS)
        .map(|c| {
            let shard: Vec<String> = frames
                .iter()
                .skip(c)
                .step_by(CONNECTIONS)
                .cloned()
                .collect();
            std::thread::spawn(move || {
                let mut sock = std::net::TcpStream::connect(addr).expect("connect");
                let mut wire = Vec::with_capacity(shard.iter().map(|f| f.len() + 8).sum());
                for frame in &shard {
                    wire.extend_from_slice(format!("{} {frame}", frame.len()).as_bytes());
                }
                sock.write_all(&wire).expect("write");
            })
        })
        .collect();
    for sender in senders {
        sender.join().expect("sender thread");
    }
    let expected = frames.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    while listener.stats().snapshot().ingested + listener.stats().snapshot().parse_errors < expected
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    let seconds = started.elapsed().as_secs_f64();
    let report = listener.shutdown();
    ListenerBench {
        connections: CONNECTIONS,
        report,
        seconds,
    }
}

/// Result of one live micro-batching listener run: wire-to-prediction
/// throughput plus the batching histograms and the classifier's final
/// counters (for cross-setting agreement checks).
struct LiveBatchBench {
    max_batch: usize,
    seconds: f64,
    report: hetsyslog_core::IngestSnapshot,
    batching: hetsyslog_core::BatchSnapshot,
    per_category: [u64; 8],
    prefiltered: u64,
}

impl LiveBatchBench {
    fn msgs_per_sec(&self) -> f64 {
        self.report.ingested as f64 / self.seconds
    }
}

/// Push `frames` through the loopback listener with a classifier attached
/// and the given `max_batch`, over 4 concurrent octet-counted TCP
/// connections. Measures sustained wire-to-prediction throughput and the
/// queue→prediction latency distribution.
///
/// No noise prefilter: its edit-distance scan is per-message in every
/// mode (batching cannot amortize it), so the sweep isolates the part of
/// the path micro-batching actually changes. Prefilter cost is measured
/// separately by `xp_ablation`.
fn bench_live_batching(
    frames: &[String],
    clf: Arc<dyn TextClassifier>,
    max_batch: usize,
    instrumented: bool,
) -> LiveBatchBench {
    const CONNECTIONS: usize = 4;
    // Each connection streams its frame shard three times over: a longer
    // run drowns out scheduler noise that dominates sub-second timings.
    const PASSES: usize = 3;
    // Wire bytes are prepared before the clock starts: the benchmark
    // times the pipeline, not the sender's buffer assembly.
    let wires: Vec<Vec<u8>> = (0..CONNECTIONS)
        .map(|c| {
            let mut wire = Vec::new();
            for frame in frames.iter().skip(c).step_by(CONNECTIONS) {
                wire.extend_from_slice(format!("{} {frame}", frame.len()).as_bytes());
            }
            wire.repeat(PASSES)
        })
        .collect();
    let expected = (frames.len() * PASSES) as u64;
    // Best-of-3: loopback throughput on a shared host jitters by ±10%;
    // the fastest run is the least-interfered estimate of each setting.
    let mut best: Option<LiveBatchBench> = None;
    for _ in 0..3 {
        let run = live_batch_run(&wires, expected, clf.clone(), max_batch, instrumented);
        if best.as_ref().is_none_or(|b| run.seconds < b.seconds) {
            best = Some(run);
        }
    }
    best.expect("three runs completed")
}

/// One timed pass of [`bench_live_batching`]: stream the prebuilt wire
/// buffers over concurrent TCP connections and wait for full ingest.
fn live_batch_run(
    wires: &[Vec<u8>],
    expected: u64,
    clf: Arc<dyn TextClassifier>,
    max_batch: usize,
    instrumented: bool,
) -> LiveBatchBench {
    let store = Arc::new(LogStore::new());
    let service = Arc::new(MonitorService::new(clf));
    let listener = SyslogListener::start(
        store,
        Some(service.clone()),
        ListenerConfig {
            // Two parse workers: sized for the small benchmark hosts this
            // runs on, where extra workers only add scheduler churn.
            workers: 2,
            queue_depth: 4096,
            overload: OverloadPolicy::Block,
            idle_timeout: Duration::from_secs(30),
            max_batch,
            max_delay: Duration::from_millis(2),
            // The overhead gate's "instrumented" arm: full registry-backed
            // telemetry with the scrape endpoint up (nobody scraping), the
            // flight-recorder sampler ticking at its default cadence, and a
            // representative alert rule evaluated on every sample — the gate
            // measures the whole observability stack, not just counters.
            telemetry: instrumented.then(obs::Telemetry::new_arc),
            serve_metrics: instrumented,
            record_flight: instrumented,
            alert_rules: if instrumented {
                vec![obs::Rule::threshold(
                    "ingest_stall",
                    "hetsyslog_ingest_frames_total",
                    obs::RuleInput::Rate,
                    obs::Cmp::Lt,
                    1.0,
                )
                .over_ms(2_000)
                .for_ms(1_000)]
            } else {
                Vec::new()
            },
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    let addr = listener.tcp_addr();

    let started = Instant::now();
    let senders: Vec<_> = wires
        .iter()
        .map(|wire| {
            let wire = wire.clone();
            std::thread::spawn(move || {
                let mut sock = std::net::TcpStream::connect(addr).expect("connect");
                sock.write_all(&wire).expect("write");
            })
        })
        .collect();
    for sender in senders {
        sender.join().expect("sender thread");
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while listener.stats().snapshot().ingested + listener.stats().snapshot().parse_errors < expected
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    let seconds = started.elapsed().as_secs_f64();
    let batch_stats = listener.batch_stats_handle();
    let report = listener.shutdown();
    let stats = service.stats();
    LiveBatchBench {
        max_batch,
        seconds,
        report,
        batching: batch_stats.snapshot(),
        per_category: stats.per_category,
        prefiltered: stats.prefiltered,
    }
}

/// Experiment X2 — end-to-end pipeline throughput per technique, the batch
/// CSR vs scalar comparison, and the loopback-listener ingest benchmark.
pub fn xp_throughput(args: &ExpArgs) -> ExperimentOutput {
    let corpus = args.corpus();
    let n_frames = (30_000.0 * (args.scale / 0.05).clamp(0.2, 10.0)) as usize;
    let frames: Vec<String> = StreamGenerator::new(StreamConfig {
        seed: args.seed,
        ..StreamConfig::default()
    })
    .take(n_frames)
    .map(|t| t.to_frame())
    .collect();
    let mut r = String::new();
    let _ = writeln!(
        r,
        "Experiment X2: end-to-end classified-ingest throughput ({} frames, {} training messages)\n",
        frames.len(),
        corpus.len()
    );

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();

    let traditional: Vec<(&str, Box<dyn TextClassifier>)> = vec![
        (
            "TF-IDF + Complement NB",
            Box::new(TraditionalPipeline::train(
                FeatureConfig::default(),
                Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default())),
                &corpus,
            )),
        ),
        (
            "TF-IDF + Random Forest",
            Box::new(TraditionalPipeline::train(
                FeatureConfig::default(),
                Box::new(RandomForest::new(RandomForestConfig {
                    seed: args.seed,
                    n_trees: 20,
                    ..RandomForestConfig::default()
                })),
                &corpus,
            )),
        ),
    ];
    for (label, clf) in traditional {
        let store = Arc::new(LogStore::new());
        let service = Arc::new(
            MonitorService::new(Arc::from(clf)).with_prefilter(NoiseFilter::train(3, &corpus)),
        );
        let ingest = ClassifyingIngest::new(store.clone(), service, 4);
        let report = ingest.run(frames.iter().cloned());
        let mph = report.messages_per_second() * 3600.0;
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", report.seconds),
            format!("{mph:.0}"),
            "measured wall time".to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "technique": label,
            "seconds": report.seconds,
            "messages_per_hour": mph,
            "kind": "measured",
            "prefiltered": report.prefiltered,
        }));
    }

    let sample: Vec<&str> = frames.iter().take(300).map(|s| s.as_str()).collect();
    let prompt = PromptBuilder::new();
    for preset in [ModelPreset::falcon_7b(), ModelPreset::falcon_40b()] {
        let name = preset.name;
        let clf =
            GenerativeLlmClassifier::new(preset, &corpus, prompt.clone(), Some(24), args.seed);
        for m in &sample {
            let _ = clf.classify(m);
        }
        let mean = clf.mean_inference_seconds();
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", mean * frames.len() as f64),
            format!("{:.0}", 3600.0 / mean),
            "modeled 4xA100 time".to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "technique": name,
            "seconds": mean * frames.len() as f64,
            "messages_per_hour": 3600.0 / mean,
            "kind": "modeled",
        }));
    }
    let zs = ZeroShotLlmClassifier::new(&corpus);
    for m in &sample {
        let _ = zs.classify(m);
    }
    let mean = zs.mean_inference_seconds();
    rows.push(vec![
        zs.name(),
        format!("{:.1}", mean * frames.len() as f64),
        format!("{:.0}", 3600.0 / mean),
        "modeled 4xA100 time".to_string(),
    ]);
    json_rows.push(serde_json::json!({
        "technique": zs.name(),
        "seconds": mean * frames.len() as f64,
        "messages_per_hour": 3600.0 / mean,
        "kind": "modeled",
    }));

    let _ = writeln!(
        r,
        "{}",
        render_table(
            &["Technique", "Time for stream (s)", "Messages/hour", "Basis"],
            &rows
        )
    );
    let _ = writeln!(
        r,
        "Darwin's load: >1,000,000 messages/hour. Shape to check: traditional models clear"
    );
    let _ = writeln!(
        r,
        "it comfortably; every LLM falls one to three orders of magnitude short (the"
    );
    let _ = writeln!(r, "paper's central conclusion).");

    let bench_msgs: Vec<&str> = frames.iter().take(20_000).map(|s| s.as_str()).collect();
    let _ = writeln!(
        r,
        "\nBatch CSR vs scalar ingest over {} messages per linear classifier:\n",
        bench_msgs.len()
    );
    let mut batch_rows = Vec::new();
    let mut batch_json = Vec::new();
    for (label, model) in linear_suite(args.seed) {
        let clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
            FeatureConfig::default(),
            model,
            &corpus,
        ));
        let scalar_svc =
            MonitorService::new(clf.clone()).with_prefilter(NoiseFilter::train(3, &corpus));
        let t0 = Instant::now();
        let scalar_preds: Vec<_> = bench_msgs.iter().map(|m| scalar_svc.ingest(m)).collect();
        let scalar_seconds = t0.elapsed().as_secs_f64();

        let batch_svc = MonitorService::new(clf).with_prefilter(NoiseFilter::train(3, &corpus));
        let t1 = Instant::now();
        let batch_preds = batch_svc.ingest_batch(&bench_msgs);
        let batch_seconds = t1.elapsed().as_secs_f64();

        let agree = scalar_preds
            .iter()
            .zip(&batch_preds)
            .all(|(a, b)| match (a, b) {
                (Some(a), Some(b)) => a.category == b.category,
                (None, None) => true,
                _ => false,
            });
        let scalar_rate = bench_msgs.len() as f64 / scalar_seconds;
        let batch_rate = bench_msgs.len() as f64 / batch_seconds;
        batch_rows.push(vec![
            label.to_string(),
            format!("{scalar_rate:.0}"),
            format!("{batch_rate:.0}"),
            format!("{:.1}x", batch_rate / scalar_rate),
            if agree {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
        batch_json.push(serde_json::json!({
            "model": label,
            "scalar_msgs_per_sec": scalar_rate,
            "batch_msgs_per_sec": batch_rate,
            "speedup": batch_rate / scalar_rate,
            "predictions_agree": agree,
        }));
    }
    let _ = writeln!(
        r,
        "{}",
        render_table(
            &["Model", "Scalar msg/s", "Batch msg/s", "Speedup", "Agree"],
            &batch_rows
        )
    );

    let listener = bench_listener(&frames.iter().take(20_000).cloned().collect::<Vec<_>>());
    let _ = writeln!(
        r,
        "\nLoopback listener ingest: {:.0} msg/s over {} TCP connections ({} frames, {} drops)",
        listener.msgs_per_sec(),
        listener.connections,
        listener.report.frames,
        listener.report.total_dropped(),
    );
    let listener_json = serde_json::json!({
        "connections": listener.connections,
        "frames": listener.report.frames,
        "ingested": listener.report.ingested,
        "dropped": listener.report.total_dropped(),
        "bytes": listener.report.bytes,
        "seconds": listener.seconds,
        "msgs_per_sec": listener.msgs_per_sec(),
    });

    // The live micro-batching sweep: the same 20k frames through the
    // listener with a classifier in-path, varying only max_batch. The
    // scalar setting (max_batch = 1) is the pre-batching classify path.
    let live_frames: Vec<String> = frames.iter().take(20_000).cloned().collect();
    let live_clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default())),
        &corpus,
    ));
    let _ = writeln!(
        r,
        "\nLive micro-batched classify path over {} frames (4 TCP connections, CNB classifier):\n",
        live_frames.len()
    );
    let mut live_runs = Vec::new();
    for max_batch in [1usize, 16, 64, 256] {
        live_runs.push(bench_live_batching(
            &live_frames,
            live_clf.clone(),
            max_batch,
            false,
        ));
    }
    let predictions_agree = live_runs.iter().all(|b| {
        b.per_category == live_runs[0].per_category && b.prefiltered == live_runs[0].prefiltered
    });
    let rate_of = |mb: usize| {
        live_runs
            .iter()
            .find(|b| b.max_batch == mb)
            .map(|b| b.msgs_per_sec())
            .unwrap_or(0.0)
    };
    let speedup_64_vs_1 = rate_of(64) / rate_of(1).max(f64::MIN_POSITIVE);
    let mut live_rows = Vec::new();
    let mut live_json = Vec::new();
    for b in &live_runs {
        live_rows.push(vec![
            b.max_batch.to_string(),
            format!("{:.0}", b.msgs_per_sec()),
            format!("{:.1}", b.batching.mean_batch_size()),
            format!("{}", b.batching.p99_queue_latency_us()),
            b.report.ingested.to_string(),
        ]);
        live_json.push(serde_json::json!({
            "max_batch": b.max_batch,
            "msgs_per_sec": b.msgs_per_sec(),
            "seconds": b.seconds,
            "ingested": b.report.ingested,
            "mean_batch_size": b.batching.mean_batch_size(),
            "p99_queue_latency_us": b.batching.p99_queue_latency_us(),
            "batches": b.batching.batches,
            "full_flushes": b.batching.full_flushes,
            "deadline_flushes": b.batching.deadline_flushes,
            "drain_flushes": b.batching.drain_flushes,
        }));
    }
    let _ = writeln!(
        r,
        "{}",
        render_table(
            &[
                "max_batch",
                "Msg/s",
                "Mean batch",
                "p99 queue->pred (us)",
                "Ingested"
            ],
            &live_rows
        )
    );
    let _ = writeln!(
        r,
        "max_batch=64 vs 1 speedup: {speedup_64_vs_1:.1}x; predictions agree across settings: {predictions_agree}"
    );

    let value = serde_json::json!({
        "experiment": "xp_throughput",
        "scale": args.scale,
        "seed": args.seed,
        "n_frames": frames.len(),
        "rows": json_rows,
        "batch_vs_scalar": {
            "n_messages": bench_msgs.len(),
            "classifiers": batch_json,
        },
        "listener": listener_json,
        "live_batching": {
            "n_messages": live_frames.len(),
            "connections": 4,
            "max_delay_ms": 2,
            "sweep": live_json,
            "predictions_agree": predictions_agree,
            "speedup_64_vs_1": speedup_64_vs_1,
        },
    });
    ExperimentOutput { value, report: r }
}

/// The telemetry overhead gate: the live micro-batched listener path at
/// `max_batch = 64`, with all instruments detached vs. registered on a
/// live registry (spans on, scrape endpoint up, flight-recorder sampler
/// ticking, one alert rule evaluated per sample). Returned as a standalone
/// JSON section for `BENCH_throughput.json` — deliberately NOT part of
/// [`xp_throughput`]'s conformance value, so goldens never see it.
///
/// The PR gate is `ratio >= 0.95`: instrumentation may cost at most 5% of
/// uninstrumented throughput.
pub fn observability_overhead(args: &ExpArgs) -> Value {
    let corpus = args.corpus();
    let n_frames = (20_000.0 * (args.scale / 0.05).clamp(0.2, 10.0)) as usize;
    let frames: Vec<String> = StreamGenerator::new(StreamConfig {
        seed: args.seed,
        ..StreamConfig::default()
    })
    .take(n_frames)
    .map(|t| t.to_frame())
    .collect();
    let clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default())),
        &corpus,
    ));
    // Interleave the arms round by round (detached, instrumented, detached,
    // ...) and keep the best run per arm. Back-to-back best-of-N blocks see
    // different machine conditions minutes apart; interleaving exposes both
    // arms to the same interference, so the ratio measures instrumentation
    // rather than scheduler drift.
    const CONNECTIONS: usize = 4;
    const PASSES: usize = 3;
    const ROUNDS: usize = 4;
    let wires: Vec<Vec<u8>> = (0..CONNECTIONS)
        .map(|c| {
            let mut wire = Vec::new();
            for frame in frames.iter().skip(c).step_by(CONNECTIONS) {
                wire.extend_from_slice(format!("{} {frame}", frame.len()).as_bytes());
            }
            wire.repeat(PASSES)
        })
        .collect();
    let expected = (frames.len() * PASSES) as u64;
    let mut detached: Option<LiveBatchBench> = None;
    let mut instrumented: Option<LiveBatchBench> = None;
    for _ in 0..ROUNDS {
        for (arm, best) in [(false, &mut detached), (true, &mut instrumented)] {
            let run = live_batch_run(&wires, expected, clf.clone(), 64, arm);
            if best.as_ref().is_none_or(|b| run.seconds < b.seconds) {
                *best = Some(run);
            }
        }
    }
    let detached = detached.expect("detached rounds completed");
    let instrumented = instrumented.expect("instrumented rounds completed");
    let ratio = instrumented.msgs_per_sec() / detached.msgs_per_sec().max(f64::MIN_POSITIVE);
    serde_json::json!({
        "n_messages": frames.len(),
        "max_batch": 64,
        "uninstrumented_msgs_per_sec": detached.msgs_per_sec(),
        "instrumented_msgs_per_sec": instrumented.msgs_per_sec(),
        "ratio": ratio,
        "gate": "instrumented >= 0.95 * uninstrumented",
    })
}

/// One timed pass of the sharded listener: stream the prebuilt wires over
/// concurrent TCP connections into a `shards`-wide fabric (one worker per
/// shard, store lanes matched) and wait for full ingest. Returns the run
/// plus the fabric's steal counters.
fn live_shard_run(
    wires: &[Vec<u8>],
    expected: u64,
    clf: Arc<dyn TextClassifier>,
    shards: usize,
) -> (LiveBatchBench, u64, u64) {
    let store = Arc::new(LogStore::with_lanes(shards));
    let service = Arc::new(MonitorService::new(clf));
    let listener = SyslogListener::start(
        store,
        Some(service.clone()),
        ListenerConfig {
            workers: shards,
            shards,
            queue_depth: 4096,
            overload: OverloadPolicy::Block,
            idle_timeout: Duration::from_secs(30),
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    let addr = listener.tcp_addr();

    let started = Instant::now();
    let senders: Vec<_> = wires
        .iter()
        .map(|wire| {
            let wire = wire.clone();
            std::thread::spawn(move || {
                let mut sock = std::net::TcpStream::connect(addr).expect("connect");
                sock.write_all(&wire).expect("write");
            })
        })
        .collect();
    for sender in senders {
        sender.join().expect("sender thread");
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while listener.stats().snapshot().ingested < expected && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let seconds = started.elapsed().as_secs_f64();
    let batch_stats = listener.batch_stats_handle();
    let shard_stats = listener.shard_stats_handle();
    let steals: u64 = shard_stats.iter().map(|s| s.steals.get()).sum();
    let stolen: u64 = shard_stats.iter().map(|s| s.stolen_frames.get()).sum();
    let report = listener.shutdown();
    assert_eq!(report.ingested, expected, "lossless under Block");
    let stats = service.stats();
    (
        LiveBatchBench {
            max_batch: 64,
            seconds,
            report,
            batching: batch_stats.snapshot(),
            per_category: stats.per_category,
            prefiltered: stats.prefiltered,
        },
        steals,
        stolen,
    )
}

/// Benchmark the sharded live pipeline (DESIGN.md §5a): wire-to-prediction
/// throughput at `max_batch = 64` across shard counts {1, 2, 4}, eight
/// concurrent TCP connections hash-partitioned over the fabric. Returned
/// as a standalone JSON section for `BENCH_throughput.json` — deliberately
/// NOT part of [`xp_throughput`]'s conformance value, so goldens never see
/// timings or shard topology.
///
/// Classification results must be bit-identical at every width (asserted
/// here, not just reported). The per-added-shard scaling gate (>= 0.7x per
/// doubling up to 4 shards) is only meaningful on a >= 4-core host; the
/// `cores` field records what this run actually had, and CI enforces the
/// gate on its multi-core runners via the shard-scaling smoke test.
pub fn live_sharding(args: &ExpArgs) -> Value {
    let corpus = args.corpus();
    let n_frames = (20_000.0 * (args.scale / 0.05).clamp(0.2, 10.0)) as usize;
    let frames: Vec<String> = StreamGenerator::new(StreamConfig {
        seed: args.seed,
        ..StreamConfig::default()
    })
    .take(n_frames)
    .map(|t| t.to_frame())
    .collect();
    let clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default())),
        &corpus,
    ));
    // Eight connections so the hash partitioner has enough distinct keys
    // to populate every ring at the widest setting.
    const CONNECTIONS: usize = 8;
    const PASSES: usize = 3;
    let wires: Vec<Vec<u8>> = (0..CONNECTIONS)
        .map(|c| {
            let mut wire = Vec::new();
            for frame in frames.iter().skip(c).step_by(CONNECTIONS) {
                wire.extend_from_slice(format!("{} {frame}", frame.len()).as_bytes());
            }
            wire.repeat(PASSES)
        })
        .collect();
    let expected = (frames.len() * PASSES) as u64;

    let mut sweep = Vec::new();
    let mut baseline_cats: Option<[u64; 8]> = None;
    let mut rates = Vec::new();
    for shards in [1usize, 2, 4] {
        // Best-of-3 per width: the fastest run is the least-interfered
        // estimate of each setting on a shared host.
        let mut best: Option<(LiveBatchBench, u64, u64)> = None;
        for _ in 0..3 {
            let run = live_shard_run(&wires, expected, clf.clone(), shards);
            if best
                .as_ref()
                .is_none_or(|(b, _, _)| run.0.seconds < b.seconds)
            {
                best = Some(run);
            }
        }
        let (run, steals, stolen) = best.expect("three runs completed");
        match &baseline_cats {
            None => baseline_cats = Some(run.per_category),
            Some(expect) => assert_eq!(
                &run.per_category, expect,
                "sharded predictions diverged from single-shard at shards={shards}"
            ),
        }
        rates.push(run.msgs_per_sec());
        sweep.push(serde_json::json!({
            "shards": shards,
            "msgs_per_sec": run.msgs_per_sec(),
            "mean_batch_size": run.batching.mean_batch_size(),
            "steals": steals,
            "stolen_frames": stolen,
        }));
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    serde_json::json!({
        "n_messages": expected,
        "max_batch": 64,
        "connections": CONNECTIONS,
        "cores": cores,
        "sweep": sweep,
        "speedup_2_over_1": rates[1] / rates[0].max(f64::MIN_POSITIVE),
        "speedup_4_over_1": rates[2] / rates[0].max(f64::MIN_POSITIVE),
        "predictions_agree": true,
        "gate": "per added shard >= 0.7x per doubling, enforced on >= 4-core hosts",
        "gate_enforced": cores >= 4,
    })
}

/// One loopback run of `wires` (one wire per connection) through the
/// given TCP front end at `shards` pipeline shards. Returns (seconds,
/// p99 queue→prediction latency in µs, per-category counters, front-end
/// thread count) after asserting lossless ingest and a balanced
/// connection ledger.
fn live_frontend_run(
    wires: &[Vec<u8>],
    expected: u64,
    clf: Arc<dyn TextClassifier>,
    frontend: Frontend,
    shards: usize,
) -> (f64, u64, [u64; 8], usize) {
    let store = Arc::new(LogStore::with_lanes(shards));
    let service = Arc::new(MonitorService::new(clf));
    let listener = SyslogListener::start(
        store,
        Some(service.clone()),
        ListenerConfig {
            frontend,
            workers: shards,
            shards,
            queue_depth: 4096,
            overload: OverloadPolicy::Block,
            idle_timeout: Duration::from_secs(30),
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    let addr = listener.tcp_addr();
    // Threads the front end itself costs: the reactor pool, or (at peak)
    // one OS thread per connection.
    let frontend_threads = match frontend {
        Frontend::Threads => wires.len(),
        Frontend::Reactor { .. } => listener.n_reactors(),
    };

    let started = Instant::now();
    let senders: Vec<_> = wires
        .iter()
        .map(|wire| {
            let wire = wire.clone();
            std::thread::spawn(move || {
                let mut sock = std::net::TcpStream::connect(addr).expect("connect");
                sock.write_all(&wire).expect("write");
            })
        })
        .collect();
    for sender in senders {
        sender.join().expect("sender thread");
    }
    // Wait for the drain with a stall detector rather than a fixed cap:
    // on a loaded single-core host an arm can legitimately take a while,
    // but 30 s of zero ingest progress means something is wedged, and
    // the lossless assert below should see it rather than hang forever.
    let mut last_progress = (Instant::now(), 0u64);
    loop {
        let ingested = listener.stats().snapshot().ingested;
        if ingested >= expected {
            break;
        }
        if ingested > last_progress.1 {
            last_progress = (Instant::now(), ingested);
        } else if last_progress.0.elapsed() > Duration::from_secs(30) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let seconds = started.elapsed().as_secs_f64();
    let batch_stats = listener.batch_stats_handle();
    let opened = listener.stats().connections_opened.clone();
    let closed = listener.stats().connections_closed.clone();
    let report = listener.shutdown();
    assert_eq!(report.ingested, expected, "lossless under Block");
    assert_eq!(
        opened.get(),
        closed.get(),
        "connection ledger must balance after the drain ({frontend:?})"
    );
    let stats = service.stats();
    (
        seconds,
        batch_stats.snapshot().p99_queue_latency_us(),
        stats.per_category,
        frontend_threads,
    )
}

/// Benchmark the TCP ingest front ends (DESIGN.md §5a): thread-per-
/// connection vs the epoll reactor at {16, 256, 1024} concurrent
/// connections × {1, 4} pipeline shards, recording msg/s, p99
/// queue→prediction latency, and the front-end thread count. Returned as
/// a standalone JSON section for `BENCH_throughput.json` — deliberately
/// NOT part of [`xp_throughput`]'s conformance value, so goldens never
/// see timings or host topology.
///
/// Classification results must be bit-identical across front ends
/// (asserted here, not just reported). The scaling gate (reactor ≥ 1.3×
/// threads at 256 connections) is only meaningful on a ≥ 4-core host;
/// the `cores` field records what this run actually had, and CI enforces
/// the gate on its multi-core runners via the frontend-scaling smoke
/// test.
pub fn ingest_frontend(args: &ExpArgs) -> Value {
    let corpus = args.corpus();
    let n_frames = (20_000.0 * (args.scale / 0.05).clamp(0.2, 10.0)) as usize;
    let frames: Vec<String> = StreamGenerator::new(StreamConfig {
        seed: args.seed,
        ..StreamConfig::default()
    })
    .take(n_frames)
    .map(|t| t.to_frame())
    .collect();
    let clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default())),
        &corpus,
    ));
    let expected = frames.len() as u64;

    let mut sweep = Vec::new();
    let mut baseline_cats: Option<[u64; 8]> = None;
    let rate_at =
        |frontend: Frontend, connections: usize, shards: usize, baseline: &mut Option<[u64; 8]>| {
            // One octet-counted wire per connection, frames dealt round-robin.
            let wires: Vec<Vec<u8>> = (0..connections)
                .map(|c| {
                    let mut wire = Vec::new();
                    for frame in frames.iter().skip(c).step_by(connections) {
                        wire.extend_from_slice(format!("{} {frame}", frame.len()).as_bytes());
                    }
                    wire
                })
                .collect();
            // Best-of-2: the faster run is the less-interfered estimate on a
            // shared host (12 configurations keep the sweep affordable).
            let mut best: Option<(f64, u64, [u64; 8], usize)> = None;
            for _ in 0..2 {
                let run = live_frontend_run(&wires, expected, clf.clone(), frontend, shards);
                if best.as_ref().is_none_or(|(s, ..)| run.0 < *s) {
                    best = Some(run);
                }
            }
            let (seconds, p99_us, cats, frontend_threads) = best.expect("two runs completed");
            match baseline {
                None => *baseline = Some(cats),
                Some(expect) => assert_eq!(
                    &cats, expect,
                    "front-end predictions diverged at {frontend:?} conns={connections}"
                ),
            }
            (expected as f64 / seconds, p99_us, frontend_threads)
        };

    let mut rates: std::collections::HashMap<(bool, usize, usize), f64> =
        std::collections::HashMap::new();
    for shards in [1usize, 4] {
        for connections in [16usize, 256, 1024] {
            for frontend in [Frontend::Threads, Frontend::Reactor { threads: 2 }] {
                let (msgs_per_sec, p99_us, frontend_threads) =
                    rate_at(frontend, connections, shards, &mut baseline_cats);
                let is_reactor = matches!(frontend, Frontend::Reactor { .. });
                eprintln!(
                    "  ingest_frontend: {} conns={connections} shards={shards}: {msgs_per_sec:.0} msg/s",
                    if is_reactor { "reactor" } else { "threads" },
                );
                rates.insert((is_reactor, connections, shards), msgs_per_sec);
                sweep.push(serde_json::json!({
                    "frontend": if is_reactor { "reactor" } else { "threads" },
                    "connections": connections,
                    "shards": shards,
                    "msgs_per_sec": msgs_per_sec,
                    "p99_queue_latency_us": p99_us,
                    "frontend_threads": frontend_threads,
                }));
            }
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = |connections: usize, shards: usize| {
        rates[&(true, connections, shards)]
            / rates[&(false, connections, shards)].max(f64::MIN_POSITIVE)
    };
    serde_json::json!({
        "n_messages": expected,
        "max_batch": 64,
        "cores": cores,
        "reactor_threads": 2,
        "sweep": sweep,
        "reactor_speedup_256conns_1shard": speedup(256, 1),
        "reactor_speedup_256conns_4shards": speedup(256, 4),
        "reactor_speedup_1024conns_4shards": speedup(1024, 4),
        "predictions_agree": true,
        "gate": "reactor >= 1.3x threads at 256 connections, enforced on >= 4-core hosts",
        "gate_enforced": cores >= 4,
    })
}

/// The template-mining columnar store sweep: seal a datagen stream into
/// columnar segments and measure the compression ratio against the hot
/// tier's at-rest JSONL bytes, plus the template-native query speedup
/// (header-served [`LogStore::count_by_template`] vs a raw full scan
/// that decodes every row). Returned as a standalone JSON section for
/// `BENCH_throughput.json` — deliberately NOT part of any conformance
/// value, so goldens never see timings or byte counts.
///
/// The CI gate is `compression_ratio >= 5.0` on the datagen corpus.
pub fn columnar_store(args: &ExpArgs) -> Value {
    let n = (30_000.0 * (args.scale / 0.05).clamp(0.2, 10.0)) as usize;
    let records: Vec<logpipeline::LogRecord> = StreamGenerator::new(StreamConfig {
        seed: args.seed,
        ..StreamConfig::default()
    })
    .take(n)
    .enumerate()
    .map(|(i, t)| logpipeline::LogRecord {
        id: i as u64,
        unix_seconds: t.unix_seconds,
        node: t.message.node.clone(),
        app: t.message.app.clone(),
        severity: if t.message.category.is_actionable() {
            syslog_model::Severity::Warning
        } else {
            syslog_model::Severity::Informational
        },
        facility: syslog_model::Facility::Daemon,
        message: t.message.text,
        category: Some(t.message.category),
    })
    .collect();

    let store = LogStore::new();
    store.insert_batch(records.iter().cloned());
    // The hot tier's at-rest format is the JSONL snapshot; that is the
    // denominator a columnar tier has to beat.
    let mut jsonl = Vec::new();
    let exported = store.export_jsonl(&mut jsonl).expect("in-memory export");
    assert_eq!(exported as usize, records.len());
    let raw_bytes = jsonl.len() as u64;

    let seal_start = Instant::now();
    let sealed_rows = store.seal_all();
    let seal_seconds = seal_start.elapsed().as_secs_f64();
    assert_eq!(sealed_rows as usize, records.len());
    let stats = store.segment_stats();

    // Losslessness check: sealing must not change what queries see.
    let decoded = store.search(i64::MIN, i64::MAX, &[]);
    assert_eq!(decoded.len(), records.len(), "sealed scan lost rows");

    // Query arms, best-of-3 each. The fast arm answers from segment
    // headers; the raw arm decodes every row like a pre-columnar scan.
    let mut fast_us = f64::MAX;
    let mut raw_us = f64::MAX;
    let mut n_templates = 0usize;
    for _ in 0..3 {
        let t0 = Instant::now();
        let counts = store.count_by_template(i64::MIN, i64::MAX);
        fast_us = fast_us.min(t0.elapsed().as_secs_f64() * 1e6);
        n_templates = counts.len();
        assert_eq!(counts.values().sum::<u64>() as usize, records.len());

        let t0 = Instant::now();
        let mut by_message_head: std::collections::HashMap<String, u64> =
            std::collections::HashMap::new();
        store.scan(i64::MIN, i64::MAX, &[], |r| {
            let head = r.message.split(' ').next().unwrap_or("").to_string();
            *by_message_head.entry(head).or_default() += 1;
        });
        raw_us = raw_us.min(t0.elapsed().as_secs_f64() * 1e6);
        assert_eq!(
            by_message_head.values().sum::<u64>() as usize,
            records.len()
        );
    }
    let ratio = raw_bytes as f64 / (stats.encoded_bytes.max(1)) as f64;
    serde_json::json!({
        "n_messages": records.len(),
        "raw_jsonl_bytes": raw_bytes,
        "encoded_bytes": stats.encoded_bytes,
        "compression_ratio": ratio,
        "n_segments": store.n_segments(),
        "n_templates": n_templates,
        "seal_seconds": seal_seconds,
        "count_by_template_us": fast_us,
        "full_scan_us": raw_us,
        "query_speedup": raw_us / fast_us.max(f64::MIN_POSITIVE),
        "lossless": true,
        "gate": "compression_ratio >= 5.0 on the datagen corpus",
    })
}

/// Sink fan-out sweep: delivered throughput under a healthy sink, a 5%
/// error-rate sink, and an outage + spill-replay arm, plus the recovery
/// time (outage end → spill drained). Rides along in the committed bench
/// JSON; deliberately NOT a conformance value (timings vary per host).
pub fn sink_fanout(args: &ExpArgs) -> Value {
    use logpipeline::{BulkSink, FanOut, FaultPlan, SinkLaneConfig, SinkSpec, SpillConfig};

    let n = (20_000.0 * (args.scale / 0.05).clamp(0.2, 10.0)) as u64;
    let records = logpipeline::testsupport::sample_records(0, n);
    let chunk = 512;
    let outage = Duration::from_millis(400);

    // One arm: run `n` records through a single-lane fan-out and report
    // (delivered/s, snapshot, seconds from outage end to fully drained).
    let run = |plan: FaultPlan, spill: Option<&str>| {
        let spill_dir = spill.map(|tag| {
            let dir = std::path::PathBuf::from(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../target/tmp-bench-sink"
            ))
            .join(format!("{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        });
        let sink = Arc::new(BulkSink::new("bench", plan));
        sink.start_clock();
        let mut lane = SinkLaneConfig::default().with_retry(
            6,
            Duration::from_millis(1),
            Duration::from_millis(25),
        );
        if let Some(dir) = &spill_dir {
            lane = lane.with_spill(SpillConfig::new(dir));
        }
        let fan_out = FanOut::open(vec![SinkSpec::with_config(sink.clone(), lane)], None)
            .expect("open fan-out");
        let start = Instant::now();
        for batch in records.chunks(chunk) {
            fan_out.submit(batch);
        }
        let deadline = start + Duration::from_secs(120);
        let mut drained_at = None;
        while Instant::now() < deadline {
            let s = &fan_out.snapshots()[0];
            if s.in_flight == 0 && s.spilled_pending == 0 && s.delivered + s.dropped == n {
                drained_at = Some(Instant::now());
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let elapsed = drained_at.unwrap_or_else(Instant::now) - start;
        fan_out.shutdown(Duration::from_secs(5));
        let snap = fan_out.snapshots().remove(0);
        if let Some(dir) = &spill_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
        let recovery = drained_at
            .map(|t| (t - start).saturating_sub(outage).as_secs_f64())
            .unwrap_or(f64::NAN);
        (
            snap.delivered as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
            snap,
            recovery,
        )
    };

    let (healthy_rate, healthy, _) = run(FaultPlan::healthy().with_seed(args.seed), None);
    let (errors_rate, errors, _) = run(
        FaultPlan::healthy()
            .with_seed(args.seed)
            .with_error_rate(0.05),
        None,
    );
    let (outage_rate, outaged, recovery_seconds) = run(
        FaultPlan::healthy()
            .with_seed(args.seed)
            .with_outage(Duration::ZERO, outage),
        Some("outage"),
    );
    assert!(healthy.ledger_balanced(), "{healthy:?}");
    assert!(errors.ledger_balanced(), "{errors:?}");
    assert!(outaged.ledger_balanced(), "{outaged:?}");
    assert_eq!(
        outaged.dropped, 0,
        "spill-backed outage arm must be lossless"
    );

    serde_json::json!({
        "n_messages": n,
        "healthy_msgs_per_sec": healthy_rate,
        "errors_5pct_msgs_per_sec": errors_rate,
        "errors_5pct_retries": errors.retries,
        "outage_msgs_per_sec": outage_rate,
        "outage_ms": outage.as_millis() as u64,
        "outage_spilled_records": outaged.spilled,
        "outage_replayed_records": outaged.replayed,
        "recovery_seconds": recovery_seconds,
        "lossless_under_outage": outaged.dropped == 0,
        "gate": "ledger balanced in every arm; outage arm lossless",
    })
}

/// Reassemble the standalone `BENCH_throughput.json` document (the PR 1
/// speedup-floor evidence) from an [`xp_throughput`] result value.
pub fn xp_throughput_bench_json(value: &Value) -> Value {
    let section = |key: &str| value.get(key).cloned().unwrap_or(Value::Null);
    let bvs = section("batch_vs_scalar");
    serde_json::json!({
        "experiment": "xp_throughput_batch_vs_scalar",
        "scale": section("scale"),
        "seed": section("seed"),
        "n_messages": bvs.get("n_messages").cloned().unwrap_or(Value::Null),
        "classifiers": bvs.get("classifiers").cloned().unwrap_or(Value::Null),
        "listener": section("listener"),
        "live_batching": section("live_batching"),
    })
}

// ---------------------------------------------------------------- X3 online

fn cnb_accuracy(model: &ComplementNaiveBayes, features: &[SparseVec], labels: &[usize]) -> f64 {
    let preds = model.predict_batch(features);
    preds.iter().zip(labels).filter(|(p, l)| p == l).count() as f64 / labels.len().max(1) as f64
}

/// Experiment X3 — online adaptation to firmware drift.
pub fn xp_online(args: &ExpArgs) -> ExperimentOutput {
    let corpus = args.corpus();
    let mut r = String::new();
    let _ = writeln!(
        r,
        "Experiment X3: online adaptation to firmware drift ({} messages, scale {})\n",
        corpus.len(),
        args.scale
    );

    let config = EvalConfig {
        seed: args.seed,
        ..EvalConfig::default()
    };
    let split = prepare_split(&corpus, &config);

    let mut drift = DriftModel::new(DriftConfig {
        seed: args.seed ^ 0x0111e,
        vendor_jargon: true,
        ..DriftConfig::default()
    });
    let drifted_train_texts = drift.mutate_all(&split.train_texts);
    let drifted_test_texts = drift.mutate_all(&split.test_texts);
    let drifted_test: Vec<SparseVec> = drifted_test_texts
        .iter()
        .map(|t| split.pipeline.transform(t))
        .collect();

    let mut deployed = ComplementNaiveBayes::new(ComplementNbConfig::default());
    deployed.fit(&split.train);
    let clean_acc = cnb_accuracy(&deployed, &split.test.features, &split.test.labels);
    let static_acc = cnb_accuracy(&deployed, &drifted_test, &split.test.labels);

    let mut rows = vec![
        vec![
            "deployed model, clean test".to_string(),
            format!("{clean_acc:.4}"),
            "-".to_string(),
        ],
        vec![
            "deployed model, drifted test (no update)".to_string(),
            format!("{static_acc:.4}"),
            "0".to_string(),
        ],
    ];
    let mut json_rows = vec![
        serde_json::json!({"condition": "clean", "accuracy": clean_acc, "labels_used": 0}),
        serde_json::json!({"condition": "static_drifted", "accuracy": static_acc, "labels_used": 0}),
    ];

    for fraction in [0.02, 0.05, 0.10, 0.25] {
        let n_labeled = ((split.train.len() as f64) * fraction) as usize;
        let fresh_features: Vec<SparseVec> = drifted_train_texts[..n_labeled]
            .iter()
            .map(|t| split.pipeline.transform(t))
            .collect();
        let fresh = Dataset::new(
            fresh_features,
            split.train.labels[..n_labeled].to_vec(),
            split.train.class_names.clone(),
        );
        let mut adapted = deployed.clone();
        adapted.partial_fit(&fresh);
        let acc = cnb_accuracy(&adapted, &drifted_test, &split.test.labels);
        rows.push(vec![
            format!(
                "partial_fit on {:.0}% labeled drifted traffic",
                fraction * 100.0
            ),
            format!("{acc:.4}"),
            n_labeled.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "condition": format!("partial_fit_{fraction}"),
            "accuracy": acc,
            "labels_used": n_labeled,
        }));
    }

    let oov = |texts: &[String]| -> f64 {
        let mut known = 0usize;
        let mut total = 0usize;
        for t in texts {
            for tok in split.pipeline.preprocess(t) {
                total += 1;
                if split.pipeline.vectorizer().vocabulary().get(&tok).is_some() {
                    known += 1;
                }
            }
        }
        1.0 - known as f64 / total.max(1) as f64
    };
    let oov_clean = oov(&split.test_texts);
    let oov_drifted = oov(&drifted_test_texts);
    let _ = writeln!(
        r,
        "out-of-vocabulary token rate: {:.1}% clean test → {:.1}% drifted test\n",
        oov_clean * 100.0,
        oov_drifted * 100.0
    );

    for fraction in [0.05, 0.25] {
        let n_labeled = ((split.train.len() as f64) * fraction) as usize;
        let mut combined_texts: Vec<&str> = split.train_texts.iter().map(String::as_str).collect();
        combined_texts.extend(drifted_train_texts[..n_labeled].iter().map(String::as_str));
        let mut combined_labels = split.train.labels.clone();
        combined_labels.extend_from_slice(&split.train.labels[..n_labeled]);

        let mut refit_pipeline = FeaturePipeline::new(FeatureConfig::default());
        let combined_features = refit_pipeline.fit_transform(&combined_texts);
        let combined = Dataset::new(
            combined_features,
            combined_labels,
            split.train.class_names.clone(),
        );
        let mut refreshed = ComplementNaiveBayes::new(ComplementNbConfig::default());
        refreshed.fit(&combined);
        let refit_test: Vec<SparseVec> = drifted_test_texts
            .iter()
            .map(|t| refit_pipeline.transform(t))
            .collect();
        let acc = cnb_accuracy(&refreshed, &refit_test, &split.test.labels);
        rows.push(vec![
            format!(
                "vocabulary refit + {:.0}% labeled drifted traffic",
                fraction * 100.0
            ),
            format!("{acc:.4}"),
            n_labeled.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "condition": format!("vocab_refit_{fraction}"),
            "accuracy": acc,
            "labels_used": n_labeled,
        }));
    }

    let hasher = HashingVectorizer {
        signed: false,
        ..HashingVectorizer::default()
    };
    let hash_vec = |texts: &[String]| -> Vec<SparseVec> {
        texts
            .iter()
            .map(|t| hasher.transform(&split.pipeline.preprocess(t)))
            .collect()
    };
    let hash_train = Dataset::new(
        hash_vec(&split.train_texts),
        split.train.labels.clone(),
        split.train.class_names.clone(),
    );
    let mut hashed_model = ComplementNaiveBayes::new(ComplementNbConfig::default());
    hashed_model.fit(&hash_train);
    let acc_clean = cnb_accuracy(
        &hashed_model,
        &hash_vec(&split.test_texts),
        &split.test.labels,
    );
    let acc_drift = cnb_accuracy(
        &hashed_model,
        &hash_vec(&drifted_test_texts),
        &split.test.labels,
    );
    rows.push(vec![
        format!("hashing features (no vocabulary), drifted test [clean: {acc_clean:.4}]"),
        format!("{acc_drift:.4}"),
        "0".to_string(),
    ]);
    json_rows.push(serde_json::json!({
        "condition": "hashing_features",
        "accuracy": acc_drift,
        "accuracy_clean": acc_clean,
        "labels_used": 0,
    }));

    let bucket_acc = |b: &BucketBaseline, texts: &[String]| -> f64 {
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let preds = b.classify_batch(&refs);
        preds
            .iter()
            .zip(&split.test.labels)
            .filter(|(p, &l)| p.category.index() == l)
            .count() as f64
            / texts.len().max(1) as f64
    };
    let clean_pairs: Vec<(String, Category)> = split
        .train_texts
        .iter()
        .zip(&split.train.labels)
        .map(|(t, &l)| (t.clone(), Category::from_index(l).expect("valid label")))
        .collect();
    let bucket_static = BucketBaseline::train(7, &clean_pairs);
    let acc = bucket_acc(&bucket_static, &drifted_test_texts);
    rows.push(vec![
        "bucket baseline, drifted test (no update)".to_string(),
        format!("{acc:.4}"),
        "0".to_string(),
    ]);
    json_rows.push(serde_json::json!({
        "condition": "bucket_static",
        "accuracy": acc,
        "labels_used": 0,
    }));
    for fraction in [0.05, 0.25] {
        let n_labeled = ((split.train.len() as f64) * fraction) as usize;
        let mut bucket = BucketBaseline::train(7, &clean_pairs);
        let before = bucket.n_buckets();
        for (t, &l) in drifted_train_texts[..n_labeled]
            .iter()
            .zip(&split.train.labels)
        {
            bucket.absorb(t, Category::from_index(l).expect("valid label"));
        }
        let new_exemplars = bucket.n_buckets() - before;
        let acc = bucket_acc(&bucket, &drifted_test_texts);
        rows.push(vec![
            format!(
                "bucket baseline + {:.0}% absorbed drifted traffic ({new_exemplars} new exemplars)",
                fraction * 100.0
            ),
            format!("{acc:.4}"),
            n_labeled.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "condition": format!("bucket_absorb_{fraction}"),
            "accuracy": acc,
            "labels_used": n_labeled,
            "new_exemplars": new_exemplars,
        }));
    }

    let drifted_corpus: Vec<(String, Category)> = drifted_train_texts
        .iter()
        .zip(&split.train.labels)
        .map(|(t, &l)| (t.clone(), Category::from_index(l).expect("valid label")))
        .collect();
    let mut new_pipeline = FeaturePipeline::new(FeatureConfig::default());
    let msgs: Vec<&str> = drifted_corpus.iter().map(|(m, _)| m.as_str()).collect();
    let new_train_features = new_pipeline.fit_transform(&msgs);
    let new_train = Dataset::new(
        new_train_features,
        split.train.labels.clone(),
        split.train.class_names.clone(),
    );
    let mut retrained = ComplementNaiveBayes::new(ComplementNbConfig::default());
    retrained.fit(&new_train);
    let new_test: Vec<SparseVec> = drifted_test_texts
        .iter()
        .map(|t| new_pipeline.transform(t))
        .collect();
    let retrain_acc = cnb_accuracy(&retrained, &new_test, &split.test.labels);
    rows.push(vec![
        "full retrain (fresh vocabulary, all labels)".to_string(),
        format!("{retrain_acc:.4}"),
        split.train.len().to_string(),
    ]);
    json_rows.push(serde_json::json!({
        "condition": "full_retrain",
        "accuracy": retrain_acc,
        "labels_used": split.train.len(),
    }));

    let _ = writeln!(
        r,
        "{}",
        render_table(
            &["Condition", "Accuracy on drifted test", "Labels required"],
            &rows
        )
    );
    let _ = writeln!(
        r,
        "finding (the paper's titular hope, quantified): the TF-IDF + CNB pipeline is"
    );
    let _ = writeln!(
        r,
        "inherently drift-robust — redundant within-message vocabulary keeps accuracy near"
    );
    let _ = writeln!(
        r,
        "its clean level even at 21% OOV, so NO maintenance (partial_fit, vocabulary"
    );
    let _ = writeln!(
        r,
        "refresh, or full retrain) is needed. The bucket baseline is the opposite: it"
    );
    let _ = writeln!(
        r,
        "loses ~30 points to the same drift and can only claw them back by absorbing"
    );
    let _ = writeln!(
        r,
        "labeled exemplars — the \"constant retraining\" the Background laments."
    );

    let value = serde_json::json!({
        "experiment": "xp_online",
        "scale": args.scale,
        "seed": args.seed,
        "oov_clean": oov_clean,
        "oov_drifted": oov_drifted,
        "rows": json_rows,
    });
    ExperimentOutput { value, report: r }
}

// ---------------------------------------------------------------- XA ablation

/// Train on the clean training half, then score the clean test half and a
/// firmware-drifted copy of the *same* test half — robustness to rewording
/// is exactly what lemmatization (§4.3.2) is for.
fn run_ablation_variant(
    corpus: &[(String, Category)],
    features: FeatureConfig,
    seed: u64,
) -> (f64, f64, f64, f64) {
    let config = EvalConfig {
        seed,
        features,
        ..EvalConfig::default()
    };
    let split = prepare_split(corpus, &config);
    let mut model = ComplementNaiveBayes::new(ComplementNbConfig::default());
    let eval = evaluate_model(&mut model, &split);

    let mut drift = DriftModel::new(DriftConfig {
        seed: seed ^ 0xab1a,
        ..DriftConfig::default()
    });
    let drifted_texts = drift.mutate_all(&split.test_texts);
    let drifted_features: Vec<_> = drifted_texts
        .iter()
        .map(|t| split.pipeline.transform(t))
        .collect();
    let preds = model.predict_batch(&drifted_features);
    let cm = hetsyslog_ml::ConfusionMatrix::from_predictions(
        &split.test.class_names,
        &split.test.labels,
        &preds,
    );
    (
        eval.report.weighted_f1,
        cm.weighted_f1(),
        eval.report.train_seconds,
        eval.report.test_seconds,
    )
}

/// Ablation studies over the DESIGN.md design choices.
pub fn xp_ablation(args: &ExpArgs) -> ExperimentOutput {
    let corpus = args.corpus();
    let mut r = String::new();
    let _ = writeln!(
        r,
        "Ablation studies (Complement NB probe, {} messages, scale {})\n",
        corpus.len(),
        args.scale
    );

    let variants: Vec<(&str, FeatureConfig)> = vec![
        ("lemmatize + tf-idf (paper)", FeatureConfig::default()),
        (
            "no lemmatization",
            FeatureConfig {
                lemmatize: false,
                ..FeatureConfig::default()
            },
        ),
        (
            "word bigrams (ngram_range 1-2)",
            FeatureConfig {
                word_ngrams: 2,
                ..FeatureConfig::default()
            },
        ),
        (
            "raw term frequency (no idf, no norm)",
            FeatureConfig {
                tfidf: TfidfConfig {
                    min_df: 2,
                    smooth_idf: true,
                    l2_normalize: false,
                    sublinear_tf: false,
                    ..TfidfConfig::default()
                },
                ..FeatureConfig::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (label, features) in variants {
        let (f1, f1_drift, train_s, test_s) = run_ablation_variant(&corpus, features, args.seed);
        rows.push(vec![
            label.to_string(),
            format!("{f1:.5}"),
            format!("{f1_drift:.5}"),
            fmt_seconds(train_s),
            fmt_seconds(test_s),
        ]);
        json_rows.push(serde_json::json!({
            "variant": label,
            "weighted_f1": f1,
            "weighted_f1_drifted": f1_drift,
            "train_seconds": train_s,
            "test_seconds": test_s,
        }));
    }
    let _ = writeln!(
        r,
        "{}",
        render_table(
            &[
                "Preprocessing",
                "wF1 (clean test)",
                "wF1 (drifted test)",
                "Train",
                "Test"
            ],
            &rows
        )
    );

    let filter = NoiseFilter::train(3, &corpus);
    let noise_total = corpus
        .iter()
        .filter(|(_, c)| *c == Category::Unimportant)
        .count();
    let noise_texts: Vec<&str> = corpus
        .iter()
        .filter(|(_, c)| *c == Category::Unimportant)
        .map(|(m, _)| m.as_str())
        .collect();
    let caught = noise_texts.iter().filter(|m| filter.is_noise(m)).count();
    let signal_texts: Vec<&str> = corpus
        .iter()
        .filter(|(_, c)| *c != Category::Unimportant)
        .map(|(m, _)| m.as_str())
        .collect();
    let false_positives = signal_texts.iter().filter(|m| filter.is_noise(m)).count();
    let _ = writeln!(
        r,
        "Unimportant pre-filter (threshold 3): {} patterns catch {caught}/{noise_total} noise \
         messages with {false_positives}/{} false positives on signal.",
        filter.n_patterns(),
        signal_texts.len()
    );

    let masked = BucketBaseline::train(7, &corpus);
    let raw = BucketBaseline::train_raw(7, &corpus);
    let _ = writeln!(
        r,
        "Bucket masking: {} exemplars masked vs {} raw ({:.1}x labeling-burden reduction)",
        masked.n_buckets(),
        raw.n_buckets(),
        raw.n_buckets() as f64 / masked.n_buckets().max(1) as f64
    );

    let config = EvalConfig {
        seed: args.seed,
        ..EvalConfig::default()
    };
    let split = prepare_split(&corpus, &config);
    let mut plain = ComplementNaiveBayes::new(ComplementNbConfig::default());
    plain.fit(&split.train);
    let balanced: Dataset = split.train.random_oversample(args.seed);
    let mut over = ComplementNaiveBayes::new(ComplementNbConfig::default());
    over.fit(&balanced);
    let slurm = Category::SlurmIssue.index();
    let recall = |model: &ComplementNaiveBayes| -> f64 {
        let preds = model.predict_batch(&split.test.features);
        let mut hit = 0usize;
        let mut total = 0usize;
        for (p, &t) in preds.iter().zip(&split.test.labels) {
            if t == slurm {
                total += 1;
                if *p == slurm {
                    hit += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            hit as f64 / total as f64
        }
    };
    let mut smoted = ComplementNaiveBayes::new(ComplementNbConfig::default());
    smoted.fit(&hetsyslog_ml::smote_oversample(&split.train, 5, args.seed));
    let mut adasyned = ComplementNaiveBayes::new(ComplementNbConfig::default());
    adasyned.fit(&hetsyslog_ml::adasyn_oversample(&split.train, 5, args.seed));
    let _ = writeln!(
        r,
        "Oversampling: Slurm-Issues recall {:.3} (imbalanced) → {:.3} (random) → {:.3} (SMOTE) → {:.3} (ADASYN)",
        recall(&plain),
        recall(&over),
        recall(&smoted),
        recall(&adasyned)
    );

    let value = serde_json::json!({
        "experiment": "xp_ablation",
        "scale": args.scale,
        "seed": args.seed,
        "preprocessing": json_rows,
        "prefilter": {
            "patterns": filter.n_patterns(),
            "caught": caught,
            "noise_total": noise_total,
            "false_positives": false_positives,
            "signal_total": signal_texts.len(),
        },
        "bucket_masking": {
            "masked_exemplars": masked.n_buckets(),
            "raw_exemplars": raw.n_buckets(),
        },
        "oversampling": {
            "slurm_recall_plain": recall(&plain),
            "slurm_recall_oversampled": recall(&over),
            "slurm_recall_smote": recall(&smoted),
            "slurm_recall_adasyn": recall(&adasyned),
        },
    });
    ExperimentOutput { value, report: r }
}

// ------------------------------------------------------- differential oracle

/// One model's scalar-vs-batch agreement result.
pub struct DifferentialResult {
    /// Model display name.
    pub model: String,
    /// Split variant the check ran on.
    pub variant: &'static str,
    /// Test rows compared.
    pub n: usize,
    /// Rows where the scalar and batched predictions disagreed.
    pub mismatches: usize,
    /// Index of the first disagreement, if any.
    pub first_mismatch: Option<usize>,
}

/// The differential oracle (DESIGN.md §5's bit-identity invariant, checked
/// end to end): re-score the test split through both the scalar
/// `Classifier` path (per-text `transform` + `predict`) and the batched
/// CSR path (`transform_batch_csr` + `predict_csr`) for every model in the
/// paper suite, on both the default split and the drop-unimportant
/// ablation split. Any disagreement is a conformance failure.
pub fn differential_oracle(args: &ExpArgs) -> Vec<DifferentialResult> {
    let corpus = args.corpus();
    let mut out = Vec::new();
    for (variant, drop_unimportant) in [("default", false), ("drop_unimportant", true)] {
        let config = EvalConfig {
            seed: args.seed,
            drop_unimportant,
            ..EvalConfig::default()
        };
        let split = prepare_split(&corpus, &config);
        let texts: Vec<&str> = split.test_texts.iter().map(String::as_str).collect();
        let matrix = split.pipeline.transform_batch_csr(&texts);
        for mut model in paper_suite(args.seed) {
            model.fit(&split.train);
            let scalar: Vec<usize> = texts
                .iter()
                .map(|t| model.predict(&split.pipeline.transform(t)))
                .collect();
            let batch = model.predict_csr(&matrix);
            let mismatches = scalar.iter().zip(&batch).filter(|(a, b)| a != b).count();
            let first_mismatch = scalar.iter().zip(&batch).position(|(a, b)| a != b);
            out.push(DifferentialResult {
                model: model.name().to_string(),
                variant,
                n: scalar.len(),
                mismatches,
                first_mismatch,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_args() -> ExpArgs {
        ExpArgs {
            scale: 0.005,
            seed: 42,
            json_path: None,
            flags: Vec::new(),
        }
    }

    #[test]
    fn table2_output_is_deterministic() {
        let args = tiny_args();
        let a = table2(&args);
        let b = table2(&args);
        assert_eq!(a.value, b.value);
        assert_eq!(a.report, b.report);
        assert_eq!(
            a.value.get("experiment").and_then(|v| v.as_str()),
            Some("table2")
        );
    }

    #[test]
    fn differential_oracle_covers_suite_both_variants() {
        let results = differential_oracle(&tiny_args());
        assert_eq!(results.len(), 16, "8 models x 2 split variants");
        for res in &results {
            assert_eq!(
                res.mismatches, 0,
                "{} [{}] diverged between scalar and batch paths",
                res.model, res.variant
            );
            assert!(res.n > 0);
        }
    }
}
