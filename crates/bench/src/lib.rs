//! Shared harness for the evaluation binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see DESIGN.md §3 for the index). This library holds the
//! pieces they share: corpus construction, a tiny argument parser, table
//! rendering, and JSON result emission for EXPERIMENTS.md provenance.

use datagen::{generate_corpus, CorpusConfig};
use hetsyslog_core::Category;
use std::collections::BTreeMap;
use std::fmt::Write as _;

pub mod experiments;
pub mod runner;

/// Common command-line options for experiment binaries.
///
/// Recognized flags: `--scale <f64>`, `--seed <u64>`, `--json <path>`,
/// plus free-form boolean flags collected verbatim.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Corpus scale relative to the paper's 196k messages.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Where to write machine-readable results (None = stdout only).
    pub json_path: Option<String>,
    /// Remaining boolean flags (`--drop-unimportant`, …).
    pub flags: Vec<String>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            scale: 0.05,
            seed: 42,
            json_path: None,
            flags: Vec::new(),
        }
    }
}

impl ExpArgs {
    /// Parse from `std::env::args`, panicking with a usage hint on
    /// malformed values.
    pub fn parse() -> ExpArgs {
        let mut out = ExpArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    out.scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale requires a float");
                }
                "--seed" => {
                    out.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed requires an integer");
                }
                "--json" => {
                    out.json_path = Some(args.next().expect("--json requires a path"));
                }
                other => out.flags.push(other.to_string()),
            }
        }
        out
    }

    /// Is a boolean flag present?
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Corpus configuration at the requested scale.
    pub fn corpus_config(&self) -> CorpusConfig {
        CorpusConfig {
            scale: self.scale,
            seed: self.seed,
            min_per_class: 12,
        }
    }

    /// Generate the labeled corpus as `(text, category)` pairs.
    pub fn corpus(&self) -> Vec<(String, Category)> {
        datagen::corpus::as_pairs(&generate_corpus(&self.corpus_config()))
    }
}

/// Render an ASCII table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n_cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let render_row = |cells: &[String], out: &mut String| {
        for (i, cell) in cells.iter().enumerate().take(n_cols) {
            let _ = write!(out, "| {cell:<width$} ", width = widths[i]);
        }
        out.push_str("|\n");
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let _ = writeln!(out, "+{sep}+");
    render_row(&header_cells, &mut out);
    let _ = writeln!(out, "+{sep}+");
    for row in rows {
        render_row(row, &mut out);
    }
    let _ = writeln!(out, "+{sep}+");
    out
}

/// Write experiment results as canonical JSON (recursively sorted keys,
/// trailing newline) to `path`, creating parents. Canonical form keeps
/// the committed goldens diffable and lets the conformance runner compare
/// serializations byte for byte.
pub fn write_json(path: &str, value: &serde_json::Value) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(path, hetsyslog_core::to_canonical_json(value))
        .unwrap_or_else(|e| panic!("failed writing {path}: {e}"));
    println!("(results written to {path})");
}

/// Per-category counts of a labeled corpus, in taxonomy order.
pub fn category_counts(corpus: &[(String, Category)]) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for &c in &Category::ALL {
        counts.insert(c.label(), 0);
    }
    for (_, c) in corpus {
        *counts.get_mut(c.label()).expect("all labels present") += 1;
    }
    counts
}

/// Format seconds compactly (µs/ms/s).
pub fn fmt_seconds(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["model", "f1"],
            &[
                vec!["kNN".to_string(), "0.998".to_string()],
                vec!["Random Forest".to_string(), "0.9995".to_string()],
            ],
        );
        assert!(t.contains("| model"));
        assert!(t.contains("| Random Forest | 0.9995 |"));
        // All lines same width.
        let widths: Vec<usize> = t.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn category_counts_cover_all_labels() {
        let corpus = vec![
            ("a".to_string(), Category::ThermalIssue),
            ("b".to_string(), Category::ThermalIssue),
        ];
        let counts = category_counts(&corpus);
        assert_eq!(counts.len(), 8);
        assert_eq!(counts["Thermal Issue"], 2);
        assert_eq!(counts["Unimportant"], 0);
    }

    #[test]
    fn fmt_seconds_ranges() {
        assert!(fmt_seconds(0.0000005).ends_with("µs"));
        assert!(fmt_seconds(0.005).ends_with("ms"));
        assert!(fmt_seconds(2.5).ends_with('s'));
    }

    #[test]
    fn default_args() {
        let a = ExpArgs::default();
        assert_eq!(a.scale, 0.05);
        assert!(!a.has_flag("--drop-unimportant"));
    }
}
