//! The conformance runner behind the `repro` binary.
//!
//! Executes every DESIGN.md §3 experiment at a named scale, serializes the
//! results canonically (sorted keys, stable float formatting), and diffs
//! them against the committed goldens in `results/` under a per-field
//! tolerance spec:
//!
//! * **Exact** (the default) — counts, labels, vocabulary signatures,
//!   class names, agreement booleans must match byte for byte.
//! * **RelTol(t)** — scores such as F1 / accuracy and virtual-clock
//!   latencies may drift by a small relative amount: the check is
//!   `|actual - golden| <= t * max(|golden|, 1)`.
//! * **Ignore** — wall-clock measurements (`train_seconds`, throughput
//!   rates, listener timings) vary run to run and are never compared.
//!
//! The spec lives in [`rules_for`]; `results/README.md` documents it next
//! to the goldens themselves.

use crate::experiments::{self, ExperimentOutput};
use crate::ExpArgs;
use hetsyslog_core::{canonicalize_json, to_canonical_json};
use serde_json::Value;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

// ----------------------------------------------------------------- scales

/// A named conformance scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI scale: 1% of the paper corpus, goldens in `results/ci/`.
    Ci,
    /// Paper scale: the repo's standard 5%, goldens in `results/`.
    Paper,
}

impl Scale {
    /// Parse `ci` / `paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "ci" => Some(Scale::Ci),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The corpus scale factor this name maps to.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Ci => 0.01,
            Scale::Paper => 0.05,
        }
    }

    /// Golden subdirectory under the results root ("" = the root itself).
    pub fn subdir(self) -> &'static str {
        match self {
            Scale::Ci => "ci",
            Scale::Paper => "",
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Ci => "ci",
            Scale::Paper => "paper",
        }
    }
}

// ------------------------------------------------------- experiment index

/// One DESIGN.md §3 experiment: index code, golden file stem, title.
pub struct Experiment {
    /// The §3 index code (T1, F3b, …).
    pub code: &'static str,
    /// Golden file stem under `results/` (`<stem>.json` / `<stem>.txt`).
    pub stem: &'static str,
    /// Human-readable title.
    pub title: &'static str,
}

/// Every experiment the runner knows, in DESIGN.md §3 order.
pub const EXPERIMENTS: [Experiment; 10] = [
    Experiment {
        code: "T1",
        stem: "table1_tfidf_tokens",
        title: "Table 1: top TF-IDF tokens per category",
    },
    Experiment {
        code: "T2",
        stem: "table2_dataset",
        title: "Table 2: dataset composition + bucket economy",
    },
    Experiment {
        code: "F2",
        stem: "fig2_confusion",
        title: "Figure 2: Linear SVC confusion matrix",
    },
    Experiment {
        code: "F3",
        stem: "fig3",
        title: "Figure 3: eight traditional classifiers",
    },
    Experiment {
        code: "F3b",
        stem: "fig3_drop",
        title: "Figure 3 ablation: drop Unimportant",
    },
    Experiment {
        code: "T3",
        stem: "table3_llm",
        title: "Table 3: LLM inference cost",
    },
    Experiment {
        code: "X1",
        stem: "xp_drift",
        title: "X1: firmware drift vs classifiers",
    },
    Experiment {
        code: "X2",
        stem: "xp_throughput",
        title: "X2: end-to-end ingest throughput",
    },
    Experiment {
        code: "X3",
        stem: "xp_online",
        title: "X3: online adaptation to drift",
    },
    Experiment {
        code: "XA",
        stem: "xp_ablation",
        title: "XA: preprocessing / filter / oversampling ablations",
    },
];

/// Find an experiment by index code or golden stem (codes are matched
/// case-insensitively).
pub fn find_experiment(key: &str) -> Option<&'static Experiment> {
    EXPERIMENTS
        .iter()
        .find(|e| e.stem == key || e.code.eq_ignore_ascii_case(key))
}

/// Run one experiment by stem. `None` for an unknown stem.
pub fn run_experiment(stem: &str, args: &ExpArgs) -> Option<ExperimentOutput> {
    Some(match stem {
        "table1_tfidf_tokens" => experiments::table1(args),
        "table2_dataset" => experiments::table2(args),
        "fig2_confusion" => experiments::fig2(args),
        "fig3" => experiments::fig3(args, false),
        "fig3_drop" => experiments::fig3(args, true),
        "table3_llm" => experiments::table3(args),
        "xp_drift" => experiments::xp_drift(args),
        "xp_throughput" => experiments::xp_throughput(args),
        "xp_online" => experiments::xp_online(args),
        "xp_ablation" => experiments::xp_ablation(args),
        _ => return None,
    })
}

// ----------------------------------------------------------- tolerance spec

/// How one field is compared against its golden value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Byte-for-byte equality (the default for every field without a rule).
    Exact,
    /// `|actual - golden| <= t * max(|golden|, 1)`.
    RelTol(f64),
    /// Never compared (wall-clock measurements).
    Ignore,
}

/// One tolerance rule: a dotted path pattern plus the policy it selects.
///
/// Pattern syntax, matched against the full dotted field path:
/// * `name` matches a field named `name`;
/// * `name[*]` matches any index of array `name` (`name[3]` an exact one);
/// * `*` matches any single path segment;
/// * `**` matches any run of segments (including none).
///
/// First matching rule wins; no match means [`Policy::Exact`].
pub struct FieldRule {
    /// Dotted path pattern.
    pub pattern: &'static str,
    /// Policy applied to matching fields.
    pub policy: Policy,
}

/// Relative tolerance for scores (F1, accuracy) and virtual-clock
/// latencies. Deterministic arithmetic reproduces these exactly on one
/// platform; the slack absorbs cross-platform libm differences only.
pub const SCORE_REL_TOL: f64 = 1e-6;

/// The tolerance rules for one experiment: wall-clock fields are ignored,
/// scores and modeled latencies get [`SCORE_REL_TOL`], everything else —
/// counts, class names, vocabulary signatures — is exact.
pub fn rules_for(stem: &str) -> Vec<FieldRule> {
    let mut rules = vec![
        // Wall-clock: never comparable between runs.
        FieldRule {
            pattern: "**.train_seconds",
            policy: Policy::Ignore,
        },
        FieldRule {
            pattern: "**.test_seconds",
            policy: Policy::Ignore,
        },
        FieldRule {
            pattern: "**.preprocess_seconds",
            policy: Policy::Ignore,
        },
    ];
    match stem {
        "fig3" | "fig3_drop" => {
            // Throughput is derived from wall-clock test_seconds.
            rules.push(FieldRule {
                pattern: "rows[*].messages_per_hour",
                policy: Policy::Ignore,
            });
        }
        "table3_llm" => {
            // Virtual-clock latencies: deterministic, but still latencies.
            rules.push(FieldRule {
                pattern: "rows[*].inference_seconds",
                policy: Policy::RelTol(SCORE_REL_TOL),
            });
            rules.push(FieldRule {
                pattern: "rows[*].messages_per_hour",
                policy: Policy::RelTol(SCORE_REL_TOL),
            });
            rules.push(FieldRule {
                pattern: "max_new_tokens_ablation.*",
                policy: Policy::RelTol(SCORE_REL_TOL),
            });
        }
        "xp_throughput" => {
            // Everything measured in real time on this run's machine.
            for pattern in [
                "rows[*].seconds",
                "rows[*].messages_per_hour",
                "batch_vs_scalar.classifiers[*].scalar_msgs_per_sec",
                "batch_vs_scalar.classifiers[*].batch_msgs_per_sec",
                "batch_vs_scalar.classifiers[*].speedup",
                "listener.seconds",
                "listener.msgs_per_sec",
                // The whole live micro-batching sweep is wall-clock
                // throughput/latency on this machine; its agreement bit is
                // asserted by the release-mode CI smoke test instead.
                "live_batching",
            ] {
                rules.push(FieldRule {
                    pattern,
                    policy: Policy::Ignore,
                });
            }
        }
        _ => {}
    }
    // Scores: relative tolerance everywhere they appear.
    for pattern in [
        "**.weighted_f1",
        "**.weighted_f1_drifted",
        "**.macro_f1",
        "**.accuracy",
        "**.accuracy_before",
        "**.accuracy_after",
        "**.accuracy_clean",
        "**.orphan_rate",
        "**.oov_clean",
        "**.oov_drifted",
        "**.messages_per_exemplar",
        "**.score",
        "**.slurm_recall_plain",
        "**.slurm_recall_oversampled",
        "**.slurm_recall_smote",
        "**.slurm_recall_adasyn",
    ] {
        rules.push(FieldRule {
            pattern,
            policy: Policy::RelTol(SCORE_REL_TOL),
        });
    }
    rules
}

fn seg_matches(pat: &str, seg: &str) -> bool {
    if pat == "*" {
        return true;
    }
    if let Some(base) = pat.strip_suffix("[*]") {
        if let Some(idx) = seg.rfind('[') {
            return &seg[..idx] == base && seg.ends_with(']');
        }
        return false;
    }
    pat == seg
}

/// Does `pattern` match the dotted `path` (as segments)?
fn path_matches(pattern: &str, path: &[String]) -> bool {
    fn rec(pats: &[&str], segs: &[String]) -> bool {
        match pats.first() {
            None => segs.is_empty(),
            Some(&"**") => (0..=segs.len()).any(|k| rec(&pats[1..], &segs[k..])),
            Some(p) => !segs.is_empty() && seg_matches(p, &segs[0]) && rec(&pats[1..], &segs[1..]),
        }
    }
    let pats: Vec<&str> = pattern.split('.').collect();
    rec(&pats, path)
}

/// The policy for a field path under `rules` (first match wins).
pub fn policy_for(rules: &[FieldRule], path: &[String]) -> Policy {
    rules
        .iter()
        .find(|r| path_matches(r.pattern, path))
        .map(|r| r.policy)
        .unwrap_or(Policy::Exact)
}

// ------------------------------------------------------------- diff engine

/// One field that diverged from its golden value.
pub struct Drift {
    /// Dotted field path, prefixed with the experiment stem.
    pub path: String,
    /// The committed golden value (serialized).
    pub golden: String,
    /// The value this run produced (serialized).
    pub actual: String,
    /// Why it counts as drift (policy + magnitude).
    pub note: String,
}

fn fmt_leaf(v: &Value) -> String {
    let mut c = v.clone();
    canonicalize_json(&mut c);
    serde_json::to_string(&c).unwrap_or_else(|_| format!("{c:?}"))
}

fn dotted(path: &[String]) -> String {
    path.join(".")
}

#[allow(clippy::too_many_arguments)]
fn diff_rec(
    stem: &str,
    golden: &Value,
    actual: &Value,
    rules: &[FieldRule],
    path: &mut Vec<String>,
    out: &mut Vec<Drift>,
) {
    if policy_for(rules, path) == Policy::Ignore {
        return;
    }
    let mut push = |golden: String, actual: String, note: String| {
        out.push(Drift {
            path: format!("{stem}.{}", dotted(path)),
            golden,
            actual,
            note,
        });
    };
    match (golden, actual) {
        (Value::Object(g), Value::Object(a)) => {
            for (k, gv) in g {
                match a.iter().find(|(ak, _)| ak == k) {
                    Some((_, av)) => {
                        path.push(k.clone());
                        diff_rec(stem, gv, av, rules, path, out);
                        path.pop();
                    }
                    None => {
                        path.push(k.clone());
                        if policy_for(rules, path) != Policy::Ignore {
                            let p = format!("{stem}.{}", dotted(path));
                            out.push(Drift {
                                path: p,
                                golden: fmt_leaf(gv),
                                actual: "<missing>".to_string(),
                                note: "field present in golden, absent in this run".to_string(),
                            });
                        }
                        path.pop();
                    }
                }
            }
            for (k, av) in a {
                if !g.iter().any(|(gk, _)| gk == k) {
                    path.push(k.clone());
                    if policy_for(rules, path) != Policy::Ignore {
                        let p = format!("{stem}.{}", dotted(path));
                        out.push(Drift {
                            path: p,
                            golden: "<missing>".to_string(),
                            actual: fmt_leaf(av),
                            note: "field absent in golden, present in this run".to_string(),
                        });
                    }
                    path.pop();
                }
            }
        }
        (Value::Array(g), Value::Array(a)) => {
            if g.len() != a.len() {
                push(
                    format!("array of {}", g.len()),
                    format!("array of {}", a.len()),
                    "array length mismatch".to_string(),
                );
            }
            for (i, (gv, av)) in g.iter().zip(a).enumerate() {
                let last = path.pop().unwrap_or_default();
                path.push(format!("{last}[{i}]"));
                diff_rec(stem, gv, av, rules, path, out);
                path.pop();
                path.push(last);
            }
        }
        (Value::Number(g), Value::Number(a)) => {
            let (gf, af) = (g.as_f64(), a.as_f64());
            match policy_for(rules, path) {
                Policy::RelTol(t) => {
                    let bound = t * gf.abs().max(1.0);
                    if (af - gf).abs() > bound {
                        push(
                            fmt_leaf(golden),
                            fmt_leaf(actual),
                            format!(
                                "rel_tol({t:e}) exceeded: |Δ| = {:e} > {bound:e}",
                                (af - gf).abs()
                            ),
                        );
                    }
                }
                _ => {
                    if golden != actual && gf.to_bits() != af.to_bits() {
                        push(
                            fmt_leaf(golden),
                            fmt_leaf(actual),
                            "exact-match field differs".to_string(),
                        );
                    }
                }
            }
        }
        _ => {
            if golden != actual {
                push(
                    fmt_leaf(golden),
                    fmt_leaf(actual),
                    if golden.describe() == actual.describe() {
                        "exact-match field differs".to_string()
                    } else {
                        format!(
                            "type changed: {} → {}",
                            golden.describe(),
                            actual.describe()
                        )
                    },
                );
            }
        }
    }
}

/// Diff an experiment's actual value against its golden under the
/// experiment's tolerance rules. Returned drift paths are prefixed with
/// the stem (`fig3.rows[2].weighted_f1`).
pub fn diff_against_golden(stem: &str, golden: &Value, actual: &Value) -> Vec<Drift> {
    let rules = rules_for(stem);
    let mut out = Vec::new();
    let mut path = Vec::new();
    diff_rec(stem, golden, actual, &rules, &mut path, &mut out);
    out
}

/// Strip every Ignore-policy (wall-clock) field from an experiment value,
/// leaving only the deterministic payload. The determinism tests compare
/// the canonical serialization of the redacted value byte for byte.
pub fn redact_volatile(stem: &str, value: &mut Value) {
    let rules = rules_for(stem);
    fn rec(rules: &[FieldRule], path: &mut Vec<String>, value: &mut Value) {
        match value {
            Value::Object(entries) => {
                entries.retain(|(k, _)| {
                    path.push(k.clone());
                    let keep = policy_for(rules, path) != Policy::Ignore;
                    path.pop();
                    keep
                });
                for (k, v) in entries.iter_mut() {
                    path.push(k.clone());
                    rec(rules, path, v);
                    path.pop();
                }
            }
            Value::Array(items) => {
                for (i, v) in items.iter_mut().enumerate() {
                    let last = path.pop().unwrap_or_default();
                    path.push(format!("{last}[{i}]"));
                    rec(rules, path, v);
                    path.pop();
                    path.push(last);
                }
            }
            _ => {}
        }
    }
    rec(&rules, &mut Vec::new(), value);
}

// ------------------------------------------------------------ golden files

/// The default goldens root: the committed `results/` directory of this
/// repository.
pub fn default_goldens_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Where `stem`'s golden JSON lives for `scale` under `root`.
pub fn golden_path(root: &Path, scale: Scale, stem: &str) -> PathBuf {
    root.join(scale.subdir()).join(format!("{stem}.json"))
}

/// Load and parse a golden file.
pub fn load_golden(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read golden {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse golden {}: {e}", path.display()))
}

/// Write `out` as `stem`'s golden (canonical JSON + the text report).
pub fn write_golden(
    root: &Path,
    scale: Scale,
    stem: &str,
    out: &ExperimentOutput,
) -> std::io::Result<PathBuf> {
    let json_path = golden_path(root, scale, stem);
    if let Some(parent) = json_path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&json_path, to_canonical_json(&out.value))?;
    std::fs::write(json_path.with_extension("txt"), &out.report)?;
    Ok(json_path)
}

// ------------------------------------------------------------ drift report

/// Render the human-readable conformance report.
pub fn render_drift_report(
    scale: Scale,
    drifts: &[Drift],
    errors: &[String],
    differential_mismatches: &[String],
) -> String {
    let mut r = String::new();
    let _ = writeln!(
        r,
        "conformance ({} scale): {} drifted field(s), {} error(s), {} differential mismatch(es)",
        scale.name(),
        drifts.len(),
        errors.len(),
        differential_mismatches.len()
    );
    for d in drifts {
        let _ = writeln!(r, "\nDRIFT {}", d.path);
        let _ = writeln!(r, "  golden: {}", d.golden);
        let _ = writeln!(r, "  actual: {}", d.actual);
        let _ = writeln!(r, "  note:   {}", d.note);
    }
    for e in errors {
        let _ = writeln!(r, "\nERROR {e}");
    }
    for m in differential_mismatches {
        let _ = writeln!(r, "\nDIFFERENTIAL {m}");
    }
    if drifts.is_empty() && errors.is_empty() && differential_mismatches.is_empty() {
        let _ = writeln!(r, "all experiments conform to their goldens.");
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segs(path: &str) -> Vec<String> {
        path.split('.').map(str::to_string).collect()
    }

    #[test]
    fn pattern_matching() {
        assert!(path_matches(
            "**.train_seconds",
            &segs("rows[3].train_seconds")
        ));
        assert!(path_matches("**.train_seconds", &segs("train_seconds")));
        assert!(!path_matches(
            "**.train_seconds",
            &segs("rows[3].test_seconds")
        ));
        assert!(path_matches(
            "rows[*].messages_per_hour",
            &segs("rows[0].messages_per_hour")
        ));
        assert!(!path_matches(
            "rows[*].messages_per_hour",
            &segs("other[0].messages_per_hour")
        ));
        assert!(path_matches(
            "max_new_tokens_ablation.*",
            &segs("max_new_tokens_ablation.capped_virtual_seconds")
        ));
        assert!(!path_matches(
            "max_new_tokens_ablation.*",
            &segs("max_new_tokens_ablation.a.b")
        ));
    }

    #[test]
    fn policy_lookup_first_match_wins() {
        let rules = rules_for("fig3");
        assert_eq!(
            policy_for(&rules, &segs("rows[2].train_seconds")),
            Policy::Ignore
        );
        assert_eq!(
            policy_for(&rules, &segs("rows[2].messages_per_hour")),
            Policy::Ignore
        );
        assert_eq!(
            policy_for(&rules, &segs("rows[2].weighted_f1")),
            Policy::RelTol(SCORE_REL_TOL)
        );
        assert_eq!(policy_for(&rules, &segs("n_train")), Policy::Exact);
    }

    #[test]
    fn diff_flags_exact_mismatch_with_named_path() {
        let golden = serde_json::json!({"n_train": 100, "n_test": 34});
        let actual = serde_json::json!({"n_train": 100, "n_test": 33});
        let drifts = diff_against_golden("fig3", &golden, &actual);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].path, "fig3.n_test");
        assert_eq!(drifts[0].golden, "34");
        assert_eq!(drifts[0].actual, "33");
    }

    #[test]
    fn diff_respects_rel_tol_and_ignore() {
        let row_g = serde_json::json!({"weighted_f1": 0.98, "train_seconds": 1.0});
        let row_a = serde_json::json!({"weighted_f1": 0.98000000001, "train_seconds": 99.0});
        let golden = serde_json::json!({"rows": [row_g]});
        let actual = serde_json::json!({"rows": [row_a]});
        assert!(diff_against_golden("fig3", &golden, &actual).is_empty());

        let row_bad = serde_json::json!({"weighted_f1": 0.90, "train_seconds": 1.0});
        let actual_bad = serde_json::json!({"rows": [row_bad]});
        let drifts = diff_against_golden("fig3", &golden, &actual_bad);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].path, "fig3.rows[0].weighted_f1");
        assert!(drifts[0].note.contains("rel_tol"));
    }

    #[test]
    fn diff_reports_missing_and_extra_fields() {
        let golden = serde_json::json!({"a": 1, "b": 2});
        let actual = serde_json::json!({"a": 1, "c": 3});
        let drifts = diff_against_golden("table2_dataset", &golden, &actual);
        let paths: Vec<&str> = drifts.iter().map(|d| d.path.as_str()).collect();
        assert!(paths.contains(&"table2_dataset.b"));
        assert!(paths.contains(&"table2_dataset.c"));
    }

    #[test]
    fn diff_reports_array_length_change() {
        let golden = serde_json::json!({"rows": [1, 2, 3]});
        let actual = serde_json::json!({"rows": [1, 2]});
        let drifts = diff_against_golden("xp_online", &golden, &actual);
        assert!(drifts.iter().any(|d| d.note.contains("length")));
    }

    #[test]
    fn redact_strips_wall_clock_only() {
        let row = serde_json::json!({"weighted_f1": 0.9, "train_seconds": 3.2, "model": "kNN"});
        let mut value = serde_json::json!({"rows": [row], "n_train": 7});
        redact_volatile("fig3", &mut value);
        let text = to_canonical_json(&value);
        assert!(!text.contains("train_seconds"));
        assert!(text.contains("weighted_f1"));
        assert!(text.contains("n_train"));
    }

    #[test]
    fn experiment_index_is_complete_and_unique() {
        assert_eq!(EXPERIMENTS.len(), 10);
        let mut stems: Vec<&str> = EXPERIMENTS.iter().map(|e| e.stem).collect();
        stems.sort_unstable();
        stems.dedup();
        assert_eq!(stems.len(), 10);
        assert!(find_experiment("F3b").is_some());
        assert!(find_experiment("fig3_drop").is_some());
        assert!(find_experiment("nope").is_none());
    }

    #[test]
    fn golden_paths_by_scale() {
        let root = Path::new("/tmp/results");
        assert_eq!(
            golden_path(root, Scale::Ci, "fig3"),
            Path::new("/tmp/results/ci/fig3.json")
        );
        assert_eq!(
            golden_path(root, Scale::Paper, "fig3"),
            Path::new("/tmp/results/fig3.json")
        );
        assert_eq!(Scale::parse("ci"), Some(Scale::Ci));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }
}
