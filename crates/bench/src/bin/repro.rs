//! `repro` — the conformance entry point (DESIGN.md §3).
//!
//! Runs every experiment in the §3 index at a named scale and either
//! checks the results against the committed goldens (`--check`, the
//! default) or rewrites the goldens (`--update`). A differential oracle
//! stage re-scores the test splits through both the scalar and the
//! batched CSR classify paths and asserts prediction identity for the
//! whole model suite.
//!
//! Exit codes: 0 = conformant, 1 = drift / differential mismatch,
//! 2 = usage or I/O error.

use bench::runner::{
    self, default_goldens_root, find_experiment, golden_path, load_golden, run_experiment,
    write_golden, Scale, EXPERIMENTS,
};
use bench::{experiments, ExpArgs};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: repro [--check | --update | --list] [options]

modes:
  --check               diff results against goldens (default)
  --update              regenerate the goldens for the chosen scale
  --list                list the experiment index and exit

options:
  --scale ci|paper      conformance scale (default: ci)
  --seed <u64>          master seed (default: 42)
  --only <keys>         comma-separated experiment codes or stems
  --goldens <dir>       goldens root (default: the repo's results/)
  --report <path>       also write the drift report to this file
  --skip-differential   skip the scalar-vs-batch differential oracle
";

#[derive(PartialEq)]
enum Mode {
    Check,
    Update,
    List,
}

struct Opts {
    mode: Mode,
    scale: Scale,
    seed: u64,
    only: Vec<&'static str>,
    goldens: PathBuf,
    report: Option<PathBuf>,
    skip_differential: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        mode: Mode::Check,
        scale: Scale::Ci,
        seed: 42,
        only: Vec::new(),
        goldens: default_goldens_root(),
        report: None,
        skip_differential: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.mode = Mode::Check,
            "--update" => opts.mode = Mode::Update,
            "--list" => opts.mode = Mode::List,
            "--scale" => {
                let v = args.next().ok_or("--scale requires ci|paper")?;
                opts.scale = Scale::parse(&v).ok_or(format!("unknown scale `{v}` (ci|paper)"))?;
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed requires an integer")?;
            }
            "--only" => {
                let v = args.next().ok_or("--only requires experiment keys")?;
                for key in v.split(',').filter(|k| !k.is_empty()) {
                    let exp = find_experiment(key)
                        .ok_or(format!("unknown experiment `{key}` (try --list)"))?;
                    if !opts.only.contains(&exp.stem) {
                        opts.only.push(exp.stem);
                    }
                }
            }
            "--goldens" => {
                opts.goldens = PathBuf::from(args.next().ok_or("--goldens requires a directory")?);
            }
            "--report" => {
                opts.report = Some(PathBuf::from(
                    args.next().ok_or("--report requires a path")?,
                ));
            }
            "--skip-differential" => opts.skip_differential = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn selected(opts: &Opts) -> Vec<&'static runner::Experiment> {
    EXPERIMENTS
        .iter()
        .filter(|e| opts.only.is_empty() || opts.only.contains(&e.stem))
        .collect()
}

fn run_differential(args: &ExpArgs, mismatches: &mut Vec<String>) -> (usize, usize) {
    let results = experiments::differential_oracle(args);
    let n = results.len();
    let mut bad = 0;
    for r in &results {
        if r.mismatches > 0 {
            bad += 1;
            mismatches.push(format!(
                "{} [{}]: {}/{} predictions differ between scalar and batched paths \
                 (first at test index {})",
                r.model,
                r.variant,
                r.mismatches,
                r.n,
                r.first_mismatch.unwrap_or(0),
            ));
        }
    }
    (n, bad)
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("repro: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.mode == Mode::List {
        for e in &EXPERIMENTS {
            println!("{:4} {:22} {}", e.code, e.stem, e.title);
        }
        return ExitCode::SUCCESS;
    }

    let exp_args = ExpArgs {
        scale: opts.scale.factor(),
        seed: opts.seed,
        json_path: None,
        flags: Vec::new(),
    };
    let experiments_to_run = selected(&opts);
    let n_total = experiments_to_run.len();

    let mut drifts = Vec::new();
    let mut errors = Vec::new();
    let mut differential = Vec::new();

    for (i, exp) in experiments_to_run.iter().enumerate() {
        eprintln!(
            "[{}/{n_total}] {} ({}) — {}",
            i + 1,
            exp.code,
            exp.stem,
            exp.title
        );
        let out = run_experiment(exp.stem, &exp_args).expect("indexed experiment");
        match opts.mode {
            Mode::Update => match write_golden(&opts.goldens, opts.scale, exp.stem, &out) {
                Ok(path) => eprintln!("  wrote {}", path.display()),
                Err(e) => errors.push(format!("{}: cannot write golden: {e}", exp.stem)),
            },
            Mode::Check => {
                let path = golden_path(&opts.goldens, opts.scale, exp.stem);
                match load_golden(&path) {
                    Ok(golden) => {
                        let found = runner::diff_against_golden(exp.stem, &golden, &out.value);
                        if !found.is_empty() {
                            eprintln!("  {} drifted field(s)", found.len());
                        }
                        drifts.extend(found);
                    }
                    Err(e) => errors.push(e),
                }
            }
            Mode::List => unreachable!(),
        }
    }

    let mut n_diff = 0;
    if !opts.skip_differential {
        eprintln!("[differential] scalar vs batched CSR predictions, full model suite");
        let (n, bad) = run_differential(&exp_args, &mut differential);
        n_diff = n;
        eprintln!("  {n} comparisons, {bad} with mismatches");
    }

    let mut report = runner::render_drift_report(opts.scale, &drifts, &errors, &differential);
    if opts.mode == Mode::Update {
        report = format!(
            "goldens updated for {} experiment(s) at {} scale under {}\n{report}",
            n_total,
            opts.scale.name(),
            opts.goldens.display()
        );
    }
    if !opts.skip_differential {
        report.push_str(&format!(
            "differential oracle: {n_diff} model/variant comparisons checked.\n"
        ));
    }
    print!("{report}");
    if let Some(path) = &opts.report {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("repro: cannot write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if drifts.is_empty() && errors.is_empty() && differential.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
