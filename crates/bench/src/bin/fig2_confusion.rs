//! Figure 2 — the Linear SVC confusion matrix (DESIGN.md §3 F2).
//!
//! Thin wrapper over [`bench::experiments::fig2`]; the conformance
//! runner (`repro`) executes the same code path.
//!
//! Run: `cargo run --release -p bench --bin fig2_confusion`

use bench::{experiments, write_json, ExpArgs};

fn main() {
    let args = ExpArgs::parse();
    let out = experiments::fig2(&args);
    print!("{}", out.report);
    if let Some(path) = &args.json_path {
        write_json(path, &out.value);
    }
}
