//! Figure 2 — the Linear SVC confusion matrix.
//!
//! The paper's observation to reproduce: the "Unimportant" row/column is
//! where confusion concentrates, because noise messages borrow significant
//! words from real categories.
//!
//! Run: `cargo run --release -p bench --bin fig2_confusion`

use bench::{write_json, ExpArgs};
use hetsyslog_core::eval::{evaluate_model, prepare_split, EvalConfig};
use hetsyslog_core::Category;
use hetsyslog_ml::{LinearSvc, LinearSvcConfig};

fn main() {
    let args = ExpArgs::parse();
    let corpus = args.corpus();
    println!(
        "Figure 2 reproduction: Linear SVC confusion matrix ({} messages, scale {})\n",
        corpus.len(),
        args.scale
    );

    let config = EvalConfig {
        seed: args.seed,
        ..EvalConfig::default()
    };
    let split = prepare_split(&corpus, &config);
    let mut model = LinearSvc::new(LinearSvcConfig::default());
    let eval = evaluate_model(&mut model, &split);

    println!("{}", eval.confusion);
    println!("{}", eval.confusion.classification_report());
    println!(
        "weighted F1 = {:.6}, accuracy = {:.6}",
        eval.report.weighted_f1, eval.report.accuracy
    );
    match eval.confusion.most_confused() {
        Some((t, p, n)) => {
            let names = eval.confusion.class_names();
            println!(
                "most confused: {n} × true '{}' predicted as '{}'",
                names[t], names[p]
            );
            let unimp = Category::Unimportant.index();
            if t == unimp || p == unimp {
                println!("⇒ matches the paper: 'Unimportant' is the troublesome category");
            }
        }
        None => println!("no misclassifications at this scale"),
    }

    if let Some(path) = &args.json_path {
        let names = eval.confusion.class_names().to_vec();
        let matrix: Vec<Vec<u64>> = (0..names.len())
            .map(|t| (0..names.len()).map(|p| eval.confusion.get(t, p)).collect())
            .collect();
        let value = serde_json::json!({
            "experiment": "fig2",
            "scale": args.scale,
            "seed": args.seed,
            "class_names": names,
            "matrix": matrix,
            "weighted_f1": eval.report.weighted_f1,
            "most_confused": eval.confusion.most_confused().map(|(t, p, n)| serde_json::json!({
                "true": eval.confusion.class_names()[t],
                "predicted": eval.confusion.class_names()[p],
                "count": n,
            })),
        });
        write_json(path, &value);
    }
}
