//! Table 1 — the top-5 TF-IDF tokens per category.
//!
//! Each category's messages are concatenated into one document and scored
//! against the corpus of category-documents, exactly the construction of
//! §4.3.1; the top tokens double as classifier explanations and LLM prompt
//! material.
//!
//! Run: `cargo run --release -p bench --bin table1_tfidf_tokens`

use bench::{render_table, write_json, ExpArgs};
use hetsyslog_core::{FeatureConfig, FeaturePipeline};

fn main() {
    let args = ExpArgs::parse();
    let corpus = args.corpus();
    println!(
        "Table 1 reproduction: top TF-IDF tokens per category ({} messages, scale {})\n",
        corpus.len(),
        args.scale
    );

    let mut pipeline = FeaturePipeline::new(FeatureConfig::default());
    let messages: Vec<&str> = corpus.iter().map(|(m, _)| m.as_str()).collect();
    pipeline.fit(&messages);
    let table1 = pipeline.table1(&corpus, 5);

    let rows: Vec<Vec<String>> = table1
        .iter()
        .map(|ct| {
            vec![
                ct.category.clone(),
                ct.tokens
                    .iter()
                    .map(|(t, _)| t.as_str())
                    .collect::<Vec<_>>()
                    .join(", "),
            ]
        })
        .collect();
    println!("{}", render_table(&["Category", "Top Tokens"], &rows));

    println!("Paper's Table 1 for comparison:");
    println!("  Thermal Issue : processor, throttled, sensor, cpu, temperature");
    println!("  SSH Connection: closed, preauth, connection, port, user");
    println!("  USB Device    : usb, device, hub, number, new");
    println!("  (the shape to check: category-discriminative vocabulary, not shared words)");

    if let Some(path) = &args.json_path {
        let value = serde_json::json!({
            "experiment": "table1",
            "scale": args.scale,
            "seed": args.seed,
            "n_messages": corpus.len(),
            "categories": table1.iter().map(|ct| {
                serde_json::json!({
                    "category": ct.category,
                    "tokens": ct.tokens.iter().map(|(t, s)| serde_json::json!({"token": t, "score": s})).collect::<Vec<_>>(),
                })
            }).collect::<Vec<_>>(),
        });
        write_json(path, &value);
    }
}
