//! Table 1 — the top-5 TF-IDF tokens per category (DESIGN.md §3 T1).
//!
//! Thin wrapper over [`bench::experiments::table1`]; the conformance
//! runner (`repro`) executes the same code path.
//!
//! Run: `cargo run --release -p bench --bin table1_tfidf_tokens`

use bench::{experiments, write_json, ExpArgs};

fn main() {
    let args = ExpArgs::parse();
    let out = experiments::table1(&args);
    print!("{}", out.report);
    if let Some(path) = &args.json_path {
        write_json(path, &out.value);
    }
}
