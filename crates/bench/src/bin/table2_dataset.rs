//! Table 2 — dataset composition and the bucket economy (DESIGN.md §3 T2).
//!
//! Thin wrapper over [`bench::experiments::table2`]; the conformance
//! runner (`repro`) executes the same code path.
//!
//! Run: `cargo run --release -p bench --bin table2_dataset`

use bench::{experiments, write_json, ExpArgs};

fn main() {
    let args = ExpArgs::parse();
    let out = experiments::table2(&args);
    print!("{}", out.report);
    if let Some(path) = &args.json_path {
        write_json(path, &out.value);
    }
}
