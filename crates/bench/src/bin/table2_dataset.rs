//! Table 2 — unique messages per category.
//!
//! Verifies the synthetic corpus reproduces the paper's class imbalance at
//! the requested scale, and reports the bucket-exemplar economy of §4.4.1
//! (the paper labeled 3 415 exemplars to cover 196k messages).
//!
//! Run: `cargo run --release -p bench --bin table2_dataset`

use bench::{render_table, write_json, ExpArgs};
use datagen::corpus::target_count;
use hetsyslog_core::{BucketBaseline, Category};

fn main() {
    let args = ExpArgs::parse();
    let corpus = args.corpus();
    println!(
        "Table 2 reproduction: dataset composition (scale {}, {} unique messages)\n",
        args.scale,
        corpus.len()
    );

    let config = args.corpus_config();
    let rows: Vec<Vec<String>> = Category::ALL
        .iter()
        .map(|&c| {
            let count = corpus.iter().filter(|(_, cat)| *cat == c).count();
            vec![
                c.label().to_string(),
                count.to_string(),
                c.paper_count().to_string(),
                format!("{}", target_count(c, &config)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Category", "Ours", "Paper (scale 1.0)", "Target"], &rows)
    );

    // §4.4.1: the Levenshtein-bucket economy — how many exemplars must a
    // human label to cover the whole corpus at threshold 7?
    let baseline = BucketBaseline::train(7, &corpus);
    let ratio = corpus.len() as f64 / baseline.n_buckets() as f64;
    println!(
        "Bucket economy at threshold 7: {} buckets cover {} messages ({ratio:.1} messages/exemplar).",
        baseline.n_buckets(),
        corpus.len(),
    );
    println!("Paper: 3 415 exemplars for ~196k messages (57.5 messages/exemplar).");

    if let Some(path) = &args.json_path {
        let value = serde_json::json!({
            "experiment": "table2",
            "scale": args.scale,
            "seed": args.seed,
            "total": corpus.len(),
            "counts": Category::ALL.iter().map(|&c| serde_json::json!({
                "category": c.label(),
                "ours": corpus.iter().filter(|(_, cat)| *cat == c).count(),
                "paper": c.paper_count(),
            })).collect::<Vec<_>>(),
            "buckets": baseline.n_buckets(),
            "messages_per_exemplar": ratio,
        });
        write_json(path, &value);
    }
}
