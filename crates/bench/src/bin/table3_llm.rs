//! Table 3 — LLM inference time and messages/hour, plus the §5.2
//! qualitative findings: classification accuracy of the simulated models,
//! failure-mode rates, and the effect of the `max_new_tokens` mitigation.
//!
//! Run: `cargo run --release -p bench --bin table3_llm`

use bench::{render_table, write_json, ExpArgs};
use hetsyslog_core::{Category, FeatureConfig, FeaturePipeline, TextClassifier};
use llmsim::{GenerativeLlmClassifier, ModelPreset, PromptBuilder, ZeroShotLlmClassifier};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Evaluate an LLM classifier over a message sample; returns
/// (accuracy, mean virtual seconds, messages/hour).
fn eval_llm(
    clf: &dyn TextClassifier,
    sample: &[(String, Category)],
    mean_seconds: impl Fn() -> f64,
) -> (f64, f64, f64) {
    let correct = sample
        .iter()
        .filter(|(m, c)| clf.classify(m).category == *c)
        .count();
    let accuracy = correct as f64 / sample.len().max(1) as f64;
    let mean = mean_seconds();
    (accuracy, mean, 3600.0 / mean.max(1e-9))
}

fn main() {
    let args = ExpArgs::parse();
    let corpus = args.corpus();
    // LLM evaluation is per-message expensive even in simulation; sample
    // uniformly across the corpus like the authors did for timing runs.
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed ^ 0x7ab1e3);
    let mut shuffled: Vec<(String, Category)> = corpus.clone();
    shuffled.shuffle(&mut rng);
    let n_sample = shuffled.len().min(400);
    let sample = &shuffled[..n_sample];
    println!(
        "Table 3 reproduction: LLM classification cost ({} training messages, {} sampled test messages)\n",
        corpus.len(),
        n_sample
    );

    // TF-IDF top words feed the prompt (the paper's best recipe).
    let mut pipeline = FeaturePipeline::new(FeatureConfig::default());
    let messages: Vec<&str> = corpus.iter().map(|(m, _)| m.as_str()).collect();
    pipeline.fit(&messages);
    let top_words: Vec<Vec<String>> = pipeline
        .table1(&corpus, 5)
        .into_iter()
        .map(|ct| ct.tokens.into_iter().map(|(t, _)| t).collect())
        .collect();
    let prompt = PromptBuilder::new().with_top_words(top_words);

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();

    for preset in [ModelPreset::falcon_7b(), ModelPreset::falcon_40b()] {
        let name = preset.name;
        let clf =
            GenerativeLlmClassifier::new(preset, &corpus, prompt.clone(), Some(24), args.seed);
        let (acc, mean_s, mph) = eval_llm(&clf, sample, || clf.mean_inference_seconds());
        let counters = clf.counters();
        rows.push(vec![
            name.to_string(),
            format!("{mean_s:.3}"),
            format!("{mph:.0}"),
            format!("{acc:.3}"),
            format!(
                "novel={} truncated={}",
                counters.novel_category, counters.truncated
            ),
        ]);
        json_rows.push(serde_json::json!({
            "model": name,
            "inference_seconds": mean_s,
            "messages_per_hour": mph,
            "accuracy": acc,
            "novel_category": counters.novel_category,
            "truncated": counters.truncated,
            "total": counters.total,
        }));
    }

    let zs = ZeroShotLlmClassifier::new(&corpus);
    let (acc, mean_s, mph) = eval_llm(&zs, sample, || zs.mean_inference_seconds());
    rows.push(vec![
        zs.name(),
        format!("{mean_s:.5}"),
        format!("{mph:.0}"),
        format!("{acc:.3}"),
        "always in-taxonomy".to_string(),
    ]);
    json_rows.push(serde_json::json!({
        "model": zs.name(),
        "inference_seconds": mean_s,
        "messages_per_hour": mph,
        "accuracy": acc,
    }));

    println!(
        "{}",
        render_table(
            &[
                "Model",
                "Inference (s/msg)",
                "Messages/hour",
                "Accuracy",
                "Failure modes"
            ],
            &rows
        )
    );
    println!("Paper's Table 3: Falcon-7b 0.639s (5 633/h) · Falcon-40b 2.184s (1 648/h) · BART-MNLI 0.134s (26 948/h)");
    println!("Shape: zero-shot ≫ 7b ≫ 40b in throughput; all orders of magnitude below the");
    println!("traditional models (fig3) and below Darwin's >1M msgs/hour ingest rate.");

    // The max_new_tokens ablation: unbounded generation costs more.
    let unbounded = GenerativeLlmClassifier::new(
        ModelPreset::falcon_7b(),
        &corpus,
        prompt.clone(),
        None,
        args.seed,
    );
    for (m, _) in sample.iter().take(100) {
        let _ = unbounded.classify(m);
    }
    let capped = GenerativeLlmClassifier::new(
        ModelPreset::falcon_7b(),
        &corpus,
        prompt,
        Some(24),
        args.seed,
    );
    for (m, _) in sample.iter().take(100) {
        let _ = capped.classify(m);
    }
    println!(
        "\nmax_new_tokens mitigation (Falcon-7b, 100 msgs): unbounded {:.2} virtual s, capped {:.2} virtual s",
        unbounded.virtual_seconds(),
        capped.virtual_seconds()
    );

    // Would batching save the LLMs? (An extension beyond the paper, with a
    // deliberately generous Amdahl-style serving model.)
    use llmsim::latency::{LatencyModel, PAPER_GENERATED_TOKENS, PAPER_PROMPT_TOKENS};
    println!("\nbatched-serving extrapolation (msgs/hour at batch size b):");
    for (name, model) in [
        ("Falcon-7b", LatencyModel::falcon_7b()),
        ("Falcon-40b", LatencyModel::falcon_40b()),
    ] {
        let mph = |b: usize| {
            3600.0
                / model.batched_seconds_per_message(b, PAPER_PROMPT_TOKENS, PAPER_GENERATED_TOKENS)
        };
        println!(
            "  {name:<11} b=1: {:>7.0}  b=8: {:>7.0}  b=64: {:>7.0}  b=1024: {:>7.0}   (need >1,000,000)",
            mph(1), mph(8), mph(64), mph(1024)
        );
    }
    println!(
        "  even a saturated ~12x batching speedup leaves both models an order of magnitude short."
    );

    if let Some(path) = &args.json_path {
        let value = serde_json::json!({
            "experiment": "table3",
            "scale": args.scale,
            "seed": args.seed,
            "n_sample": n_sample,
            "rows": json_rows,
            "max_new_tokens_ablation": {
                "unbounded_virtual_seconds": unbounded.virtual_seconds(),
                "capped_virtual_seconds": capped.virtual_seconds(),
            },
        });
        write_json(path, &value);
    }
}
