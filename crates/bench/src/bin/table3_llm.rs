//! Table 3 — simulated LLM inference cost on the virtual clock, plus the
//! §5.2 qualitative findings (DESIGN.md §3 T3).
//!
//! Thin wrapper over [`bench::experiments::table3`]; the conformance
//! runner (`repro`) executes the same code path.
//!
//! Run: `cargo run --release -p bench --bin table3_llm`

use bench::{experiments, write_json, ExpArgs};

fn main() {
    let args = ExpArgs::parse();
    let out = experiments::table3(&args);
    print!("{}", out.report);
    if let Some(path) = &args.json_path {
        write_json(path, &out.value);
    }
}
