//! Experiment X3 — online adaptation to firmware drift.
//!
//! The paper's Future Work asks "how well this classification /
//! pre-processing technique combination holds up to changes in our
//! cluster's environment", and its Background complains that the old tools
//! needed *constant retraining*. This experiment quantifies the middle
//! ground: a deployed Complement NB model absorbing a small trickle of
//! administrator-labeled drifted messages via `partial_fit`, compared to
//! (a) doing nothing and (b) a full retrain with a fresh vocabulary.
//!
//! Run: `cargo run --release -p bench --bin xp_online`

use bench::{render_table, write_json, ExpArgs};
use datagen::{DriftConfig, DriftModel};
use hetsyslog_core::eval::{prepare_split, EvalConfig};
use hetsyslog_core::{BucketBaseline, Category, FeatureConfig, FeaturePipeline, TextClassifier};
use hetsyslog_ml::{Classifier, ComplementNaiveBayes, ComplementNbConfig, Dataset};
use textproc::{HashingVectorizer, SparseVec};

fn accuracy(model: &ComplementNaiveBayes, features: &[SparseVec], labels: &[usize]) -> f64 {
    let preds = model.predict_batch(features);
    preds.iter().zip(labels).filter(|(p, l)| p == l).count() as f64 / labels.len().max(1) as f64
}

fn main() {
    let args = ExpArgs::parse();
    let corpus = args.corpus();
    println!(
        "Experiment X3: online adaptation to firmware drift ({} messages, scale {})\n",
        corpus.len(),
        args.scale
    );

    let config = EvalConfig {
        seed: args.seed,
        ..EvalConfig::default()
    };
    let split = prepare_split(&corpus, &config);

    // The new firmware era: every message in both halves is reworded.
    // Era change: a new hardware generation joins the test-bed, its
    // firmware renaming concepts outright (vendor-jargon drift).
    let mut drift = DriftModel::new(DriftConfig {
        seed: args.seed ^ 0x0111e,
        vendor_jargon: true,
        ..DriftConfig::default()
    });
    let drifted_train_texts = drift.mutate_all(&split.train_texts);
    let drifted_test_texts = drift.mutate_all(&split.test_texts);
    let drifted_test: Vec<SparseVec> = drifted_test_texts
        .iter()
        .map(|t| split.pipeline.transform(t))
        .collect();

    // Baseline: the deployed model, trained pre-drift, never updated.
    let mut deployed = ComplementNaiveBayes::new(ComplementNbConfig::default());
    deployed.fit(&split.train);
    let clean_acc = accuracy(&deployed, &split.test.features, &split.test.labels);
    let static_acc = accuracy(&deployed, &drifted_test, &split.test.labels);

    let mut rows = vec![
        vec![
            "deployed model, clean test".to_string(),
            format!("{clean_acc:.4}"),
            "-".to_string(),
        ],
        vec![
            "deployed model, drifted test (no update)".to_string(),
            format!("{static_acc:.4}"),
            "0".to_string(),
        ],
    ];
    let mut json_rows = vec![
        serde_json::json!({"condition": "clean", "accuracy": clean_acc, "labels_used": 0}),
        serde_json::json!({"condition": "static_drifted", "accuracy": static_acc, "labels_used": 0}),
    ];

    // Online adaptation: the admin labels a growing trickle of drifted
    // traffic; the model absorbs it with partial_fit (fixed vocabulary).
    for fraction in [0.02, 0.05, 0.10, 0.25] {
        let n_labeled = ((split.train.len() as f64) * fraction) as usize;
        let fresh_features: Vec<SparseVec> = drifted_train_texts[..n_labeled]
            .iter()
            .map(|t| split.pipeline.transform(t))
            .collect();
        let fresh = Dataset::new(
            fresh_features,
            split.train.labels[..n_labeled].to_vec(),
            split.train.class_names.clone(),
        );
        let mut adapted = deployed.clone();
        adapted.partial_fit(&fresh);
        let acc = accuracy(&adapted, &drifted_test, &split.test.labels);
        rows.push(vec![
            format!(
                "partial_fit on {:.0}% labeled drifted traffic",
                fraction * 100.0
            ),
            format!("{acc:.4}"),
            n_labeled.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "condition": format!("partial_fit_{fraction}"),
            "accuracy": acc,
            "labels_used": n_labeled,
        }));
    }

    // Diagnose *why* partial_fit moves so little: drift loss is mostly
    // out-of-vocabulary tokens, which no amount of count updating can fix.
    let oov = |texts: &[String]| -> f64 {
        let mut known = 0usize;
        let mut total = 0usize;
        for t in texts {
            for tok in split.pipeline.preprocess(t) {
                total += 1;
                if split.pipeline.vectorizer().vocabulary().get(&tok).is_some() {
                    known += 1;
                }
            }
        }
        1.0 - known as f64 / total.max(1) as f64
    };
    let oov_clean = oov(&split.test_texts);
    let oov_drifted = oov(&drifted_test_texts);
    println!(
        "out-of-vocabulary token rate: {:.1}% clean test → {:.1}% drifted test\n",
        oov_clean * 100.0,
        oov_drifted * 100.0
    );

    // The actual remedy: refresh the vocabulary with a small labeled slice
    // of drifted traffic appended to the old training text.
    for fraction in [0.05, 0.25] {
        let n_labeled = ((split.train.len() as f64) * fraction) as usize;
        let mut combined_texts: Vec<&str> = split.train_texts.iter().map(String::as_str).collect();
        combined_texts.extend(drifted_train_texts[..n_labeled].iter().map(String::as_str));
        let mut combined_labels = split.train.labels.clone();
        combined_labels.extend_from_slice(&split.train.labels[..n_labeled]);

        let mut refit_pipeline = FeaturePipeline::new(FeatureConfig::default());
        let combined_features = refit_pipeline.fit_transform(&combined_texts);
        let combined = Dataset::new(
            combined_features,
            combined_labels,
            split.train.class_names.clone(),
        );
        let mut refreshed = ComplementNaiveBayes::new(ComplementNbConfig::default());
        refreshed.fit(&combined);
        let refit_test: Vec<SparseVec> = drifted_test_texts
            .iter()
            .map(|t| refit_pipeline.transform(t))
            .collect();
        let acc = accuracy(&refreshed, &refit_test, &split.test.labels);
        rows.push(vec![
            format!(
                "vocabulary refit + {:.0}% labeled drifted traffic",
                fraction * 100.0
            ),
            format!("{acc:.4}"),
            n_labeled.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "condition": format!("vocab_refit_{fraction}"),
            "accuracy": acc,
            "labels_used": n_labeled,
        }));
    }

    // Vocabulary-free alternative: hashing features have no OOV concept at
    // all — every drifted token lands in a stable bucket. Train once on
    // clean text, deploy forever.
    // Unsigned buckets: naive Bayes needs non-negative counts.
    let hasher = HashingVectorizer {
        signed: false,
        ..HashingVectorizer::default()
    };
    let hash_vec = |texts: &[String]| -> Vec<SparseVec> {
        texts
            .iter()
            .map(|t| hasher.transform(&split.pipeline.preprocess(t)))
            .collect()
    };
    let hash_train = Dataset::new(
        hash_vec(&split.train_texts),
        split.train.labels.clone(),
        split.train.class_names.clone(),
    );
    let mut hashed_model = ComplementNaiveBayes::new(ComplementNbConfig::default());
    hashed_model.fit(&hash_train);
    let acc_clean = accuracy(
        &hashed_model,
        &hash_vec(&split.test_texts),
        &split.test.labels,
    );
    let acc_drift = accuracy(
        &hashed_model,
        &hash_vec(&drifted_test_texts),
        &split.test.labels,
    );
    rows.push(vec![
        format!("hashing features (no vocabulary), drifted test [clean: {acc_clean:.4}]"),
        format!("{acc_drift:.4}"),
        "0".to_string(),
    ]);
    json_rows.push(serde_json::json!({
        "condition": "hashing_features",
        "accuracy": acc_drift,
        "accuracy_clean": acc_clean,
        "labels_used": 0,
    }));

    // Contrast: the bucket baseline, whose maintenance burden IS the
    // paper's complaint. Static on drifted traffic it craters; absorbing
    // the same labeled trickles as exemplars recovers it.
    let bucket_acc = |b: &BucketBaseline, texts: &[String]| -> f64 {
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let preds = b.classify_batch(&refs);
        preds
            .iter()
            .zip(&split.test.labels)
            .filter(|(p, &l)| p.category.index() == l)
            .count() as f64
            / texts.len().max(1) as f64
    };
    let clean_pairs: Vec<(String, Category)> = split
        .train_texts
        .iter()
        .zip(&split.train.labels)
        .map(|(t, &l)| (t.clone(), Category::from_index(l).expect("valid label")))
        .collect();
    let bucket_static = BucketBaseline::train(7, &clean_pairs);
    let acc = bucket_acc(&bucket_static, &drifted_test_texts);
    rows.push(vec![
        "bucket baseline, drifted test (no update)".to_string(),
        format!("{acc:.4}"),
        "0".to_string(),
    ]);
    json_rows.push(serde_json::json!({
        "condition": "bucket_static",
        "accuracy": acc,
        "labels_used": 0,
    }));
    for fraction in [0.05, 0.25] {
        let n_labeled = ((split.train.len() as f64) * fraction) as usize;
        let mut bucket = BucketBaseline::train(7, &clean_pairs);
        let before = bucket.n_buckets();
        for (t, &l) in drifted_train_texts[..n_labeled]
            .iter()
            .zip(&split.train.labels)
        {
            bucket.absorb(t, Category::from_index(l).expect("valid label"));
        }
        let new_exemplars = bucket.n_buckets() - before;
        let acc = bucket_acc(&bucket, &drifted_test_texts);
        rows.push(vec![
            format!(
                "bucket baseline + {:.0}% absorbed drifted traffic ({new_exemplars} new exemplars)",
                fraction * 100.0
            ),
            format!("{acc:.4}"),
            n_labeled.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "condition": format!("bucket_absorb_{fraction}"),
            "accuracy": acc,
            "labels_used": n_labeled,
            "new_exemplars": new_exemplars,
        }));
    }

    // Upper bound: full retrain with a vocabulary refit on drifted text.
    let drifted_corpus: Vec<(String, Category)> = drifted_train_texts
        .iter()
        .zip(&split.train.labels)
        .map(|(t, &l)| (t.clone(), Category::from_index(l).expect("valid label")))
        .collect();
    let mut new_pipeline = FeaturePipeline::new(FeatureConfig::default());
    let msgs: Vec<&str> = drifted_corpus.iter().map(|(m, _)| m.as_str()).collect();
    let new_train_features = new_pipeline.fit_transform(&msgs);
    let new_train = Dataset::new(
        new_train_features,
        split.train.labels.clone(),
        split.train.class_names.clone(),
    );
    let mut retrained = ComplementNaiveBayes::new(ComplementNbConfig::default());
    retrained.fit(&new_train);
    let new_test: Vec<SparseVec> = drifted_test_texts
        .iter()
        .map(|t| new_pipeline.transform(t))
        .collect();
    let retrain_acc = accuracy(&retrained, &new_test, &split.test.labels);
    rows.push(vec![
        "full retrain (fresh vocabulary, all labels)".to_string(),
        format!("{retrain_acc:.4}"),
        split.train.len().to_string(),
    ]);
    json_rows.push(serde_json::json!({
        "condition": "full_retrain",
        "accuracy": retrain_acc,
        "labels_used": split.train.len(),
    }));

    println!(
        "{}",
        render_table(
            &["Condition", "Accuracy on drifted test", "Labels required"],
            &rows
        )
    );
    println!("finding (the paper's titular hope, quantified): the TF-IDF + CNB pipeline is");
    println!("inherently drift-robust — redundant within-message vocabulary keeps accuracy near");
    println!("its clean level even at 21% OOV, so NO maintenance (partial_fit, vocabulary");
    println!("refresh, or full retrain) is needed. The bucket baseline is the opposite: it");
    println!("loses ~30 points to the same drift and can only claw them back by absorbing");
    println!("labeled exemplars — the \"constant retraining\" the Background laments.");

    if let Some(path) = &args.json_path {
        write_json(
            path,
            &serde_json::json!({
                "experiment": "xp_online",
                "scale": args.scale,
                "seed": args.seed,
                "rows": json_rows,
            }),
        );
    }
}
