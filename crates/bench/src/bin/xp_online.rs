//! Experiment X3 — online adaptation to firmware drift (DESIGN.md §3 X3).
//!
//! Thin wrapper over [`bench::experiments::xp_online`]; the conformance
//! runner (`repro`) executes the same code path.
//!
//! Run: `cargo run --release -p bench --bin xp_online`

use bench::{experiments, write_json, ExpArgs};

fn main() {
    let args = ExpArgs::parse();
    let out = experiments::xp_online(&args);
    print!("{}", out.report);
    if let Some(path) = &args.json_path {
        write_json(path, &out.value);
    }
}
