//! Experiment X2 — end-to-end classified-ingest throughput, the
//! scalar-vs-batched CSR comparison, and the loopback TCP listener
//! benchmark (DESIGN.md §3 X2).
//!
//! Thin wrapper over [`bench::experiments::xp_throughput`]; the
//! conformance runner (`repro`) executes the same code path. The
//! batch-vs-scalar comparison is additionally re-emitted to
//! `BENCH_throughput.json` (committed as evidence that the CSR path
//! clears its speedup floor).
//!
//! Run: `cargo run --release -p bench --bin xp_throughput`

use bench::{experiments, write_json, ExpArgs};

/// Path the batch-vs-scalar comparison is always written to.
const BENCH_JSON: &str = "BENCH_throughput.json";

fn main() {
    let args = ExpArgs::parse();
    let out = experiments::xp_throughput(&args);
    print!("{}", out.report);
    write_json(
        BENCH_JSON,
        &experiments::xp_throughput_bench_json(&out.value),
    );
    println!("Batch comparison written to {BENCH_JSON}");
    if let Some(path) = &args.json_path {
        write_json(path, &out.value);
    }
}
