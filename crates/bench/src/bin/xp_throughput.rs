//! Experiment X2 — end-to-end classified-ingest throughput, the
//! scalar-vs-batched CSR comparison, and the loopback TCP listener
//! benchmark (DESIGN.md §3 X2).
//!
//! Thin wrapper over [`bench::experiments::xp_throughput`]; the
//! conformance runner (`repro`) executes the same code path. The
//! batch-vs-scalar comparison is additionally re-emitted to
//! `BENCH_throughput.json` (committed as evidence that the CSR path
//! clears its speedup floor).
//!
//! Run: `cargo run --release -p bench --bin xp_throughput`

use bench::{experiments, write_json, ExpArgs};

/// Path the batch-vs-scalar comparison is always written to.
const BENCH_JSON: &str = "BENCH_throughput.json";

fn main() {
    let args = ExpArgs::parse();
    let out = experiments::xp_throughput(&args);
    print!("{}", out.report);
    // The telemetry overhead gate rides along in the committed bench JSON
    // but stays out of the conformance value (goldens never see timings).
    let overhead = experiments::observability_overhead(&args);
    println!(
        "\nObservability overhead at max_batch=64: {:.0} msg/s uninstrumented vs {:.0} msg/s instrumented (ratio {:.3}, gate >= 0.95)",
        overhead
            .get("uninstrumented_msgs_per_sec")
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(0.0),
        overhead
            .get("instrumented_msgs_per_sec")
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(0.0),
        overhead
            .get("ratio")
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(0.0),
    );
    // The shard-count sweep also stays out of the conformance value: the
    // goldens must not change when the host's core count does.
    let sharding = experiments::live_sharding(&args);
    let rate = |shards: &str| {
        sharding
            .get(shards)
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(0.0)
    };
    println!(
        "Live sharding at max_batch=64: x{:.2} at 2 shards, x{:.2} at 4 shards (gate enforced: {})",
        rate("speedup_2_over_1"),
        rate("speedup_4_over_1"),
        sharding
            .get("gate_enforced")
            .and_then(serde_json::Value::as_bool)
            .unwrap_or(false),
    );
    // The ingest front-end sweep (thread-per-connection vs epoll reactor
    // across connection counts and shard widths) stays out of the
    // conformance value for the same reason: host topology must never
    // move a golden.
    let frontends = experiments::ingest_frontend(&args);
    println!(
        "Ingest front end: reactor x{:.2} over threads at 256 conns/1 shard, x{:.2} at 256 conns/4 shards, x{:.2} at 1024 conns/4 shards (gate enforced: {})",
        frontends
            .get("reactor_speedup_256conns_1shard")
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(0.0),
        frontends
            .get("reactor_speedup_256conns_4shards")
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(0.0),
        frontends
            .get("reactor_speedup_1024conns_4shards")
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(0.0),
        frontends
            .get("gate_enforced")
            .and_then(serde_json::Value::as_bool)
            .unwrap_or(false),
    );
    // The columnar-store sweep (compression ratio + template-query
    // speedup) rides along the same way: committed evidence, never part
    // of the conformance value.
    let columnar = experiments::columnar_store(&args);
    let field = |v: &serde_json::Value, key: &str| {
        v.get(key)
            .and_then(serde_json::Value::as_f64)
            .unwrap_or(0.0)
    };
    println!(
        "Columnar store: {:.1}x compression, {:.0}x template-query speedup over raw scan (gate: ratio >= 5)",
        field(&columnar, "compression_ratio"),
        field(&columnar, "query_speedup"),
    );
    // The sink fan-out sweep (healthy / 5% errors / outage + spill replay)
    // follows the same rule: committed evidence, never a conformance value.
    let fanout = experiments::sink_fanout(&args);
    println!(
        "Sink fan-out: {:.0} msg/s healthy, {:.0} msg/s at 5% errors, recovery in {:.2}s after a {:.0} ms outage (lossless: {})",
        field(&fanout, "healthy_msgs_per_sec"),
        field(&fanout, "errors_5pct_msgs_per_sec"),
        field(&fanout, "recovery_seconds"),
        field(&fanout, "outage_ms"),
        fanout
            .get("lossless_under_outage")
            .and_then(serde_json::Value::as_bool)
            .unwrap_or(false),
    );
    let mut bench = experiments::xp_throughput_bench_json(&out.value);
    if let serde_json::Value::Object(entries) = &mut bench {
        entries.push(("observability_overhead".to_string(), overhead));
        entries.push(("live_sharding".to_string(), sharding));
        entries.push(("ingest_frontend".to_string(), frontends));
        entries.push(("columnar_store".to_string(), columnar));
        entries.push(("sink_fanout".to_string(), fanout));
    }
    write_json(BENCH_JSON, &bench);
    println!("Batch comparison written to {BENCH_JSON}");
    if let Some(path) = &args.json_path {
        write_json(path, &out.value);
    }
}
