//! Experiment X2 — end-to-end pipeline throughput per technique.
//!
//! §5's framing: "techniques that … require so much computational power
//! that we can only afford to classify a single message every 30 seconds"
//! are useless against a stream that exceeds a million messages an hour.
//! This binary pushes one synthetic Darwin hour through the full ingest
//! path (parse → classify → index) for each classifier family and compares
//! sustained messages/hour — real wall time for the traditional models,
//! modeled GPU time for the LLMs.
//!
//! Run: `cargo run --release -p bench --bin xp_throughput`

use bench::{render_table, write_json, ExpArgs};
use datagen::{StreamConfig, StreamGenerator};
use hetsyslog_core::{
    FeatureConfig, MonitorService, NoiseFilter, TextClassifier, TraditionalPipeline,
};
use hetsyslog_ml::{
    BatchClassifier, ComplementNaiveBayes, ComplementNbConfig, LinearSvc, LinearSvcConfig,
    LogisticRegression, LogisticRegressionConfig, NearestCentroid, RandomForest,
    RandomForestConfig, RidgeClassifier, RidgeConfig, SgdClassifier, SgdConfig,
};
use llmsim::{GenerativeLlmClassifier, ModelPreset, PromptBuilder, ZeroShotLlmClassifier};
use logpipeline::{ClassifyingIngest, ListenerConfig, LogStore, OverloadPolicy, SyslogListener};
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Path the batch-vs-scalar comparison is always written to (committed as
/// the PR's evidence that the CSR path clears its speedup floor).
const BENCH_JSON: &str = "BENCH_throughput.json";

/// The linear-family suite for the batch-vs-scalar comparison. Linear SVC
/// gets a reduced epoch budget — its dual coordinate descent is the
/// paper's slowest trainer and this experiment measures inference, not
/// training.
fn linear_suite(seed: u64) -> Vec<(&'static str, Box<dyn BatchClassifier>)> {
    vec![
        (
            "Logistic Regression",
            Box::new(LogisticRegression::new(LogisticRegressionConfig::default())),
        ),
        (
            "Ridge Classifier",
            Box::new(RidgeClassifier::new(RidgeConfig::default())),
        ),
        (
            "Linear SVC",
            Box::new(LinearSvc::new(LinearSvcConfig {
                max_epochs: 200,
                tolerance: 1e-3,
                ..LinearSvcConfig::default()
            })),
        ),
        (
            "Log-loss SGD",
            Box::new(SgdClassifier::new(SgdConfig {
                seed,
                ..SgdConfig::default()
            })),
        ),
        ("Nearest Centroid", Box::new(NearestCentroid::new())),
        (
            "Complement Naive Bayes",
            Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default())),
        ),
    ]
}

/// Result of the loopback listener run: final counters plus wall time.
struct ListenerBench {
    connections: usize,
    report: hetsyslog_core::IngestSnapshot,
    seconds: f64,
}

impl ListenerBench {
    fn msgs_per_sec(&self) -> f64 {
        self.report.ingested as f64 / self.seconds
    }
}

/// Push `frames` through the loopback TCP listener over 4 concurrent
/// octet-counted connections and report sustained wire-to-store ingest.
fn bench_listener(frames: &[String]) -> ListenerBench {
    const CONNECTIONS: usize = 4;
    let store = Arc::new(LogStore::new());
    let listener = SyslogListener::start(
        store.clone(),
        None,
        ListenerConfig {
            workers: 4,
            queue_depth: 4096,
            overload: OverloadPolicy::Block,
            idle_timeout: Duration::from_secs(30),
            ..ListenerConfig::default()
        },
    )
    .expect("bind loopback listener");
    let addr = listener.tcp_addr();

    let started = Instant::now();
    let senders: Vec<_> = (0..CONNECTIONS)
        .map(|c| {
            let shard: Vec<String> = frames
                .iter()
                .skip(c)
                .step_by(CONNECTIONS)
                .cloned()
                .collect();
            std::thread::spawn(move || {
                let mut sock = std::net::TcpStream::connect(addr).expect("connect");
                let mut wire = Vec::with_capacity(shard.iter().map(|f| f.len() + 8).sum());
                for frame in &shard {
                    wire.extend_from_slice(format!("{} {frame}", frame.len()).as_bytes());
                }
                sock.write_all(&wire).expect("write");
            })
        })
        .collect();
    for sender in senders {
        sender.join().expect("sender thread");
    }
    let expected = frames.len() as u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    while listener.stats().snapshot().ingested + listener.stats().snapshot().parse_errors < expected
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(2));
    }
    let seconds = started.elapsed().as_secs_f64();
    let report = listener.shutdown();
    ListenerBench {
        connections: CONNECTIONS,
        report,
        seconds,
    }
}

fn main() {
    let args = ExpArgs::parse();
    let corpus = args.corpus();
    // One synthetic stream sample (default ~30k frames ≈ 100 virtual
    // seconds of Darwin load at 300 msg/s).
    let n_frames = (30_000.0 * (args.scale / 0.05).clamp(0.2, 10.0)) as usize;
    let frames: Vec<String> = StreamGenerator::new(StreamConfig {
        seed: args.seed,
        ..StreamConfig::default()
    })
    .take(n_frames)
    .map(|t| t.to_frame())
    .collect();
    println!(
        "Experiment X2: end-to-end classified-ingest throughput ({} frames, {} training messages)\n",
        frames.len(),
        corpus.len()
    );

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();

    // Traditional models measured end-to-end through the real pipeline.
    let traditional: Vec<(&str, Box<dyn TextClassifier>)> = vec![
        (
            "TF-IDF + Complement NB",
            Box::new(TraditionalPipeline::train(
                FeatureConfig::default(),
                Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default())),
                &corpus,
            )),
        ),
        (
            "TF-IDF + Random Forest",
            Box::new(TraditionalPipeline::train(
                FeatureConfig::default(),
                Box::new(RandomForest::new(RandomForestConfig {
                    seed: args.seed,
                    n_trees: 20,
                    ..RandomForestConfig::default()
                })),
                &corpus,
            )),
        ),
    ];
    for (label, clf) in traditional {
        let store = Arc::new(LogStore::new());
        let service = Arc::new(
            MonitorService::new(Arc::from(clf)).with_prefilter(NoiseFilter::train(3, &corpus)),
        );
        let ingest = ClassifyingIngest::new(store.clone(), service, 4);
        let report = ingest.run(frames.iter().cloned());
        let mph = report.messages_per_second() * 3600.0;
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", report.seconds),
            format!("{mph:.0}"),
            "measured wall time".to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "technique": label,
            "seconds": report.seconds,
            "messages_per_hour": mph,
            "kind": "measured",
            "prefiltered": report.prefiltered,
        }));
    }

    // LLMs: virtual GPU seconds over a sample, extrapolated.
    let sample: Vec<&str> = frames.iter().take(300).map(|s| s.as_str()).collect();
    let prompt = PromptBuilder::new();
    for preset in [ModelPreset::falcon_7b(), ModelPreset::falcon_40b()] {
        let name = preset.name;
        let clf =
            GenerativeLlmClassifier::new(preset, &corpus, prompt.clone(), Some(24), args.seed);
        for m in &sample {
            let _ = clf.classify(m);
        }
        let mean = clf.mean_inference_seconds();
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", mean * frames.len() as f64),
            format!("{:.0}", 3600.0 / mean),
            "modeled 4xA100 time".to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "technique": name,
            "seconds": mean * frames.len() as f64,
            "messages_per_hour": 3600.0 / mean,
            "kind": "modeled",
        }));
    }
    let zs = ZeroShotLlmClassifier::new(&corpus);
    for m in &sample {
        let _ = zs.classify(m);
    }
    let mean = zs.mean_inference_seconds();
    rows.push(vec![
        zs.name(),
        format!("{:.1}", mean * frames.len() as f64),
        format!("{:.0}", 3600.0 / mean),
        "modeled 4xA100 time".to_string(),
    ]);
    json_rows.push(serde_json::json!({
        "technique": zs.name(),
        "seconds": mean * frames.len() as f64,
        "messages_per_hour": 3600.0 / mean,
        "kind": "modeled",
    }));

    println!(
        "{}",
        render_table(
            &["Technique", "Time for stream (s)", "Messages/hour", "Basis"],
            &rows
        )
    );
    println!("Darwin's load: >1,000,000 messages/hour. Shape to check: traditional models clear");
    println!("it comfortably; every LLM falls one to three orders of magnitude short (the");
    println!("paper's central conclusion).");

    // Batch CSR vs scalar ingest: the same MonitorService, fed one message
    // at a time (per-message vectorize + predict + explanation) versus one
    // `ingest_batch` call (matrix-at-a-time CSR scoring). Categories are
    // cross-checked for agreement.
    let bench_msgs: Vec<&str> = frames.iter().take(20_000).map(|s| s.as_str()).collect();
    println!(
        "\nBatch CSR vs scalar ingest over {} messages per linear classifier:\n",
        bench_msgs.len()
    );
    let mut batch_rows = Vec::new();
    let mut batch_json = Vec::new();
    for (label, model) in linear_suite(args.seed) {
        let clf: Arc<dyn TextClassifier> = Arc::new(TraditionalPipeline::train(
            FeatureConfig::default(),
            model,
            &corpus,
        ));
        let scalar_svc =
            MonitorService::new(clf.clone()).with_prefilter(NoiseFilter::train(3, &corpus));
        let t0 = Instant::now();
        let scalar_preds: Vec<_> = bench_msgs.iter().map(|m| scalar_svc.ingest(m)).collect();
        let scalar_seconds = t0.elapsed().as_secs_f64();

        let batch_svc = MonitorService::new(clf).with_prefilter(NoiseFilter::train(3, &corpus));
        let t1 = Instant::now();
        let batch_preds = batch_svc.ingest_batch(&bench_msgs);
        let batch_seconds = t1.elapsed().as_secs_f64();

        let agree = scalar_preds
            .iter()
            .zip(&batch_preds)
            .all(|(a, b)| match (a, b) {
                (Some(a), Some(b)) => a.category == b.category,
                (None, None) => true,
                _ => false,
            });
        let scalar_rate = bench_msgs.len() as f64 / scalar_seconds;
        let batch_rate = bench_msgs.len() as f64 / batch_seconds;
        batch_rows.push(vec![
            label.to_string(),
            format!("{scalar_rate:.0}"),
            format!("{batch_rate:.0}"),
            format!("{:.1}x", batch_rate / scalar_rate),
            if agree {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
        batch_json.push(serde_json::json!({
            "model": label,
            "scalar_msgs_per_sec": scalar_rate,
            "batch_msgs_per_sec": batch_rate,
            "speedup": batch_rate / scalar_rate,
            "predictions_agree": agree,
        }));
    }
    println!(
        "{}",
        render_table(
            &["Model", "Scalar msg/s", "Batch msg/s", "Speedup", "Agree"],
            &batch_rows
        )
    );
    // Socket-facing listener: the same frames delivered over loopback TCP
    // (RFC 6587 octet counting, 4 concurrent connections) through the
    // bounded-queue listener into the store — wire → decode → parse →
    // index, measured end to end.
    let listener = bench_listener(&frames.iter().take(20_000).cloned().collect::<Vec<_>>());
    println!(
        "\nLoopback listener ingest: {:.0} msg/s over {} TCP connections ({} frames, {} drops)",
        listener.msgs_per_sec(),
        listener.connections,
        listener.report.frames,
        listener.report.total_dropped(),
    );
    let listener_json = serde_json::json!({
        "connections": listener.connections,
        "frames": listener.report.frames,
        "ingested": listener.report.ingested,
        "dropped": listener.report.total_dropped(),
        "bytes": listener.report.bytes,
        "seconds": listener.seconds,
        "msgs_per_sec": listener.msgs_per_sec(),
    });

    write_json(
        BENCH_JSON,
        &serde_json::json!({
            "experiment": "xp_throughput_batch_vs_scalar",
            "scale": args.scale,
            "seed": args.seed,
            "n_messages": bench_msgs.len(),
            "classifiers": batch_json,
            "listener": listener_json,
        }),
    );
    println!("Batch comparison written to {BENCH_JSON}");

    if let Some(path) = &args.json_path {
        write_json(
            path,
            &serde_json::json!({
                "experiment": "xp_throughput",
                "scale": args.scale,
                "seed": args.seed,
                "n_frames": frames.len(),
                "rows": json_rows,
            }),
        );
    }
}
