//! Experiment X2 — end-to-end pipeline throughput per technique.
//!
//! §5's framing: "techniques that … require so much computational power
//! that we can only afford to classify a single message every 30 seconds"
//! are useless against a stream that exceeds a million messages an hour.
//! This binary pushes one synthetic Darwin hour through the full ingest
//! path (parse → classify → index) for each classifier family and compares
//! sustained messages/hour — real wall time for the traditional models,
//! modeled GPU time for the LLMs.
//!
//! Run: `cargo run --release -p bench --bin xp_throughput`

use bench::{render_table, write_json, ExpArgs};
use datagen::{StreamConfig, StreamGenerator};
use hetsyslog_core::{FeatureConfig, MonitorService, NoiseFilter, TextClassifier, TraditionalPipeline};
use hetsyslog_ml::{ComplementNaiveBayes, ComplementNbConfig, RandomForest, RandomForestConfig};
use llmsim::{GenerativeLlmClassifier, ModelPreset, PromptBuilder, ZeroShotLlmClassifier};
use logpipeline::{ClassifyingIngest, LogStore};
use std::sync::Arc;

fn main() {
    let args = ExpArgs::parse();
    let corpus = args.corpus();
    // One synthetic stream sample (default ~30k frames ≈ 100 virtual
    // seconds of Darwin load at 300 msg/s).
    let n_frames = (30_000.0 * (args.scale / 0.05).clamp(0.2, 10.0)) as usize;
    let frames: Vec<String> = StreamGenerator::new(StreamConfig {
        seed: args.seed,
        ..StreamConfig::default()
    })
    .take(n_frames)
    .map(|t| t.to_frame())
    .collect();
    println!(
        "Experiment X2: end-to-end classified-ingest throughput ({} frames, {} training messages)\n",
        frames.len(),
        corpus.len()
    );

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();

    // Traditional models measured end-to-end through the real pipeline.
    let traditional: Vec<(&str, Box<dyn TextClassifier>)> = vec![
        (
            "TF-IDF + Complement NB",
            Box::new(TraditionalPipeline::train(
                FeatureConfig::default(),
                Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default())),
                &corpus,
            )),
        ),
        (
            "TF-IDF + Random Forest",
            Box::new(TraditionalPipeline::train(
                FeatureConfig::default(),
                Box::new(RandomForest::new(RandomForestConfig {
                    seed: args.seed,
                    n_trees: 20,
                    ..RandomForestConfig::default()
                })),
                &corpus,
            )),
        ),
    ];
    for (label, clf) in traditional {
        let store = Arc::new(LogStore::new());
        let service = Arc::new(
            MonitorService::new(Arc::from(clf)).with_prefilter(NoiseFilter::train(3, &corpus)),
        );
        let ingest = ClassifyingIngest::new(store.clone(), service, 4);
        let report = ingest.run(frames.iter().cloned());
        let mph = report.messages_per_second() * 3600.0;
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", report.seconds),
            format!("{mph:.0}"),
            "measured wall time".to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "technique": label,
            "seconds": report.seconds,
            "messages_per_hour": mph,
            "kind": "measured",
            "prefiltered": report.prefiltered,
        }));
    }

    // LLMs: virtual GPU seconds over a sample, extrapolated.
    let sample: Vec<&str> = frames.iter().take(300).map(|s| s.as_str()).collect();
    let prompt = PromptBuilder::new();
    for preset in [ModelPreset::falcon_7b(), ModelPreset::falcon_40b()] {
        let name = preset.name;
        let clf = GenerativeLlmClassifier::new(preset, &corpus, prompt.clone(), Some(24), args.seed);
        for m in &sample {
            let _ = clf.classify(m);
        }
        let mean = clf.mean_inference_seconds();
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", mean * frames.len() as f64),
            format!("{:.0}", 3600.0 / mean),
            "modeled 4xA100 time".to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "technique": name,
            "seconds": mean * frames.len() as f64,
            "messages_per_hour": 3600.0 / mean,
            "kind": "modeled",
        }));
    }
    let zs = ZeroShotLlmClassifier::new(&corpus);
    for m in &sample {
        let _ = zs.classify(m);
    }
    let mean = zs.mean_inference_seconds();
    rows.push(vec![
        zs.name(),
        format!("{:.1}", mean * frames.len() as f64),
        format!("{:.0}", 3600.0 / mean),
        "modeled 4xA100 time".to_string(),
    ]);
    json_rows.push(serde_json::json!({
        "technique": zs.name(),
        "seconds": mean * frames.len() as f64,
        "messages_per_hour": 3600.0 / mean,
        "kind": "modeled",
    }));

    println!(
        "{}",
        render_table(
            &["Technique", "Time for stream (s)", "Messages/hour", "Basis"],
            &rows
        )
    );
    println!("Darwin's load: >1,000,000 messages/hour. Shape to check: traditional models clear");
    println!("it comfortably; every LLM falls one to three orders of magnitude short (the");
    println!("paper's central conclusion).");

    if let Some(path) = &args.json_path {
        write_json(
            path,
            &serde_json::json!({
                "experiment": "xp_throughput",
                "scale": args.scale,
                "seed": args.seed,
                "n_frames": frames.len(),
                "rows": json_rows,
            }),
        );
    }
}
