//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. lemmatization on/off before TF-IDF (§4.3.2's motivation),
//! 2. TF-IDF vs raw term-frequency features,
//! 3. the Unimportant pre-filter in front of the general classifier (the
//!    paper's Conclusion recommendation),
//! 4. random oversampling of minority classes (§4.4.2).
//!
//! Run: `cargo run --release -p bench --bin xp_ablation`

use bench::{fmt_seconds, render_table, write_json, ExpArgs};
use datagen::{DriftConfig, DriftModel};
use hetsyslog_core::eval::{evaluate_model, prepare_split, EvalConfig};
use hetsyslog_core::{BucketBaseline, Category, FeatureConfig, NoiseFilter};
use hetsyslog_ml::{Classifier, ComplementNaiveBayes, ComplementNbConfig, Dataset};
use textproc::TfidfConfig;

/// Train on the clean training half, then score the clean test half and a
/// firmware-drifted copy of the *same* test half — robustness to rewording
/// is exactly what lemmatization (§4.3.2) is for.
fn run_variant(
    corpus: &[(String, Category)],
    features: FeatureConfig,
    seed: u64,
) -> (f64, f64, f64, f64) {
    let config = EvalConfig {
        seed,
        features,
        ..EvalConfig::default()
    };
    let split = prepare_split(corpus, &config);
    let mut model = ComplementNaiveBayes::new(ComplementNbConfig::default());
    let eval = evaluate_model(&mut model, &split);

    let mut drift = DriftModel::new(DriftConfig {
        seed: seed ^ 0xab1a,
        ..DriftConfig::default()
    });
    let drifted_texts = drift.mutate_all(&split.test_texts);
    let drifted_features: Vec<_> = drifted_texts
        .iter()
        .map(|t| split.pipeline.transform(t))
        .collect();
    let preds = model.predict_batch(&drifted_features);
    let cm = hetsyslog_ml::ConfusionMatrix::from_predictions(
        &split.test.class_names,
        &split.test.labels,
        &preds,
    );
    (
        eval.report.weighted_f1,
        cm.weighted_f1(),
        eval.report.train_seconds,
        eval.report.test_seconds,
    )
}

fn main() {
    let args = ExpArgs::parse();
    let corpus = args.corpus();
    println!(
        "Ablation studies (Complement NB probe, {} messages, scale {})\n",
        corpus.len(),
        args.scale
    );

    // --- 1 & 2: preprocessing variants, each scored on the clean test
    // half and on a firmware-drifted copy of it (train set always clean).
    let variants: Vec<(&str, FeatureConfig)> = vec![
        ("lemmatize + tf-idf (paper)", FeatureConfig::default()),
        (
            "no lemmatization",
            FeatureConfig {
                lemmatize: false,
                ..FeatureConfig::default()
            },
        ),
        (
            "word bigrams (ngram_range 1-2)",
            FeatureConfig {
                word_ngrams: 2,
                ..FeatureConfig::default()
            },
        ),
        (
            "raw term frequency (no idf, no norm)",
            FeatureConfig {
                tfidf: TfidfConfig {
                    min_df: 2,
                    smooth_idf: true,
                    l2_normalize: false,
                    sublinear_tf: false,
                    ..TfidfConfig::default()
                },
                ..FeatureConfig::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (label, features) in variants {
        let (f1, f1_drift, train_s, test_s) = run_variant(&corpus, features, args.seed);
        rows.push(vec![
            label.to_string(),
            format!("{f1:.5}"),
            format!("{f1_drift:.5}"),
            fmt_seconds(train_s),
            fmt_seconds(test_s),
        ]);
        json_rows.push(serde_json::json!({
            "variant": label,
            "weighted_f1": f1,
            "weighted_f1_drifted": f1_drift,
            "train_seconds": train_s,
            "test_seconds": test_s,
        }));
    }
    println!(
        "{}",
        render_table(
            &[
                "Preprocessing",
                "wF1 (clean test)",
                "wF1 (drifted test)",
                "Train",
                "Test"
            ],
            &rows
        )
    );

    // --- 3: the Unimportant pre-filter.
    let filter = NoiseFilter::train(3, &corpus);
    let noise_total = corpus
        .iter()
        .filter(|(_, c)| *c == Category::Unimportant)
        .count();
    let noise_texts: Vec<&str> = corpus
        .iter()
        .filter(|(_, c)| *c == Category::Unimportant)
        .map(|(m, _)| m.as_str())
        .collect();
    let caught = noise_texts.iter().filter(|m| filter.is_noise(m)).count();
    let signal_texts: Vec<&str> = corpus
        .iter()
        .filter(|(_, c)| *c != Category::Unimportant)
        .map(|(m, _)| m.as_str())
        .collect();
    let false_positives = signal_texts.iter().filter(|m| filter.is_noise(m)).count();
    println!(
        "Unimportant pre-filter (threshold 3): {} patterns catch {caught}/{noise_total} noise \
         messages with {false_positives}/{} false positives on signal.",
        filter.n_patterns(),
        signal_texts.len()
    );

    // --- 3b: variable masking in the bucket baseline (what makes
    // threshold 7 workable on Darwin).
    let masked = BucketBaseline::train(7, &corpus);
    let raw = BucketBaseline::train_raw(7, &corpus);
    println!(
        "Bucket masking: {} exemplars masked vs {} raw ({:.1}x labeling-burden reduction)",
        masked.n_buckets(),
        raw.n_buckets(),
        raw.n_buckets() as f64 / masked.n_buckets().max(1) as f64
    );

    // --- 4: oversampling (does balancing help the rare Slurm class?).
    let config = EvalConfig {
        seed: args.seed,
        ..EvalConfig::default()
    };
    let split = prepare_split(&corpus, &config);
    let mut plain = ComplementNaiveBayes::new(ComplementNbConfig::default());
    plain.fit(&split.train);
    let balanced: Dataset = split.train.random_oversample(args.seed);
    let mut over = ComplementNaiveBayes::new(ComplementNbConfig::default());
    over.fit(&balanced);
    let slurm = Category::SlurmIssue.index();
    let recall = |model: &ComplementNaiveBayes| -> f64 {
        let preds = model.predict_batch(&split.test.features);
        let mut hit = 0usize;
        let mut total = 0usize;
        for (p, &t) in preds.iter().zip(&split.test.labels) {
            if t == slurm {
                total += 1;
                if *p == slurm {
                    hit += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            hit as f64 / total as f64
        }
    };
    let mut smoted = ComplementNaiveBayes::new(ComplementNbConfig::default());
    smoted.fit(&hetsyslog_ml::smote_oversample(&split.train, 5, args.seed));
    let mut adasyned = ComplementNaiveBayes::new(ComplementNbConfig::default());
    adasyned.fit(&hetsyslog_ml::adasyn_oversample(&split.train, 5, args.seed));
    println!(
        "Oversampling: Slurm-Issues recall {:.3} (imbalanced) → {:.3} (random) → {:.3} (SMOTE) → {:.3} (ADASYN)",
        recall(&plain),
        recall(&over),
        recall(&smoted),
        recall(&adasyned)
    );

    if let Some(path) = &args.json_path {
        write_json(
            path,
            &serde_json::json!({
                "experiment": "xp_ablation",
                "scale": args.scale,
                "seed": args.seed,
                "preprocessing": json_rows,
                "prefilter": {
                    "patterns": filter.n_patterns(),
                    "caught": caught,
                    "noise_total": noise_total,
                    "false_positives": false_positives,
                    "signal_total": signal_texts.len(),
                },
                "bucket_masking": {
                    "masked_exemplars": masked.n_buckets(),
                    "raw_exemplars": raw.n_buckets(),
                },
                "oversampling": {
                    "slurm_recall_plain": recall(&plain),
                    "slurm_recall_oversampled": recall(&over),
                    "slurm_recall_smote": recall(&smoted),
                    "slurm_recall_adasyn": recall(&adasyned),
                },
            }),
        );
    }
}
