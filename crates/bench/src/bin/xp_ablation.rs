//! Experiment XA — preprocessing / filter / oversampling ablations
//! (DESIGN.md §3 XA).
//!
//! Thin wrapper over [`bench::experiments::xp_ablation`]; the conformance
//! runner (`repro`) executes the same code path.
//!
//! Run: `cargo run --release -p bench --bin xp_ablation`

use bench::{experiments, write_json, ExpArgs};

fn main() {
    let args = ExpArgs::parse();
    let out = experiments::xp_ablation(&args);
    print!("{}", out.report);
    if let Some(path) = &args.json_path {
        write_json(path, &out.value);
    }
}
