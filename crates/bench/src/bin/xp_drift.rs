//! Experiment X1 — the firmware-drift study: rewording fractures the
//! edit-distance bucket store while TF-IDF classifiers survive
//! (DESIGN.md §3 X1).
//!
//! Thin wrapper over [`bench::experiments::xp_drift`]; the conformance
//! runner (`repro`) executes the same code path.
//!
//! Run: `cargo run --release -p bench --bin xp_drift`

use bench::{experiments, write_json, ExpArgs};

fn main() {
    let args = ExpArgs::parse();
    let out = experiments::xp_drift(&args);
    print!("{}", out.report);
    if let Some(path) = &args.json_path {
        write_json(path, &out.value);
    }
}
