//! Experiment X1 — the firmware-drift study (Background §3, quantified).
//!
//! The paper's motivating pain: firmware updates reword messages, so the
//! edit-distance bucket store fractures (new buckets ⇒ human re-labeling)
//! while — the paper's hope — TF-IDF classifiers survive the rewording.
//! This binary measures both sides on the same drifted stream:
//!
//! * bucket baseline: fraction of drifted messages landing in *new*
//!   (unlabeled) buckets, and its classification accuracy before/after;
//! * TF-IDF + Complement NB: accuracy before/after drift.
//!
//! Run: `cargo run --release -p bench --bin xp_drift`

use bench::{render_table, write_json, ExpArgs};
use datagen::{DriftConfig, DriftModel};
use hetsyslog_core::{
    BucketBaseline, Category, FeatureConfig, TextClassifier, TraditionalPipeline,
};
use hetsyslog_ml::{ComplementNaiveBayes, ComplementNbConfig};

fn accuracy(clf: &dyn TextClassifier, data: &[(String, Category)]) -> f64 {
    let texts: Vec<&str> = data.iter().map(|(m, _)| m.as_str()).collect();
    let preds = clf.classify_batch(&texts);
    let correct = preds
        .iter()
        .zip(data)
        .filter(|(p, (_, c))| p.category == *c)
        .count();
    correct as f64 / data.len().max(1) as f64
}

fn main() {
    let args = ExpArgs::parse();
    let corpus = args.corpus();
    println!(
        "Experiment X1: firmware drift vs. classifiers ({} messages, scale {})\n",
        corpus.len(),
        args.scale
    );

    // Drifted copy of the corpus (same labels, reworded text).
    let mut drift = DriftModel::new(DriftConfig {
        seed: args.seed ^ 0xd41f7,
        ..DriftConfig::default()
    });
    let drifted: Vec<(String, Category)> =
        corpus.iter().map(|(m, c)| (drift.mutate(m), *c)).collect();

    // Bucket baseline trained pre-drift.
    let bucket = BucketBaseline::train(7, &corpus);
    let buckets_before = bucket.n_buckets();
    let bucket_acc_before = accuracy(&bucket, &corpus);
    let bucket_acc_after = accuracy(&bucket, &drifted);
    // Retraining burden: how many drifted messages found *no* bucket?
    let orphaned = drifted
        .iter()
        .filter(|(m, _)| bucket.find(m).is_none())
        .count();
    let orphan_rate = orphaned as f64 / drifted.len() as f64;

    // TF-IDF pipeline trained pre-drift.
    let tfidf = TraditionalPipeline::train(
        FeatureConfig::default(),
        Box::new(ComplementNaiveBayes::new(ComplementNbConfig::default())),
        &corpus,
    );
    let tfidf_acc_before = accuracy(&tfidf, &corpus);
    let tfidf_acc_after = accuracy(&tfidf, &drifted);

    let rows = vec![
        vec![
            bucket.name(),
            format!("{bucket_acc_before:.4}"),
            format!("{bucket_acc_after:.4}"),
            format!("{:.1}%", orphan_rate * 100.0),
        ],
        vec![
            tfidf.name(),
            format!("{tfidf_acc_before:.4}"),
            format!("{tfidf_acc_after:.4}"),
            "0.0% (no exemplars)".to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "Classifier",
                "Accuracy pre-drift",
                "Accuracy post-drift",
                "Orphaned msgs"
            ],
            &rows
        )
    );
    println!(
        "bucket store: {} exemplars pre-drift; {orphaned} of {} drifted messages would found NEW buckets",
        buckets_before,
        drifted.len()
    );
    println!("shape to check: TF-IDF degrades far less than bucketing, whose orphan rate IS the");
    println!("retraining burden the paper complains about.");

    assert!(
        tfidf_acc_after >= bucket_acc_after,
        "shape violation: TF-IDF should survive drift better than bucketing"
    );

    if let Some(path) = &args.json_path {
        let value = serde_json::json!({
            "experiment": "xp_drift",
            "scale": args.scale,
            "seed": args.seed,
            "bucket": {
                "name": bucket.name(),
                "exemplars": buckets_before,
                "accuracy_before": bucket_acc_before,
                "accuracy_after": bucket_acc_after,
                "orphaned": orphaned,
                "orphan_rate": orphan_rate,
            },
            "tfidf": {
                "name": tfidf.name(),
                "accuracy_before": tfidf_acc_before,
                "accuracy_after": tfidf_acc_after,
            },
        });
        write_json(path, &value);
    }
}
