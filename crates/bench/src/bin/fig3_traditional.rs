//! Figure 3 — the eight traditional classifiers: weighted F1, training
//! time, testing time (DESIGN.md §3 F3). With `--drop-unimportant`, runs
//! the §5.1 ablation that removes the troublesome noise class (F3b).
//!
//! Thin wrapper over [`bench::experiments::fig3`]; the conformance
//! runner (`repro`) executes the same code path.
//!
//! Run: `cargo run --release -p bench --bin fig3_traditional [--drop-unimportant]`

use bench::{experiments, write_json, ExpArgs};

fn main() {
    let args = ExpArgs::parse();
    let out = experiments::fig3(&args, args.has_flag("--drop-unimportant"));
    print!("{}", out.report);
    if let Some(path) = &args.json_path {
        write_json(path, &out.value);
    }
}
