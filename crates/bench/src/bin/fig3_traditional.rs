//! Figure 3 — the eight traditional classifiers: weighted F1, training
//! time, testing time. With `--drop-unimportant`, runs the §5.1 ablation
//! that removes the troublesome noise class.
//!
//! Run: `cargo run --release -p bench --bin fig3_traditional [--drop-unimportant] [--scale 0.05]`

use bench::{fmt_seconds, render_table, write_json, ExpArgs};
use hetsyslog_core::eval::{evaluate_suite, EvalConfig};
use hetsyslog_ml::paper_suite;

fn main() {
    let args = ExpArgs::parse();
    let drop_unimportant = args.has_flag("--drop-unimportant");
    let corpus = args.corpus();
    println!(
        "Figure 3 reproduction: traditional classifiers with TF-IDF preprocessing\n\
         ({} messages, scale {}, drop_unimportant={})\n",
        corpus.len(),
        args.scale,
        drop_unimportant
    );

    let config = EvalConfig {
        seed: args.seed,
        drop_unimportant,
        ..EvalConfig::default()
    };
    let mut models = paper_suite(args.seed);
    let (split, evals) = evaluate_suite(&corpus, &mut models, &config);
    println!(
        "split: {} train / {} test, {} features (preprocess {})\n",
        split.train.len(),
        split.test.len(),
        split.train.n_features(),
        fmt_seconds(split.preprocess_seconds)
    );

    let rows: Vec<Vec<String>> = evals
        .iter()
        .map(|e| {
            vec![
                e.report.model.clone(),
                format!("{:.6}", e.report.weighted_f1),
                fmt_seconds(e.report.train_seconds),
                fmt_seconds(e.report.test_seconds),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Classifier", "Weighted F1", "Training Time", "Testing Time"],
            &rows
        )
    );

    println!("Paper's Figure 3 shape checks:");
    println!("  - every model's weighted F1 > 0.95 (paper: 0.9523..0.9995)");
    println!("  - kNN: fastest training, slowest testing");
    println!("  - Linear SVC: slowest training");
    println!("  - Complement NB: fastest testing");
    if drop_unimportant {
        println!("  - ablation: all F1 scores rise, Linear SVC training collapses");
    }

    if let Some(path) = &args.json_path {
        let value = serde_json::json!({
            "experiment": if drop_unimportant { "fig3_drop_unimportant" } else { "fig3" },
            "scale": args.scale,
            "seed": args.seed,
            "n_train": split.train.len(),
            "n_test": split.test.len(),
            "n_features": split.train.n_features(),
            "rows": evals.iter().map(|e| serde_json::json!({
                "model": e.report.model,
                "weighted_f1": e.report.weighted_f1,
                "macro_f1": e.report.macro_f1,
                "accuracy": e.report.accuracy,
                "train_seconds": e.report.train_seconds,
                "test_seconds": e.report.test_seconds,
                "messages_per_hour": e.report.messages_per_hour(),
            })).collect::<Vec<_>>(),
        });
        write_json(path, &value);
    }
}
