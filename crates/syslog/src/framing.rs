//! RFC 6587 TCP stream framing.
//!
//! Syslog over TCP (how Darwin's nodes reach the central syslog server)
//! delivers a byte stream, not datagrams; RFC 6587 defines two framings
//! that real senders mix freely:
//!
//! * **Octet counting**: `MSG-LEN SP MSG` (rsyslog's default for TCP);
//! * **Non-transparent**: frames terminated by LF.
//!
//! [`FrameDecoder`] incrementally splits a stream into frames, detecting
//! the framing per message the way rsyslog's receiver does (a frame that
//! starts with a digit run followed by a space is octet-counted).

/// Incremental RFC 6587 frame decoder.
#[derive(Debug, Clone, Default)]
pub struct FrameDecoder {
    buffer: Vec<u8>,
    /// Frames dropped because their declared length was unparseable or
    /// oversized.
    dropped: u64,
}

/// Upper bound on a declared octet count (guards against a corrupt length
/// swallowing the stream).
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// Outcome of attempting octet-counted framing at the buffer head.
enum OctetResult {
    /// A complete frame was extracted.
    Frame(String),
    /// A corrupt length token was dropped; the buffer may hold more.
    Dropped,
    /// A plausible count was seen but the payload has not fully arrived.
    Incomplete,
    /// The buffer head is not octet-counted framing.
    NotOctet,
}

impl FrameDecoder {
    /// New empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Bytes currently buffered waiting for more input.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Frames dropped due to malformed octet counts.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Feed bytes; returns every complete frame they unlocked.
    pub fn push(&mut self, bytes: &[u8]) -> Vec<String> {
        self.buffer.extend_from_slice(bytes);
        let mut frames = Vec::new();
        while let Some(frame) = self.try_take_frame() {
            frames.push(frame);
        }
        frames
    }

    /// Flush a trailing unterminated non-transparent frame (stream end).
    pub fn finish(&mut self) -> Option<String> {
        if self.buffer.is_empty() {
            return None;
        }
        let frame = String::from_utf8_lossy(&self.buffer).trim_end().to_string();
        self.buffer.clear();
        (!frame.is_empty()).then_some(frame)
    }

    fn try_take_frame(&mut self) -> Option<String> {
        if self.buffer.is_empty() {
            return None;
        }
        if self.buffer[0].is_ascii_digit() {
            match self.try_octet_counted() {
                OctetResult::Frame(frame) => return Some(frame),
                // A corrupt count was dropped; rescan what remains.
                OctetResult::Dropped => return self.try_take_frame(),
                // Valid count, payload still arriving.
                OctetResult::Incomplete => return None,
                // Digits but not a count: fall through to LF framing.
                OctetResult::NotOctet => {}
            }
        }
        self.try_non_transparent()
    }

    fn try_octet_counted(&mut self) -> OctetResult {
        // Find the count terminator within the allowed digit width.
        let window = &self.buffer[..self.buffer.len().min(7)];
        let Some(space) = window.iter().position(|&b| b == b' ') else {
            // No space yet: either a short partial count (wait) or an LF
            // frame that happens to start with digits.
            if self.buffer.len() <= 6 && self.buffer.iter().all(|b| b.is_ascii_digit()) {
                return OctetResult::Incomplete;
            }
            return OctetResult::NotOctet;
        };
        if space == 0 || !self.buffer[..space].iter().all(|b| b.is_ascii_digit()) {
            return OctetResult::NotOctet;
        }
        let len: usize = std::str::from_utf8(&self.buffer[..space])
            .expect("digits are utf8")
            .parse()
            .expect("digit run parses");
        if len == 0 || len > MAX_FRAME_LEN {
            // Corrupt count: drop the length token and resynchronize.
            self.buffer.drain(..=space);
            self.dropped += 1;
            return OctetResult::Dropped;
        }
        if self.buffer.len() < space + 1 + len {
            return OctetResult::Incomplete;
        }
        let frame_bytes: Vec<u8> = self.buffer[space + 1..space + 1 + len].to_vec();
        self.buffer.drain(..space + 1 + len);
        OctetResult::Frame(String::from_utf8_lossy(&frame_bytes).into_owned())
    }

    fn try_non_transparent(&mut self) -> Option<String> {
        let lf = self.buffer.iter().position(|&b| b == b'\n')?;
        let frame_bytes: Vec<u8> = self.buffer[..lf].to_vec();
        self.buffer.drain(..=lf);
        let frame = String::from_utf8_lossy(&frame_bytes)
            .trim_end_matches('\r')
            .to_string();
        if frame.is_empty() {
            // Swallow blank lines and keep scanning.
            return self.try_take_frame();
        }
        Some(frame)
    }
}

/// Split a complete in-memory stream (convenience over [`FrameDecoder`]).
pub fn split_stream(bytes: &[u8]) -> Vec<String> {
    let mut decoder = FrameDecoder::new();
    let mut frames = decoder.push(bytes);
    if let Some(tail) = decoder.finish() {
        frames.push(tail);
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRAME: &str = "<13>Oct 11 22:14:15 cn01 app: hello";

    #[test]
    fn octet_counted_single() {
        let wire = format!("{} {FRAME}", FRAME.len());
        assert_eq!(split_stream(wire.as_bytes()), vec![FRAME.to_string()]);
    }

    #[test]
    fn octet_counted_back_to_back() {
        let wire = format!("{0} {FRAME}{0} {FRAME}", FRAME.len());
        assert_eq!(split_stream(wire.as_bytes()).len(), 2);
    }

    #[test]
    fn non_transparent_lines() {
        let wire = format!("{FRAME}\n{FRAME}\r\n\n{FRAME}\n");
        let frames = split_stream(wire.as_bytes());
        assert_eq!(frames.len(), 3);
        assert!(frames.iter().all(|f| f == FRAME));
    }

    #[test]
    fn mixed_framings_in_one_stream() {
        let wire = format!("{} {FRAME}{FRAME}\n", FRAME.len());
        let frames = split_stream(wire.as_bytes());
        assert_eq!(frames.len(), 2);
    }

    #[test]
    fn partial_delivery_across_pushes() {
        let wire = format!("{} {FRAME}", FRAME.len());
        let bytes = wire.as_bytes();
        let mut decoder = FrameDecoder::new();
        // Byte-at-a-time delivery: only the final byte completes the frame.
        let mut frames = Vec::new();
        for b in bytes {
            frames.extend(decoder.push(std::slice::from_ref(b)));
        }
        assert_eq!(frames, vec![FRAME.to_string()]);
        assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn oversized_count_resynchronizes() {
        let wire = format!("999999 {FRAME}\n");
        let mut decoder = FrameDecoder::new();
        let frames = decoder.push(wire.as_bytes());
        assert_eq!(decoder.dropped(), 1);
        // After dropping the bogus count, the payload survives as an LF
        // frame.
        assert_eq!(frames, vec![FRAME.to_string()]);
    }

    #[test]
    fn pri_digits_are_not_mistaken_for_counts() {
        // A non-transparent frame starting with '<' then digits is fine,
        // but one starting with bare digits + space could be ambiguous;
        // RFC receivers treat it as octet-counted. Verify the common case:
        // frames starting with '<PRI>' go through LF framing.
        let frames = split_stream(format!("{FRAME}\n").as_bytes());
        assert_eq!(frames, vec![FRAME.to_string()]);
    }

    #[test]
    fn finish_flushes_unterminated_tail() {
        let mut decoder = FrameDecoder::new();
        assert!(decoder.push(FRAME.as_bytes()).is_empty());
        assert_eq!(decoder.finish(), Some(FRAME.to_string()));
        assert_eq!(decoder.finish(), None);
    }

    #[test]
    fn empty_stream() {
        assert!(split_stream(b"").is_empty());
        assert!(split_stream(b"\n\n\n").is_empty());
    }

    #[test]
    fn frames_parse_after_splitting() {
        let wire = format!("{} {FRAME}{FRAME}\n", FRAME.len());
        for frame in split_stream(wire.as_bytes()) {
            let parsed = crate::parse(&frame).unwrap();
            assert_eq!(parsed.hostname.as_deref(), Some("cn01"));
        }
    }
}
