//! RFC 6587 TCP stream framing.
//!
//! Syslog over TCP (how Darwin's nodes reach the central syslog server)
//! delivers a byte stream, not datagrams; RFC 6587 defines two framings
//! that real senders mix freely:
//!
//! * **Octet counting**: `MSG-LEN SP MSG` (rsyslog's default for TCP);
//! * **Non-transparent**: frames terminated by LF.
//!
//! [`FrameDecoder`] incrementally splits a stream into frames, detecting
//! the framing per message the way rsyslog's receiver does (a frame that
//! starts with a digit run followed by a space is octet-counted).

/// Find the first occurrence of `needle` in `hay` with a SWAR
/// (SIMD-within-a-register) scan: 8 bytes per step through the classic
/// zero-byte trick — `(w - 0x01…01) & !w & 0x80…80` has a high bit set
/// exactly in the lanes of `w` that are zero, so XORing the haystack word
/// with a splatted needle turns "find the needle" into "find the zero
/// lane". The unaligned tail falls back to a byte loop.
///
/// This is the frame decoder's hot inner loop: LF-framed syslog spends
/// almost all of its decode time locating the next `\n`, and the word scan
/// retires 8 haystack bytes per iteration against the byte loop's 1.
/// Byte-exact with [`find_byte_scalar`] (proptested, and used as the
/// decode oracle by `FrameDecoder::scalar_oracle`).
#[inline]
pub fn find_byte_swar(hay: &[u8], needle: u8) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let pat = u64::from(needle).wrapping_mul(LO);
    let mut i = 0;
    while i + 8 <= hay.len() {
        let word = u64::from_le_bytes(hay[i..i + 8].try_into().expect("8-byte chunk"));
        let x = word ^ pat;
        let zero_lanes = x.wrapping_sub(LO) & !x & HI;
        if zero_lanes != 0 {
            // trailing_zeros finds the lowest matching lane, which under
            // little-endian loads is the earliest haystack position.
            return Some(i + (zero_lanes.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    hay[i..].iter().position(|&b| b == needle).map(|p| i + p)
}

/// The byte-at-a-time reference for [`find_byte_swar`]: the scalar oracle
/// the SWAR path is proptested against, and the scan the pre-SWAR decoder
/// actually ran.
#[inline]
pub fn find_byte_scalar(hay: &[u8], needle: u8) -> Option<usize> {
    hay.iter().position(|&b| b == needle)
}

/// Incremental RFC 6587 frame decoder.
#[derive(Debug, Clone, Default)]
pub struct FrameDecoder {
    buffer: Vec<u8>,
    /// Frames dropped because their declared length was unparseable or
    /// oversized.
    dropped: u64,
    /// Use the scalar byte-loop boundary scan instead of the SWAR word
    /// scan. Differential-testing hook: the two must be byte-exact.
    scalar: bool,
}

/// Upper bound on a declared octet count (guards against a corrupt length
/// swallowing the stream).
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// Outcome of one framing step at a buffer offset.
enum Step {
    /// A complete frame spanning `.1` input bytes was extracted.
    Frame(String, usize),
    /// `.0` bytes of non-payload input (blank lines, a corrupt count
    /// token) were consumed without producing a frame.
    Skip(usize),
    /// The remaining bytes are an incomplete frame; wait for more input.
    NeedMore,
}

/// Outcome of attempting octet-counted framing at the buffer head.
enum OctetResult {
    /// A complete frame spanning `.1` bytes was extracted.
    Frame(String, usize),
    /// A corrupt length token of `.0` bytes should be dropped.
    Dropped(usize),
    /// A plausible count was seen but the payload has not fully arrived.
    Incomplete,
    /// The buffer head is not octet-counted framing.
    NotOctet,
}

impl FrameDecoder {
    /// New empty decoder (SWAR boundary scan).
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// A decoder forced onto the scalar byte-loop boundary scan — the
    /// byte-exact oracle the SWAR fast path is differential-tested
    /// against. Same frames, same drop accounting, one word-scan slower.
    pub fn scalar_oracle() -> FrameDecoder {
        FrameDecoder {
            scalar: true,
            ..FrameDecoder::default()
        }
    }

    /// Bytes currently buffered waiting for more input.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Frames dropped due to malformed octet counts.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Feed bytes; returns every complete frame they unlocked.
    ///
    /// Frames are scanned with a cursor and the buffer compacted ONCE at
    /// the end — draining per frame memmoves the whole remaining buffer
    /// for every message and goes quadratic on a read that carries many
    /// small frames (the common case for batched senders).
    pub fn push(&mut self, bytes: &[u8]) -> Vec<String> {
        self.buffer.extend_from_slice(bytes);
        let mut frames = Vec::new();
        let mut head = 0;
        loop {
            match Self::step(&self.buffer[head..], &mut self.dropped, self.scalar) {
                Step::Frame(frame, consumed) => {
                    frames.push(frame);
                    head += consumed;
                }
                Step::Skip(consumed) => head += consumed,
                Step::NeedMore => break,
            }
        }
        if head > 0 {
            self.buffer.drain(..head);
        }
        frames
    }

    /// Flush a trailing unterminated frame (stream end).
    ///
    /// A stream cut mid-way through an octet-counted frame leaves the
    /// `LEN ` count token at the buffer head; flushing it verbatim would
    /// leak the count into the message text. The token is stripped (it is
    /// framing, not payload) and the partial payload flushed; a tail that
    /// is *only* a (possibly partial) count token is counted as dropped.
    pub fn finish(&mut self) -> Option<String> {
        if self.buffer.is_empty() {
            return None;
        }
        let mut head = 0;
        if self.buffer[0].is_ascii_digit() {
            let digit_run = self
                .buffer
                .iter()
                .take_while(|b| b.is_ascii_digit())
                .count();
            if digit_run == self.buffer.len() && digit_run <= 6 {
                // Nothing but a partial count token arrived.
                self.buffer.clear();
                self.dropped += 1;
                return None;
            }
            if digit_run <= 6 && self.buffer[digit_run] == b' ' {
                // A valid pending count (corrupt ones were already dropped
                // during push): strip `LEN ` and flush the partial payload.
                head = digit_run + 1;
            }
        }
        let frame = String::from_utf8_lossy(&self.buffer[head..])
            .trim_end()
            .to_string();
        self.buffer.clear();
        if frame.is_empty() {
            if head > 0 {
                // The declared payload never arrived at all.
                self.dropped += 1;
            }
            return None;
        }
        Some(frame)
    }

    /// One framing step over `buf` (the unconsumed buffer tail).
    /// Iterative callers loop on `Skip` — a recursive rescan after every
    /// dropped count or blank line overflows the stack on hostile input
    /// (a single push of ~100k blank lines).
    fn step(buf: &[u8], dropped: &mut u64, scalar: bool) -> Step {
        if buf.is_empty() {
            return Step::NeedMore;
        }
        if buf[0].is_ascii_digit() {
            match Self::try_octet_counted(buf) {
                OctetResult::Frame(frame, consumed) => return Step::Frame(frame, consumed),
                OctetResult::Dropped(consumed) => {
                    // Corrupt count: drop the length token, resynchronize.
                    *dropped += 1;
                    return Step::Skip(consumed);
                }
                // Valid count, payload still arriving.
                OctetResult::Incomplete => return Step::NeedMore,
                // Digits but not a count: fall through to LF framing.
                OctetResult::NotOctet => {}
            }
        }
        Self::try_non_transparent(buf, scalar)
    }

    fn try_octet_counted(buf: &[u8]) -> OctetResult {
        // Find the count terminator within the allowed digit width.
        let window = &buf[..buf.len().min(7)];
        let Some(space) = window.iter().position(|&b| b == b' ') else {
            // No space yet: either a short partial count (wait) or an LF
            // frame that happens to start with digits.
            if buf.len() <= 6 && buf.iter().all(|b| b.is_ascii_digit()) {
                return OctetResult::Incomplete;
            }
            return OctetResult::NotOctet;
        };
        if space == 0 || !buf[..space].iter().all(|b| b.is_ascii_digit()) {
            return OctetResult::NotOctet;
        }
        let len: usize = std::str::from_utf8(&buf[..space])
            .expect("digits are utf8")
            .parse()
            .expect("digit run parses");
        if len == 0 || len > MAX_FRAME_LEN {
            return OctetResult::Dropped(space + 1);
        }
        if buf.len() < space + 1 + len {
            return OctetResult::Incomplete;
        }
        let frame = String::from_utf8_lossy(&buf[space + 1..space + 1 + len]).into_owned();
        OctetResult::Frame(frame, space + 1 + len)
    }

    fn try_non_transparent(buf: &[u8], scalar: bool) -> Step {
        // Swallow the whole leading run of blank lines (`(\r*\n)+`) in one
        // skip: consuming them one at a time is quadratic on an LF flood.
        let mut skip = 0;
        loop {
            let mut j = skip;
            while j < buf.len() && buf[j] == b'\r' {
                j += 1;
            }
            if j < buf.len() && buf[j] == b'\n' {
                skip = j + 1;
            } else {
                break;
            }
        }
        if skip > 0 {
            return Step::Skip(skip);
        }
        let lf = if scalar {
            find_byte_scalar(buf, b'\n')
        } else {
            find_byte_swar(buf, b'\n')
        };
        let Some(lf) = lf else {
            return Step::NeedMore;
        };
        let frame = String::from_utf8_lossy(&buf[..lf])
            .trim_end_matches('\r')
            .to_string();
        if frame.is_empty() {
            // A line of pure '\r's trims to nothing: also a blank line.
            Step::Skip(lf + 1)
        } else {
            Step::Frame(frame, lf + 1)
        }
    }
}

/// Split a complete in-memory stream (convenience over [`FrameDecoder`]).
pub fn split_stream(bytes: &[u8]) -> Vec<String> {
    let mut decoder = FrameDecoder::new();
    let mut frames = decoder.push(bytes);
    if let Some(tail) = decoder.finish() {
        frames.push(tail);
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRAME: &str = "<13>Oct 11 22:14:15 cn01 app: hello";

    #[test]
    fn octet_counted_single() {
        let wire = format!("{} {FRAME}", FRAME.len());
        assert_eq!(split_stream(wire.as_bytes()), vec![FRAME.to_string()]);
    }

    #[test]
    fn octet_counted_back_to_back() {
        let wire = format!("{0} {FRAME}{0} {FRAME}", FRAME.len());
        assert_eq!(split_stream(wire.as_bytes()).len(), 2);
    }

    #[test]
    fn non_transparent_lines() {
        let wire = format!("{FRAME}\n{FRAME}\r\n\n{FRAME}\n");
        let frames = split_stream(wire.as_bytes());
        assert_eq!(frames.len(), 3);
        assert!(frames.iter().all(|f| f == FRAME));
    }

    #[test]
    fn mixed_framings_in_one_stream() {
        let wire = format!("{} {FRAME}{FRAME}\n", FRAME.len());
        let frames = split_stream(wire.as_bytes());
        assert_eq!(frames.len(), 2);
    }

    #[test]
    fn partial_delivery_across_pushes() {
        let wire = format!("{} {FRAME}", FRAME.len());
        let bytes = wire.as_bytes();
        let mut decoder = FrameDecoder::new();
        // Byte-at-a-time delivery: only the final byte completes the frame.
        let mut frames = Vec::new();
        for b in bytes {
            frames.extend(decoder.push(std::slice::from_ref(b)));
        }
        assert_eq!(frames, vec![FRAME.to_string()]);
        assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn oversized_count_resynchronizes() {
        let wire = format!("999999 {FRAME}\n");
        let mut decoder = FrameDecoder::new();
        let frames = decoder.push(wire.as_bytes());
        assert_eq!(decoder.dropped(), 1);
        // After dropping the bogus count, the payload survives as an LF
        // frame.
        assert_eq!(frames, vec![FRAME.to_string()]);
    }

    #[test]
    fn pri_digits_are_not_mistaken_for_counts() {
        // A non-transparent frame starting with '<' then digits is fine,
        // but one starting with bare digits + space could be ambiguous;
        // RFC receivers treat it as octet-counted. Verify the common case:
        // frames starting with '<PRI>' go through LF framing.
        let frames = split_stream(format!("{FRAME}\n").as_bytes());
        assert_eq!(frames, vec![FRAME.to_string()]);
    }

    #[test]
    fn finish_flushes_unterminated_tail() {
        let mut decoder = FrameDecoder::new();
        assert!(decoder.push(FRAME.as_bytes()).is_empty());
        assert_eq!(decoder.finish(), Some(FRAME.to_string()));
        assert_eq!(decoder.finish(), None);
    }

    #[test]
    fn empty_stream() {
        assert!(split_stream(b"").is_empty());
        assert!(split_stream(b"\n\n\n").is_empty());
    }

    #[test]
    fn blank_line_flood_does_not_overflow_stack() {
        // The recursive blank-line swallow overflowed the stack on a single
        // push of ~100k blank lines; the loop must absorb it (quickly).
        let mut decoder = FrameDecoder::new();
        let flood: Vec<u8> = b"\n".repeat(150_000);
        assert!(decoder.push(&flood).is_empty());
        assert_eq!(decoder.pending(), 0);
        // Mixed CRLF blanks, with a real frame buried at the end.
        let mut wire = b"\r\n".repeat(50_000);
        wire.extend_from_slice(FRAME.as_bytes());
        wire.push(b'\n');
        assert_eq!(decoder.push(&wire), vec![FRAME.to_string()]);
    }

    #[test]
    fn corrupt_count_flood_does_not_overflow_stack() {
        // Each "999999 " token is dropped and rescanned; recursion here
        // also grew one stack frame per drop.
        let mut decoder = FrameDecoder::new();
        let flood: Vec<u8> = b"999999 ".repeat(60_000);
        assert!(decoder.push(&flood).is_empty());
        assert_eq!(decoder.dropped(), 60_000);
    }

    #[test]
    fn blank_lines_before_octet_frame_are_skipped() {
        let wire = format!("\n\r\n{} {FRAME}", FRAME.len());
        assert_eq!(split_stream(wire.as_bytes()), vec![FRAME.to_string()]);
    }

    #[test]
    fn finish_strips_count_prefix_of_truncated_octet_frame() {
        // Stream ends mid-way through an octet-counted frame: the flushed
        // tail must not leak the "35 " count token into the message.
        let mut decoder = FrameDecoder::new();
        let truncated = &FRAME[..23];
        assert!(decoder
            .push(format!("{} {truncated}", FRAME.len()).as_bytes())
            .is_empty());
        assert_eq!(decoder.finish(), Some(truncated.to_string()));
    }

    #[test]
    fn finish_drops_bare_count_token() {
        // Only (part of) a count token arrived: framing metadata, not a
        // message — count it as dropped rather than flushing "123".
        let mut decoder = FrameDecoder::new();
        assert!(decoder.push(b"123").is_empty());
        assert_eq!(decoder.finish(), None);
        assert_eq!(decoder.dropped(), 1);

        let mut decoder = FrameDecoder::new();
        assert!(decoder.push(b"35 ").is_empty());
        assert_eq!(decoder.finish(), None);
        assert_eq!(decoder.dropped(), 1);
    }

    #[test]
    fn finish_keeps_digit_leading_non_transparent_tail() {
        // A tail that merely *starts* with digits but is not octet framing
        // (no space after ≤6 digits) flushes verbatim.
        let mut decoder = FrameDecoder::new();
        decoder.push(b"12345678 load average high");
        assert_eq!(
            decoder.finish(),
            Some("12345678 load average high".to_string())
        );
        assert_eq!(decoder.dropped(), 0);
    }

    #[test]
    fn swar_find_byte_matches_scalar_on_edges() {
        // Needle at every offset of a buffer spanning several words, plus
        // the no-match, empty, and high-bit-byte cases the zero-lane trick
        // must get right.
        for len in 0..40usize {
            for at in 0..len {
                let mut hay = vec![0xAAu8; len];
                hay[at] = b'\n';
                assert_eq!(find_byte_swar(&hay, b'\n'), Some(at), "len={len} at={at}");
                assert_eq!(find_byte_swar(&hay, b'\n'), find_byte_scalar(&hay, b'\n'));
            }
            let hay = vec![0x80u8; len];
            assert_eq!(find_byte_swar(&hay, b'\n'), None);
            // 0x80 needles exercise the high-bit lanes directly.
            assert_eq!(
                find_byte_swar(&hay, 0x80),
                find_byte_scalar(&hay, 0x80),
                "len={len}"
            );
        }
        assert_eq!(find_byte_swar(b"", b'\n'), None);
        // First match wins when several are present in one word.
        assert_eq!(find_byte_swar(b"a\n\n\n\n\n\nb", b'\n'), Some(1));
    }

    #[test]
    fn scalar_oracle_decodes_identically_on_mixed_wire() {
        let wire = format!(
            "{} {FRAME}\r\n\n{FRAME}\n999999 \n@@garbage \x01\x02!!\n{0} {FRAME}",
            FRAME.len()
        );
        let mut swar = FrameDecoder::new();
        let mut scalar = FrameDecoder::scalar_oracle();
        for chunk in wire.as_bytes().chunks(13) {
            assert_eq!(swar.push(chunk), scalar.push(chunk));
            assert_eq!(swar.pending(), scalar.pending());
            assert_eq!(swar.dropped(), scalar.dropped());
        }
        assert_eq!(swar.finish(), scalar.finish());
        assert_eq!(swar.dropped(), scalar.dropped());
    }

    #[test]
    fn frames_parse_after_splitting() {
        let wire = format!("{} {FRAME}{FRAME}\n", FRAME.len());
        for frame in split_stream(wire.as_bytes()) {
            let parsed = crate::parse(&frame).unwrap();
            assert_eq!(parsed.hostname.as_deref(), Some("cn01"));
        }
    }
}
