//! Syslog priority: facility and severity codes (RFC 5424 §6.2.1).

use crate::error::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Message severity, 0 (most severe) through 7 (least).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Severity {
    /// System is unusable.
    Emergency = 0,
    /// Action must be taken immediately.
    Alert = 1,
    /// Critical conditions.
    Critical = 2,
    /// Error conditions.
    Error = 3,
    /// Warning conditions.
    Warning = 4,
    /// Normal but significant condition.
    Notice = 5,
    /// Informational messages.
    Informational = 6,
    /// Debug-level messages.
    Debug = 7,
}

impl Severity {
    /// All severities in numeric order.
    pub const ALL: [Severity; 8] = [
        Severity::Emergency,
        Severity::Alert,
        Severity::Critical,
        Severity::Error,
        Severity::Warning,
        Severity::Notice,
        Severity::Informational,
        Severity::Debug,
    ];

    /// Decode a numeric severity code (0-7).
    pub fn from_code(code: u8) -> Option<Severity> {
        Severity::ALL.get(code as usize).copied()
    }

    /// The numeric code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The RFC keyword, lowercase.
    pub fn keyword(self) -> &'static str {
        match self {
            Severity::Emergency => "emerg",
            Severity::Alert => "alert",
            Severity::Critical => "crit",
            Severity::Error => "err",
            Severity::Warning => "warning",
            Severity::Notice => "notice",
            Severity::Informational => "info",
            Severity::Debug => "debug",
        }
    }

    /// True for severities that usually warrant operator attention
    /// (warning or more severe).
    pub fn is_actionable(self) -> bool {
        self <= Severity::Warning
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Message facility, identifying the originating subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Facility {
    /// Kernel messages.
    Kern = 0,
    /// User-level messages.
    User = 1,
    /// Mail system.
    Mail = 2,
    /// System daemons.
    Daemon = 3,
    /// Security/authorization messages.
    Auth = 4,
    /// Messages generated internally by syslogd.
    Syslog = 5,
    /// Line printer subsystem.
    Lpr = 6,
    /// Network news subsystem.
    News = 7,
    /// UUCP subsystem.
    Uucp = 8,
    /// Clock daemon.
    Cron = 9,
    /// Security/authorization messages (private).
    AuthPriv = 10,
    /// FTP daemon.
    Ftp = 11,
    /// NTP subsystem.
    Ntp = 12,
    /// Log audit.
    Audit = 13,
    /// Log alert.
    LogAlert = 14,
    /// Clock daemon (note 2).
    Cron2 = 15,
    /// Locally used facility 0.
    Local0 = 16,
    /// Locally used facility 1.
    Local1 = 17,
    /// Locally used facility 2.
    Local2 = 18,
    /// Locally used facility 3.
    Local3 = 19,
    /// Locally used facility 4.
    Local4 = 20,
    /// Locally used facility 5.
    Local5 = 21,
    /// Locally used facility 6.
    Local6 = 22,
    /// Locally used facility 7.
    Local7 = 23,
}

impl Facility {
    /// All facilities in numeric order.
    pub const ALL: [Facility; 24] = [
        Facility::Kern,
        Facility::User,
        Facility::Mail,
        Facility::Daemon,
        Facility::Auth,
        Facility::Syslog,
        Facility::Lpr,
        Facility::News,
        Facility::Uucp,
        Facility::Cron,
        Facility::AuthPriv,
        Facility::Ftp,
        Facility::Ntp,
        Facility::Audit,
        Facility::LogAlert,
        Facility::Cron2,
        Facility::Local0,
        Facility::Local1,
        Facility::Local2,
        Facility::Local3,
        Facility::Local4,
        Facility::Local5,
        Facility::Local6,
        Facility::Local7,
    ];

    /// Decode a numeric facility code (0-23).
    pub fn from_code(code: u8) -> Option<Facility> {
        Facility::ALL.get(code as usize).copied()
    }

    /// The numeric code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The conventional keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            Facility::Kern => "kern",
            Facility::User => "user",
            Facility::Mail => "mail",
            Facility::Daemon => "daemon",
            Facility::Auth => "auth",
            Facility::Syslog => "syslog",
            Facility::Lpr => "lpr",
            Facility::News => "news",
            Facility::Uucp => "uucp",
            Facility::Cron => "cron",
            Facility::AuthPriv => "authpriv",
            Facility::Ftp => "ftp",
            Facility::Ntp => "ntp",
            Facility::Audit => "audit",
            Facility::LogAlert => "alert",
            Facility::Cron2 => "clock",
            Facility::Local0 => "local0",
            Facility::Local1 => "local1",
            Facility::Local2 => "local2",
            Facility::Local3 => "local3",
            Facility::Local4 => "local4",
            Facility::Local5 => "local5",
            Facility::Local6 => "local6",
            Facility::Local7 => "local7",
        }
    }
}

impl fmt::Display for Facility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Split a PRI value into `(facility, severity)`.
pub fn decode_pri(pri: u16) -> Result<(Facility, Severity), ParseError> {
    if pri > 191 {
        return Err(ParseError::PriOutOfRange(pri));
    }
    let facility = Facility::from_code((pri / 8) as u8).ok_or(ParseError::PriOutOfRange(pri))?;
    let severity = Severity::from_code((pri % 8) as u8).ok_or(ParseError::PriOutOfRange(pri))?;
    Ok((facility, severity))
}

/// Combine facility and severity into a PRI value.
pub fn encode_pri(facility: Facility, severity: Severity) -> u16 {
    facility.code() as u16 * 8 + severity.code() as u16
}

/// Parse the leading `<PRI>` of a frame, returning the decoded pair and the
/// remainder of the input.
pub fn parse_pri_prefix(raw: &str) -> Result<((Facility, Severity), &str), ParseError> {
    let rest = raw
        .strip_prefix('<')
        .ok_or_else(|| ParseError::BadPri(snippet(raw)))?;
    let close = rest
        .find('>')
        .ok_or_else(|| ParseError::BadPri(snippet(raw)))?;
    let digits = &rest[..close];
    if digits.is_empty() || digits.len() > 3 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return Err(ParseError::BadPri(snippet(raw)));
    }
    // RFC 5424 forbids leading zeros except for "0" itself.
    if digits.len() > 1 && digits.starts_with('0') {
        return Err(ParseError::BadPri(snippet(raw)));
    }
    let pri: u16 = digits
        .parse()
        .map_err(|_| ParseError::BadPri(snippet(raw)))?;
    Ok((decode_pri(pri)?, &rest[close + 1..]))
}

fn snippet(raw: &str) -> String {
    raw.chars().take(24).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_roundtrips_all_pri_values() {
        for pri in 0..=191u16 {
            let (f, s) = decode_pri(pri).unwrap();
            assert_eq!(encode_pri(f, s), pri);
        }
    }

    #[test]
    fn decode_rejects_out_of_range() {
        assert!(decode_pri(192).is_err());
        assert!(decode_pri(999).is_err());
    }

    #[test]
    fn pri_34_is_auth_critical() {
        let (f, s) = decode_pri(34).unwrap();
        assert_eq!(f, Facility::Auth);
        assert_eq!(s, Severity::Critical);
    }

    #[test]
    fn prefix_parse_returns_rest() {
        let ((f, s), rest) = parse_pri_prefix("<13>hello").unwrap();
        assert_eq!(f, Facility::User);
        assert_eq!(s, Severity::Notice);
        assert_eq!(rest, "hello");
    }

    #[test]
    fn prefix_parse_rejects_leading_zero() {
        assert!(parse_pri_prefix("<013>x").is_err());
    }

    #[test]
    fn prefix_parse_rejects_missing_bracket() {
        assert!(parse_pri_prefix("13>x").is_err());
        assert!(parse_pri_prefix("<13 x").is_err());
        assert!(parse_pri_prefix("<>x").is_err());
        assert!(parse_pri_prefix("<abc>x").is_err());
    }

    #[test]
    fn severity_ordering_matches_rfc() {
        assert!(Severity::Emergency < Severity::Debug);
        assert!(Severity::Warning.is_actionable());
        assert!(!Severity::Notice.is_actionable());
    }

    #[test]
    fn keywords_are_stable() {
        assert_eq!(Severity::Error.keyword(), "err");
        assert_eq!(Facility::AuthPriv.keyword(), "authpriv");
    }
}
