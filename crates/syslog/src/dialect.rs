//! Vendor / subsystem dialect detection.
//!
//! A heterogeneous test-bed mixes log emitters whose conventions differ
//! wildly: kernel ring-buffer messages, Slurm daemons, sshd, IPMI/BMC
//! firmware from several vendors, NVIDIA driver messages, and so on. The
//! paper's central difficulty — the same condition phrased differently per
//! vendor — starts here. Downstream crates use [`Dialect`] to group nodes
//! "per architecture" (§4.5.3 of the paper) and to model drift.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The emitting subsystem family, detected from the tag and message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dialect {
    /// Linux kernel ring-buffer messages (`kernel:`).
    Kernel,
    /// Slurm workload manager daemons (`slurmd`, `slurmctld`, `slurmstepd`).
    Slurm,
    /// OpenSSH daemon.
    Sshd,
    /// systemd and its units.
    Systemd,
    /// IPMI / BMC firmware (iDRAC, iLO, OpenBMC…).
    Ipmi,
    /// NVIDIA driver / GPU management messages.
    Nvidia,
    /// Authentication stack other than sshd (su, sudo, PAM).
    Auth,
    /// Network stack / NIC drivers.
    Network,
    /// Anything else.
    Other,
}

impl Dialect {
    /// All dialects, for enumeration in tests and generators.
    pub const ALL: [Dialect; 9] = [
        Dialect::Kernel,
        Dialect::Slurm,
        Dialect::Sshd,
        Dialect::Systemd,
        Dialect::Ipmi,
        Dialect::Nvidia,
        Dialect::Auth,
        Dialect::Network,
        Dialect::Other,
    ];

    /// A short stable name.
    pub fn name(self) -> &'static str {
        match self {
            Dialect::Kernel => "kernel",
            Dialect::Slurm => "slurm",
            Dialect::Sshd => "sshd",
            Dialect::Systemd => "systemd",
            Dialect::Ipmi => "ipmi",
            Dialect::Nvidia => "nvidia",
            Dialect::Auth => "auth",
            Dialect::Network => "network",
            Dialect::Other => "other",
        }
    }
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Detect the dialect from the app tag (preferred) and message text.
pub fn detect_dialect(app_name: Option<&str>, message: &str) -> Dialect {
    if let Some(tag) = app_name {
        let tag = tag.to_ascii_lowercase();
        if tag == "kernel" || tag == "kern" {
            // Kernel messages are further refined by content below.
            return refine_kernel(message);
        }
        if tag.starts_with("slurm") {
            return Dialect::Slurm;
        }
        if tag == "sshd" || tag == "ssh" {
            return Dialect::Sshd;
        }
        if tag == "systemd" || tag.starts_with("systemd-") {
            return Dialect::Systemd;
        }
        if tag.contains("ipmi") || tag == "bmc" || tag.contains("idrac") || tag.contains("ilo") {
            return Dialect::Ipmi;
        }
        if tag.contains("nvidia") || tag == "nvrm" || tag.contains("dcgm") {
            return Dialect::Nvidia;
        }
        if tag == "su" || tag == "sudo" || tag == "login" || tag.starts_with("pam") {
            return Dialect::Auth;
        }
        if tag.contains("network") || tag == "dhclient" || tag == "ntpd" || tag == "chronyd" {
            return Dialect::Network;
        }
    }
    refine_content(message)
}

fn refine_kernel(message: &str) -> Dialect {
    let lower = message.to_ascii_lowercase();
    if lower.contains("nvrm") || lower.contains("nvidia") {
        Dialect::Nvidia
    } else if lower.contains("eth") && (lower.contains("link") || lower.contains("nic")) {
        Dialect::Network
    } else {
        Dialect::Kernel
    }
}

fn refine_content(message: &str) -> Dialect {
    let lower = message.to_ascii_lowercase();
    if lower.contains("ipmi") || lower.contains("sel event") || lower.contains("sensor") {
        Dialect::Ipmi
    } else if lower.contains("slurm") {
        Dialect::Slurm
    } else if lower.contains("sshd") || lower.contains("preauth") {
        Dialect::Sshd
    } else if lower.contains("pam_unix") || lower.contains("session opened") {
        Dialect::Auth
    } else {
        Dialect::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_based_detection() {
        assert_eq!(detect_dialect(Some("slurmctld"), ""), Dialect::Slurm);
        assert_eq!(detect_dialect(Some("sshd"), ""), Dialect::Sshd);
        assert_eq!(detect_dialect(Some("systemd-logind"), ""), Dialect::Systemd);
        assert_eq!(detect_dialect(Some("ipmievd"), ""), Dialect::Ipmi);
        assert_eq!(detect_dialect(Some("sudo"), ""), Dialect::Auth);
        assert_eq!(detect_dialect(Some("chronyd"), ""), Dialect::Network);
    }

    #[test]
    fn kernel_refinement() {
        assert_eq!(
            detect_dialect(Some("kernel"), "NVRM: Xid (PCI:0000:3b:00): 79"),
            Dialect::Nvidia
        );
        assert_eq!(
            detect_dialect(Some("kernel"), "eth0: link down"),
            Dialect::Network
        );
        assert_eq!(
            detect_dialect(Some("kernel"), "CPU3: Core temperature above threshold"),
            Dialect::Kernel
        );
    }

    #[test]
    fn content_fallback() {
        assert_eq!(
            detect_dialect(None, "SEL event: Fan 3 lower critical going low"),
            Dialect::Ipmi
        );
        assert_eq!(
            detect_dialect(None, "slurm_rpc_node_registration"),
            Dialect::Slurm
        );
        assert_eq!(detect_dialect(None, "plain text"), Dialect::Other);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Dialect::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Dialect::ALL.len());
    }
}
