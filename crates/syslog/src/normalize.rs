//! Message normalization: mask the variable parts of a message so that two
//! frames describing the same condition on different nodes/devices compare
//! equal-ish.
//!
//! This is the preprocessing the paper's Levenshtein-bucketing baseline
//! (Background §3) implicitly relies on, and the reason a distance threshold
//! as low as 7 worked at all: most of the per-instance variation (node ids,
//! temperatures, PIDs, addresses) collapses into placeholder tokens before
//! the distance is computed.

use serde::{Deserialize, Serialize};

/// Controls which variable classes are masked by [`mask_variables`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NormalizeOptions {
    /// Replace hex literals (`0x1f3a`, `dead:beef::1`) with `<HEX>`.
    pub mask_hex: bool,
    /// Replace dotted-quad IPv4 addresses with `<IP>`.
    pub mask_ip: bool,
    /// Replace decimal runs with `<NUM>`.
    pub mask_numbers: bool,
    /// Replace file-system paths with `<PATH>`.
    pub mask_paths: bool,
    /// Lowercase the result.
    pub lowercase: bool,
}

impl Default for NormalizeOptions {
    fn default() -> Self {
        NormalizeOptions {
            mask_hex: true,
            mask_ip: true,
            mask_numbers: true,
            mask_paths: true,
            lowercase: true,
        }
    }
}

/// Normalize a message with default options.
pub fn normalize_message(message: &str) -> String {
    mask_variables(message, &NormalizeOptions::default())
}

/// Mask variable tokens in `message` according to `opts`.
///
/// Works token-by-token on whitespace splits, so placeholder substitution
/// never merges adjacent words. Unlike a regex pipeline, this is a single
/// pass with no backtracking — it is in the hot path of both bucketing and
/// feature extraction.
pub fn mask_variables(message: &str, opts: &NormalizeOptions) -> String {
    let mut out = String::with_capacity(message.len());
    let mut first = true;
    for token in message.split_whitespace() {
        if !first {
            out.push(' ');
        }
        first = false;
        // Already-masked placeholders pass through, making masking idempotent.
        if token.len() >= 3 && token.starts_with('<') && token.ends_with('>') {
            out.push_str(token);
            continue;
        }
        let masked = mask_token(token, opts);
        match masked {
            Some(placeholder) => out.push_str(placeholder),
            None => {
                if opts.lowercase {
                    for c in token.chars() {
                        out.extend(c.to_lowercase());
                    }
                } else {
                    out.push_str(token);
                }
            }
        }
    }
    out
}

/// Classify a token; `Some(placeholder)` when it should be masked.
fn mask_token(token: &str, opts: &NormalizeOptions) -> Option<&'static str> {
    // Strip common trailing punctuation for classification purposes only;
    // conservative: if we mask, the punctuation is dropped too. This matches
    // what bucketing wants ("temp: 95C," and "temp: 87C." should agree).
    let core =
        token.trim_matches(|c: char| matches!(c, ',' | '.' | ';' | ':' | ')' | '(' | ']' | '['));
    if core.is_empty() {
        return None;
    }
    if opts.mask_ip && is_ipv4(core) {
        return Some("<IP>");
    }
    if opts.mask_hex && is_hex_literal(core) {
        return Some("<HEX>");
    }
    if opts.mask_paths && core.len() > 1 && core.starts_with('/') {
        return Some("<PATH>");
    }
    if opts.mask_numbers && is_numeric_like(core) {
        return Some("<NUM>");
    }
    None
}

fn is_ipv4(s: &str) -> bool {
    let mut parts = 0;
    for part in s.split('.') {
        if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
        if part.parse::<u16>().map(|v| v > 255).unwrap_or(true) {
            return false;
        }
        parts += 1;
    }
    parts == 4
}

fn is_hex_literal(s: &str) -> bool {
    if let Some(body) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return !body.is_empty() && body.bytes().all(|b| b.is_ascii_hexdigit());
    }
    // Bare hex runs of >= 6 chars that contain at least one letter and one
    // digit (MAC fragments, UUIDs pieces) — avoids masking words like "deed".
    if s.len() >= 6
        && s.bytes()
            .all(|b| b.is_ascii_hexdigit() || b == b':' || b == b'-')
    {
        let has_digit = s.bytes().any(|b| b.is_ascii_digit());
        let has_alpha = s.bytes().any(|b| b.is_ascii_alphabetic());
        return has_digit && has_alpha;
    }
    false
}

/// Numbers with optional unit suffix (95C, 12ms, 4721, 1.5, 100Gbps).
fn is_numeric_like(s: &str) -> bool {
    let bytes = s.as_bytes();
    let signed = bytes[0] == b'-' && bytes.len() > 1;
    if !bytes[0].is_ascii_digit() && !signed {
        return false;
    }
    let mut digits = 0usize;
    let mut suffix = 0usize;
    for &b in bytes.iter().skip(if bytes[0] == b'-' { 1 } else { 0 }) {
        if b.is_ascii_digit() || b == b'.' {
            if suffix > 0 {
                return false; // digit after unit suffix: not a plain measurement
            }
            digits += 1;
        } else if b.is_ascii_alphabetic() || b == b'%' {
            suffix += 1;
            if suffix > 4 {
                return false;
            }
        } else {
            return false;
        }
    }
    digits > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_node_specific_parts() {
        let a = normalize_message("Warning: Socket 2 - CPU 23 throttling at 95C");
        let b = normalize_message("Warning: Socket 1 - CPU 7 throttling at 88C");
        assert_eq!(a, b);
        assert_eq!(a, "warning: socket <NUM> - cpu <NUM> throttling at <NUM>");
    }

    #[test]
    fn masks_ipv4() {
        assert_eq!(
            normalize_message("Connection from 192.168.1.45 closed"),
            "connection from <IP> closed"
        );
        // Octet out of range: not an IP, but still numeric-like.
        assert_eq!(normalize_message("999.1.1.1"), "<NUM>");
        assert_eq!(normalize_message("host 1.2.3.4.5 up"), "host <NUM> up");
    }

    #[test]
    fn masks_hex() {
        assert_eq!(normalize_message("fault at 0xDEADBEEF"), "fault at <HEX>");
        assert_eq!(normalize_message("mac 3c:fd:fe:12:34:56"), "mac <HEX>");
        // A word that happens to be hex letters only is kept.
        assert_eq!(normalize_message("decade added"), "decade added");
    }

    #[test]
    fn masks_paths() {
        assert_eq!(
            normalize_message("failed to open /var/log/messages now"),
            "failed to open <PATH> now"
        );
    }

    #[test]
    fn respects_disabled_options() {
        let opts = NormalizeOptions {
            mask_numbers: false,
            lowercase: false,
            ..NormalizeOptions::default()
        };
        assert_eq!(mask_variables("CPU 23 hot", &opts), "CPU 23 hot");
    }

    #[test]
    fn units_are_masked_with_value() {
        assert_eq!(
            normalize_message("took 12ms at 100% load"),
            "took <NUM> at <NUM> load"
        );
    }

    #[test]
    fn empty_and_whitespace() {
        assert_eq!(normalize_message(""), "");
        assert_eq!(normalize_message("   "), "");
    }

    #[test]
    fn trailing_punctuation_on_masked_token_is_dropped() {
        assert_eq!(normalize_message("temp: 95C,"), "temp: <NUM>");
    }
}
