//! The parsed syslog message representation shared across the workspace.

use crate::dialect::{detect_dialect, Dialect};
use crate::pri::{Facility, Severity};
use crate::timestamp::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Which grammar the frame was parsed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// RFC 3164 (legacy BSD syslog).
    Rfc3164,
    /// RFC 5424 (structured syslog).
    Rfc5424,
    /// Neither grammar matched; the raw text was captured as the message.
    FreeForm,
}

/// One structured-data element from an RFC 5424 frame, e.g.
/// `[exampleSDID@32473 iut="3" eventSource="Application"]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StructuredElement {
    /// The SD-ID (`exampleSDID@32473`).
    pub id: String,
    /// Parameter name → value, in stable order.
    pub params: BTreeMap<String, String>,
}

/// A parsed syslog message.
///
/// Fields that the originating format does not carry (e.g. `msg_id` for
/// RFC 3164) are `None`. The unparsed frame is always retained in `raw` so
/// that downstream consumers (edit-distance bucketing, LLM prompts) can work
/// on exactly what the wire carried.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyslogMessage {
    /// Grammar the frame matched.
    pub protocol: Protocol,
    /// Originating facility (default `User` when absent).
    pub facility: Facility,
    /// Severity (default `Notice` when absent).
    pub severity: Severity,
    /// Frame timestamp, if one was present and parseable.
    pub timestamp: Option<Timestamp>,
    /// Originating host, if present.
    pub hostname: Option<String>,
    /// Application / tag, if present.
    pub app_name: Option<String>,
    /// Process id (RFC 5424 PROCID or the 3164 `tag[pid]` bracket value).
    pub proc_id: Option<String>,
    /// RFC 5424 MSGID.
    pub msg_id: Option<String>,
    /// RFC 5424 structured data elements.
    pub structured_data: Vec<StructuredElement>,
    /// The free-text MSG part.
    pub message: String,
    /// The original frame exactly as received.
    pub raw: String,
}

impl SyslogMessage {
    /// Wrap unparseable input as a free-form message with default metadata.
    pub fn free_form(raw: &str) -> SyslogMessage {
        SyslogMessage {
            protocol: Protocol::FreeForm,
            facility: Facility::User,
            severity: Severity::Notice,
            timestamp: None,
            hostname: None,
            app_name: None,
            proc_id: None,
            msg_id: None,
            structured_data: Vec::new(),
            message: raw.to_string(),
            raw: raw.to_string(),
        }
    }

    /// Best-effort identification of the emitting subsystem.
    pub fn dialect(&self) -> Dialect {
        detect_dialect(self.app_name.as_deref(), &self.message)
    }

    /// The text most useful for classification: the free-text MSG plus any
    /// structured-data parameter values (vendors often hide the payload
    /// there).
    pub fn classification_text(&self) -> String {
        if self.structured_data.is_empty() {
            return self.message.clone();
        }
        let mut out = self.message.clone();
        for el in &self.structured_data {
            for value in el.params.values() {
                out.push(' ');
                out.push_str(value);
            }
        }
        out
    }

    /// Builder-style setter for the hostname.
    pub fn with_hostname(mut self, host: impl Into<String>) -> Self {
        self.hostname = Some(host.into());
        self
    }
}

impl fmt::Display for SyslogMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<{}>",
            crate::pri::encode_pri(self.facility, self.severity)
        )?;
        if let Some(ts) = &self.timestamp {
            write!(f, "{ts} ")?;
        }
        if let Some(h) = &self.hostname {
            write!(f, "{h} ")?;
        }
        if let Some(a) = &self.app_name {
            write!(f, "{a}")?;
            if let Some(p) = &self.proc_id {
                write!(f, "[{p}]")?;
            }
            write!(f, ": ")?;
        }
        f.write_str(&self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_form_retains_raw() {
        let m = SyslogMessage::free_form("odd vendor frame");
        assert_eq!(m.raw, "odd vendor frame");
        assert_eq!(m.message, "odd vendor frame");
        assert_eq!(m.protocol, Protocol::FreeForm);
    }

    #[test]
    fn classification_text_includes_sd_values() {
        let mut m = SyslogMessage::free_form("base");
        let mut params = BTreeMap::new();
        params.insert("reading".to_string(), "95C".to_string());
        m.structured_data.push(StructuredElement {
            id: "thermal@1".to_string(),
            params,
        });
        assert_eq!(m.classification_text(), "base 95C");
    }

    #[test]
    fn display_reconstructs_header() {
        let m = SyslogMessage {
            protocol: Protocol::Rfc3164,
            facility: Facility::Auth,
            severity: Severity::Critical,
            timestamp: None,
            hostname: Some("cn101".into()),
            app_name: Some("sshd".into()),
            proc_id: Some("4721".into()),
            msg_id: None,
            structured_data: vec![],
            message: "Failed password".into(),
            raw: String::new(),
        };
        assert_eq!(m.to_string(), "<34>cn101 sshd[4721]: Failed password");
    }

    #[test]
    fn serde_roundtrip() {
        let m = SyslogMessage::free_form("hello").with_hostname("n1");
        let json = serde_json::to_string(&m).unwrap();
        let back: SyslogMessage = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
