//! Minimal civil-time timestamp for syslog frames.
//!
//! Syslog needs only two grammars: the RFC 3164 `Mmm dd hh:mm:ss` form
//! (which has no year or zone) and the RFC 5424 ISO 8601 form. We carry a
//! plain civil datetime plus an optional UTC offset, and can convert to Unix
//! seconds for time-sharded storage. This avoids pulling a calendar crate
//! into the workspace for what is a few dozen lines of well-known math.

use crate::error::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed syslog timestamp.
///
/// RFC 3164 timestamps carry no year; callers that need absolute time fill
/// it in with [`Timestamp::with_year`] (collectors conventionally assume the
/// current year).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp {
    /// Calendar year; 0 means "unknown" (RFC 3164 frames).
    pub year: i32,
    /// Month, 1-12.
    pub month: u8,
    /// Day of month, 1-31.
    pub day: u8,
    /// Hour, 0-23.
    pub hour: u8,
    /// Minute, 0-59.
    pub minute: u8,
    /// Second, 0-59 (leap seconds are folded to 59).
    pub second: u8,
    /// Sub-second nanoseconds.
    pub nanos: u32,
    /// Offset from UTC in minutes, if the frame carried one.
    pub utc_offset_minutes: Option<i16>,
}

const MONTH_ABBREV: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

/// Parse exactly `n` ASCII digits at `b[i..i + n]`.
///
/// Operating on bytes (not `&str` slices) keeps the parsers panic-free on
/// multi-byte UTF-8 input: `&input[..3]` panics when byte 3 is not a char
/// boundary, and hostile frames do arrive mid-stream with non-ASCII bytes
/// in timestamp position.
fn digits(b: &[u8], i: usize, n: usize) -> Option<u32> {
    let slice = b.get(i..i + n)?;
    let mut value = 0u32;
    for &c in slice {
        if !c.is_ascii_digit() {
            return None;
        }
        value = value * 10 + (c - b'0') as u32;
    }
    Some(value)
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

impl Timestamp {
    /// Construct a timestamp, validating field ranges.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        year: i32,
        month: u8,
        day: u8,
        hour: u8,
        minute: u8,
        second: u8,
    ) -> Result<Timestamp, ParseError> {
        let ts = Timestamp {
            year,
            month,
            day,
            hour,
            minute,
            second,
            nanos: 0,
            utc_offset_minutes: None,
        };
        ts.validate()?;
        Ok(ts)
    }

    fn validate(&self) -> Result<(), ParseError> {
        let bad = |what: &str| -> ParseError { ParseError::BadTimestamp(what.to_string()) };
        if !(1..=12).contains(&self.month) {
            return Err(bad("month out of range"));
        }
        let year_for_len = if self.year == 0 { 2000 } else { self.year };
        if self.day == 0 || self.day > days_in_month(year_for_len, self.month) {
            return Err(bad("day out of range"));
        }
        if self.hour > 23 || self.minute > 59 || self.second > 59 {
            return Err(bad("time of day out of range"));
        }
        Ok(())
    }

    /// Return a copy with the year filled in (for RFC 3164 frames).
    pub fn with_year(mut self, year: i32) -> Timestamp {
        self.year = year;
        self
    }

    /// Seconds since the Unix epoch, treating a missing offset as UTC and a
    /// missing year as 2023 (the paper's collection year).
    pub fn unix_seconds(&self) -> i64 {
        let year = if self.year == 0 { 2023 } else { self.year };
        let days = days_from_civil(year, self.month, self.day);
        let mut secs =
            days * 86_400 + self.hour as i64 * 3_600 + self.minute as i64 * 60 + self.second as i64;
        if let Some(off) = self.utc_offset_minutes {
            secs -= off as i64 * 60;
        }
        secs
    }

    /// Parse an RFC 3164 `Mmm dd hh:mm:ss` timestamp, returning the
    /// remainder of the input after the (space-terminated) timestamp.
    pub fn parse_rfc3164(input: &str) -> Result<(Timestamp, &str), ParseError> {
        let bad = || ParseError::BadTimestamp(input.chars().take(20).collect());
        let b = input.as_bytes();
        if b.len() < 15 {
            return Err(bad());
        }
        let month = MONTH_ABBREV
            .iter()
            .position(|m| m.as_bytes() == &b[..3])
            .ok_or_else(bad)? as u8
            + 1;
        if b[3] != b' ' {
            return Err(bad());
        }
        // Day is space-padded: "Oct  5" or "Oct 15".
        let day: u8 = match (b[4], b[5]) {
            (b' ', u) if u.is_ascii_digit() => u - b'0',
            (t, u) if t.is_ascii_digit() && u.is_ascii_digit() => (t - b'0') * 10 + (u - b'0'),
            _ => return Err(bad()),
        };
        if b[6] != b' ' || b[9] != b':' || b[12] != b':' {
            return Err(bad());
        }
        let hour = digits(b, 7, 2).ok_or_else(bad)? as u8;
        let minute = digits(b, 10, 2).ok_or_else(bad)? as u8;
        let second = digits(b, 13, 2).ok_or_else(bad)? as u8;
        let ts = Timestamp::new(0, month, day, hour, minute, second)?;
        // Bytes 0..15 are all ASCII (validated above), so 15 is a char
        // boundary even when the remainder is multi-byte UTF-8.
        Ok((ts, &input[15..]))
    }

    /// Parse an RFC 5424 / ISO 8601 timestamp token (no trailing content).
    pub fn parse_rfc5424(token: &str) -> Result<Timestamp, ParseError> {
        let bad = || ParseError::BadTimestamp(token.chars().take(40).collect());
        // Minimal form: 2023-10-11T22:14:15Z  (20 chars)
        let b = token.as_bytes();
        if b.len() < 19 {
            return Err(bad());
        }
        if b[4] != b'-' || b[7] != b'-' || (b[10] != b'T' && b[10] != b't') {
            return Err(bad());
        }
        if b[13] != b':' || b[16] != b':' {
            return Err(bad());
        }
        let year = digits(b, 0, 4).ok_or_else(bad)? as i32;
        let month = digits(b, 5, 2).ok_or_else(bad)? as u8;
        let day = digits(b, 8, 2).ok_or_else(bad)? as u8;
        let hour = digits(b, 11, 2).ok_or_else(bad)? as u8;
        let minute = digits(b, 14, 2).ok_or_else(bad)? as u8;
        let second = digits(b, 17, 2).ok_or_else(bad)? as u8;
        let mut pos = 19;
        let mut nanos = 0u32;
        if b.get(pos) == Some(&b'.') {
            let frac_start = pos + 1;
            let mut frac_end = frac_start;
            while frac_end < b.len() && b[frac_end].is_ascii_digit() {
                frac_end += 1;
            }
            let width = frac_end - frac_start;
            if width == 0 || width > 9 {
                return Err(bad());
            }
            let frac = digits(b, frac_start, width).ok_or_else(bad)?;
            nanos = frac * 10u32.pow(9 - width as u32);
            pos = frac_end;
        }
        let offset = match b.get(pos) {
            None => None,
            Some(b'Z' | b'z') if pos + 1 == b.len() => Some(0i16),
            Some(&sign_byte @ (b'+' | b'-')) => {
                if b.len() != pos + 6 || b[pos + 3] != b':' {
                    return Err(bad());
                }
                let oh = digits(b, pos + 1, 2).ok_or_else(bad)? as i16;
                let om = digits(b, pos + 4, 2).ok_or_else(bad)? as i16;
                if oh > 23 || om > 59 {
                    return Err(bad());
                }
                let sign = if sign_byte == b'+' { 1i16 } else { -1i16 };
                Some(sign * (oh * 60 + om))
            }
            _ => return Err(bad()),
        };
        let mut ts = Timestamp::new(year, month, day, hour, minute, second)?;
        ts.nanos = nanos;
        ts.utc_offset_minutes = offset;
        Ok(ts)
    }

    /// Construct directly from Unix seconds (UTC).
    pub fn from_unix_seconds(secs: i64) -> Timestamp {
        // Inverse of days_from_civil (Hinnant's civil_from_days).
        let days = secs.div_euclid(86_400);
        let mut rem = secs.rem_euclid(86_400);
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
        let year = (if m <= 2 { y + 1 } else { y }) as i32;
        let hour = (rem / 3600) as u8;
        rem %= 3600;
        Timestamp {
            year,
            month: m,
            day: d,
            hour,
            minute: (rem / 60) as u8,
            second: (rem % 60) as u8,
            nanos: 0,
            utc_offset_minutes: Some(0),
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.year == 0 {
            write!(
                f,
                "{} {:2} {:02}:{:02}:{:02}",
                MONTH_ABBREV[(self.month - 1) as usize],
                self.day,
                self.hour,
                self.minute,
                self.second
            )
        } else {
            write!(
                f,
                "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}",
                self.year, self.month, self.day, self.hour, self.minute, self.second
            )?;
            // Narrowest fraction that round-trips the stored nanos through
            // parse_rfc5424 (truncating to milliseconds would silently lose
            // sub-millisecond precision).
            if self.nanos > 0 {
                if self.nanos.is_multiple_of(1_000_000) {
                    write!(f, ".{:03}", self.nanos / 1_000_000)?;
                } else if self.nanos.is_multiple_of(1_000) {
                    write!(f, ".{:06}", self.nanos / 1_000)?;
                } else {
                    write!(f, ".{:09}", self.nanos)?;
                }
            }
            match self.utc_offset_minutes {
                Some(0) => write!(f, "Z"),
                Some(off) => {
                    let sign = if off < 0 { '-' } else { '+' };
                    let a = off.abs();
                    write!(f, "{sign}{:02}:{:02}", a / 60, a % 60)
                }
                None => Ok(()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc3164_parses_padded_day() {
        let (ts, rest) = Timestamp::parse_rfc3164("Feb  5 17:32:18 host").unwrap();
        assert_eq!((ts.month, ts.day, ts.hour), (2, 5, 17));
        assert_eq!(rest, " host");
    }

    #[test]
    fn rfc3164_parses_two_digit_day() {
        let (ts, _) = Timestamp::parse_rfc3164("Oct 11 22:14:15 x").unwrap();
        assert_eq!((ts.month, ts.day), (10, 11));
        assert_eq!((ts.hour, ts.minute, ts.second), (22, 14, 15));
    }

    #[test]
    fn rfc3164_rejects_bad_month() {
        assert!(Timestamp::parse_rfc3164("Xxx 11 22:14:15 ").is_err());
    }

    #[test]
    fn rfc3164_rejects_short_input() {
        assert!(Timestamp::parse_rfc3164("Oct 11").is_err());
    }

    #[test]
    fn rfc5424_parses_utc() {
        let ts = Timestamp::parse_rfc5424("2023-10-11T22:14:15.003Z").unwrap();
        assert_eq!(ts.year, 2023);
        assert_eq!(ts.nanos, 3_000_000);
        assert_eq!(ts.utc_offset_minutes, Some(0));
    }

    #[test]
    fn rfc5424_parses_offset() {
        let ts = Timestamp::parse_rfc5424("2023-01-02T03:04:05-06:30").unwrap();
        assert_eq!(ts.utc_offset_minutes, Some(-390));
    }

    #[test]
    fn rfc5424_rejects_bad_offsets() {
        assert!(Timestamp::parse_rfc5424("2023-01-02T03:04:05+25:00").is_err());
        assert!(Timestamp::parse_rfc5424("2023-01-02T03:04:05+06").is_err());
        assert!(Timestamp::parse_rfc5424("2023-01-02 03:04:05Z").is_err());
    }

    #[test]
    fn unix_seconds_known_value() {
        // 2023-10-11T22:14:15Z
        let ts = Timestamp::parse_rfc5424("2023-10-11T22:14:15Z").unwrap();
        assert_eq!(ts.unix_seconds(), 1_697_062_455);
    }

    #[test]
    fn unix_roundtrip() {
        for &secs in &[0i64, 1_697_062_455, 951_782_400, 4_102_444_799] {
            let ts = Timestamp::from_unix_seconds(secs);
            assert_eq!(ts.unix_seconds(), secs, "roundtrip failed for {secs}");
        }
    }

    #[test]
    fn offset_shifts_epoch() {
        let utc = Timestamp::parse_rfc5424("2023-06-01T12:00:00Z").unwrap();
        let plus2 = Timestamp::parse_rfc5424("2023-06-01T14:00:00+02:00").unwrap();
        assert_eq!(utc.unix_seconds(), plus2.unix_seconds());
    }

    #[test]
    fn validates_calendar() {
        assert!(Timestamp::new(2023, 2, 29, 0, 0, 0).is_err());
        assert!(Timestamp::new(2024, 2, 29, 0, 0, 0).is_ok());
        assert!(Timestamp::new(2023, 13, 1, 0, 0, 0).is_err());
        assert!(Timestamp::new(2023, 4, 31, 0, 0, 0).is_err());
        assert!(Timestamp::new(2023, 1, 1, 24, 0, 0).is_err());
    }

    #[test]
    fn display_rfc3164_style_when_yearless() {
        let (ts, _) = Timestamp::parse_rfc3164("Oct  5 01:02:03 ").unwrap();
        assert_eq!(ts.to_string(), "Oct  5 01:02:03");
    }

    #[test]
    fn display_iso_when_dated() {
        let ts = Timestamp::parse_rfc5424("2023-10-11T22:14:15Z").unwrap();
        assert_eq!(ts.to_string(), "2023-10-11T22:14:15Z");
    }

    #[test]
    fn rfc3164_rejects_multibyte_input_without_panic() {
        // "é" is two bytes, putting a non-char-boundary at byte 3: the old
        // `&input[..3]` slicing panicked here and killed a parser worker.
        assert!(Timestamp::parse_rfc3164("ab\u{e9} 5 17:32:18 x").is_err());
        assert!(Timestamp::parse_rfc3164("\u{1F525}\u{1F525}\u{1F525}\u{1F525}").is_err());
        assert!(Timestamp::parse_rfc3164("Oct \u{e9}5 17:32:18 x").is_err());
        assert!(Timestamp::parse_rfc3164("Oct 11 22:14:1\u{e9} rest").is_err());
    }

    #[test]
    fn rfc3164_multibyte_after_timestamp_is_fine() {
        // Non-ASCII is only hostile inside the fixed-width timestamp; the
        // remainder may legitimately carry it (vendor hostnames do).
        let (ts, rest) = Timestamp::parse_rfc3164("Oct 11 22:14:15 h\u{f4}te").unwrap();
        assert_eq!((ts.month, ts.day), (10, 11));
        assert_eq!(rest, " h\u{f4}te");
    }

    #[test]
    fn rfc5424_rejects_multibyte_input_without_panic() {
        assert!(Timestamp::parse_rfc5424("202\u{e9}-10-11T22:14:15Z").is_err());
        assert!(Timestamp::parse_rfc5424("2023-10-11T22:14:15.1\u{e9}Z").is_err());
        assert!(Timestamp::parse_rfc5424("2023-10-11T22:14:15+0\u{e9}:00").is_err());
        assert!(Timestamp::parse_rfc5424("\u{1F525}\u{1F525}\u{1F525}\u{1F525}\u{1F525}").is_err());
    }

    #[test]
    fn display_roundtrips_sub_millisecond_nanos() {
        // Micro- and nanosecond precision must survive format → parse; the
        // old Display truncated everything to .{:03} milliseconds.
        for frac in ["003", "000250", "000000125", "123456789", "999"] {
            let text = format!("2023-10-11T22:14:15.{frac}Z");
            let ts = Timestamp::parse_rfc5424(&text).unwrap();
            let back = Timestamp::parse_rfc5424(&ts.to_string()).unwrap();
            assert_eq!(back.nanos, ts.nanos, "lost precision for .{frac}");
        }
        let ts = Timestamp::parse_rfc5424("2023-10-11T22:14:15.000250Z").unwrap();
        assert_eq!(ts.to_string(), "2023-10-11T22:14:15.000250Z");
    }
}
