//! Minimal civil-time timestamp for syslog frames.
//!
//! Syslog needs only two grammars: the RFC 3164 `Mmm dd hh:mm:ss` form
//! (which has no year or zone) and the RFC 5424 ISO 8601 form. We carry a
//! plain civil datetime plus an optional UTC offset, and can convert to Unix
//! seconds for time-sharded storage. This avoids pulling a calendar crate
//! into the workspace for what is a few dozen lines of well-known math.

use crate::error::ParseError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed syslog timestamp.
///
/// RFC 3164 timestamps carry no year; callers that need absolute time fill
/// it in with [`Timestamp::with_year`] (collectors conventionally assume the
/// current year).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp {
    /// Calendar year; 0 means "unknown" (RFC 3164 frames).
    pub year: i32,
    /// Month, 1-12.
    pub month: u8,
    /// Day of month, 1-31.
    pub day: u8,
    /// Hour, 0-23.
    pub hour: u8,
    /// Minute, 0-59.
    pub minute: u8,
    /// Second, 0-59 (leap seconds are folded to 59).
    pub second: u8,
    /// Sub-second nanoseconds.
    pub nanos: u32,
    /// Offset from UTC in minutes, if the frame carried one.
    pub utc_offset_minutes: Option<i16>,
}

const MONTH_ABBREV: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

impl Timestamp {
    /// Construct a timestamp, validating field ranges.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        year: i32,
        month: u8,
        day: u8,
        hour: u8,
        minute: u8,
        second: u8,
    ) -> Result<Timestamp, ParseError> {
        let ts = Timestamp {
            year,
            month,
            day,
            hour,
            minute,
            second,
            nanos: 0,
            utc_offset_minutes: None,
        };
        ts.validate()?;
        Ok(ts)
    }

    fn validate(&self) -> Result<(), ParseError> {
        let bad = |what: &str| -> ParseError { ParseError::BadTimestamp(what.to_string()) };
        if !(1..=12).contains(&self.month) {
            return Err(bad("month out of range"));
        }
        let year_for_len = if self.year == 0 { 2000 } else { self.year };
        if self.day == 0 || self.day > days_in_month(year_for_len, self.month) {
            return Err(bad("day out of range"));
        }
        if self.hour > 23 || self.minute > 59 || self.second > 59 {
            return Err(bad("time of day out of range"));
        }
        Ok(())
    }

    /// Return a copy with the year filled in (for RFC 3164 frames).
    pub fn with_year(mut self, year: i32) -> Timestamp {
        self.year = year;
        self
    }

    /// Seconds since the Unix epoch, treating a missing offset as UTC and a
    /// missing year as 2023 (the paper's collection year).
    pub fn unix_seconds(&self) -> i64 {
        let year = if self.year == 0 { 2023 } else { self.year };
        let days = days_from_civil(year, self.month, self.day);
        let mut secs =
            days * 86_400 + self.hour as i64 * 3_600 + self.minute as i64 * 60 + self.second as i64;
        if let Some(off) = self.utc_offset_minutes {
            secs -= off as i64 * 60;
        }
        secs
    }

    /// Parse an RFC 3164 `Mmm dd hh:mm:ss` timestamp, returning the
    /// remainder of the input after the (space-terminated) timestamp.
    pub fn parse_rfc3164(input: &str) -> Result<(Timestamp, &str), ParseError> {
        let bad = || ParseError::BadTimestamp(input.chars().take(20).collect());
        if input.len() < 15 {
            return Err(bad());
        }
        let month_str = &input[..3];
        let month = MONTH_ABBREV
            .iter()
            .position(|m| *m == month_str)
            .ok_or_else(bad)? as u8
            + 1;
        if input.as_bytes()[3] != b' ' {
            return Err(bad());
        }
        // Day is space-padded: "Oct  5" or "Oct 15".
        let day_str = input[4..6].trim_start();
        let day: u8 = day_str.parse().map_err(|_| bad())?;
        if input.as_bytes()[6] != b' ' {
            return Err(bad());
        }
        let time = &input[7..15];
        let tb = time.as_bytes();
        if tb[2] != b':' || tb[5] != b':' {
            return Err(bad());
        }
        let hour: u8 = time[..2].parse().map_err(|_| bad())?;
        let minute: u8 = time[3..5].parse().map_err(|_| bad())?;
        let second: u8 = time[6..8].parse().map_err(|_| bad())?;
        let ts = Timestamp::new(0, month, day, hour, minute, second)?;
        Ok((ts, &input[15..]))
    }

    /// Parse an RFC 5424 / ISO 8601 timestamp token (no trailing content).
    pub fn parse_rfc5424(token: &str) -> Result<Timestamp, ParseError> {
        let bad = || ParseError::BadTimestamp(token.chars().take(40).collect());
        // Minimal form: 2023-10-11T22:14:15Z  (20 chars)
        if token.len() < 19 {
            return Err(bad());
        }
        let b = token.as_bytes();
        if b[4] != b'-' || b[7] != b'-' || (b[10] != b'T' && b[10] != b't') {
            return Err(bad());
        }
        if b[13] != b':' || b[16] != b':' {
            return Err(bad());
        }
        let year: i32 = token[..4].parse().map_err(|_| bad())?;
        let month: u8 = token[5..7].parse().map_err(|_| bad())?;
        let day: u8 = token[8..10].parse().map_err(|_| bad())?;
        let hour: u8 = token[11..13].parse().map_err(|_| bad())?;
        let minute: u8 = token[14..16].parse().map_err(|_| bad())?;
        let second: u8 = token[17..19].parse().map_err(|_| bad())?;
        let mut rest = &token[19..];
        let mut nanos = 0u32;
        if rest.starts_with('.') {
            let frac_end = rest[1..]
                .find(|c: char| !c.is_ascii_digit())
                .map(|i| i + 1)
                .unwrap_or(rest.len());
            let frac = &rest[1..frac_end];
            if frac.is_empty() || frac.len() > 9 {
                return Err(bad());
            }
            let digits: u32 = frac.parse().map_err(|_| bad())?;
            nanos = digits * 10u32.pow(9 - frac.len() as u32);
            rest = &rest[frac_end..];
        }
        let offset = match rest {
            "Z" | "z" => Some(0i16),
            "" => None,
            _ => {
                let sign = match rest.as_bytes()[0] {
                    b'+' => 1i16,
                    b'-' => -1i16,
                    _ => return Err(bad()),
                };
                let ob = rest.as_bytes();
                if rest.len() != 6 || ob[3] != b':' {
                    return Err(bad());
                }
                let oh: i16 = rest[1..3].parse().map_err(|_| bad())?;
                let om: i16 = rest[4..6].parse().map_err(|_| bad())?;
                if oh > 23 || om > 59 {
                    return Err(bad());
                }
                Some(sign * (oh * 60 + om))
            }
        };
        let mut ts = Timestamp::new(year, month, day, hour, minute, second)?;
        ts.nanos = nanos;
        ts.utc_offset_minutes = offset;
        Ok(ts)
    }

    /// Construct directly from Unix seconds (UTC).
    pub fn from_unix_seconds(secs: i64) -> Timestamp {
        // Inverse of days_from_civil (Hinnant's civil_from_days).
        let days = secs.div_euclid(86_400);
        let mut rem = secs.rem_euclid(86_400);
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
        let year = (if m <= 2 { y + 1 } else { y }) as i32;
        let hour = (rem / 3600) as u8;
        rem %= 3600;
        Timestamp {
            year,
            month: m,
            day: d,
            hour,
            minute: (rem / 60) as u8,
            second: (rem % 60) as u8,
            nanos: 0,
            utc_offset_minutes: Some(0),
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.year == 0 {
            write!(
                f,
                "{} {:2} {:02}:{:02}:{:02}",
                MONTH_ABBREV[(self.month - 1) as usize],
                self.day,
                self.hour,
                self.minute,
                self.second
            )
        } else {
            write!(
                f,
                "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}",
                self.year, self.month, self.day, self.hour, self.minute, self.second
            )?;
            if self.nanos > 0 {
                write!(f, ".{:03}", self.nanos / 1_000_000)?;
            }
            match self.utc_offset_minutes {
                Some(0) => write!(f, "Z"),
                Some(off) => {
                    let sign = if off < 0 { '-' } else { '+' };
                    let a = off.abs();
                    write!(f, "{sign}{:02}:{:02}", a / 60, a % 60)
                }
                None => Ok(()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc3164_parses_padded_day() {
        let (ts, rest) = Timestamp::parse_rfc3164("Feb  5 17:32:18 host").unwrap();
        assert_eq!((ts.month, ts.day, ts.hour), (2, 5, 17));
        assert_eq!(rest, " host");
    }

    #[test]
    fn rfc3164_parses_two_digit_day() {
        let (ts, _) = Timestamp::parse_rfc3164("Oct 11 22:14:15 x").unwrap();
        assert_eq!((ts.month, ts.day), (10, 11));
        assert_eq!((ts.hour, ts.minute, ts.second), (22, 14, 15));
    }

    #[test]
    fn rfc3164_rejects_bad_month() {
        assert!(Timestamp::parse_rfc3164("Xxx 11 22:14:15 ").is_err());
    }

    #[test]
    fn rfc3164_rejects_short_input() {
        assert!(Timestamp::parse_rfc3164("Oct 11").is_err());
    }

    #[test]
    fn rfc5424_parses_utc() {
        let ts = Timestamp::parse_rfc5424("2023-10-11T22:14:15.003Z").unwrap();
        assert_eq!(ts.year, 2023);
        assert_eq!(ts.nanos, 3_000_000);
        assert_eq!(ts.utc_offset_minutes, Some(0));
    }

    #[test]
    fn rfc5424_parses_offset() {
        let ts = Timestamp::parse_rfc5424("2023-01-02T03:04:05-06:30").unwrap();
        assert_eq!(ts.utc_offset_minutes, Some(-390));
    }

    #[test]
    fn rfc5424_rejects_bad_offsets() {
        assert!(Timestamp::parse_rfc5424("2023-01-02T03:04:05+25:00").is_err());
        assert!(Timestamp::parse_rfc5424("2023-01-02T03:04:05+06").is_err());
        assert!(Timestamp::parse_rfc5424("2023-01-02 03:04:05Z").is_err());
    }

    #[test]
    fn unix_seconds_known_value() {
        // 2023-10-11T22:14:15Z
        let ts = Timestamp::parse_rfc5424("2023-10-11T22:14:15Z").unwrap();
        assert_eq!(ts.unix_seconds(), 1_697_062_455);
    }

    #[test]
    fn unix_roundtrip() {
        for &secs in &[0i64, 1_697_062_455, 951_782_400, 4_102_444_799] {
            let ts = Timestamp::from_unix_seconds(secs);
            assert_eq!(ts.unix_seconds(), secs, "roundtrip failed for {secs}");
        }
    }

    #[test]
    fn offset_shifts_epoch() {
        let utc = Timestamp::parse_rfc5424("2023-06-01T12:00:00Z").unwrap();
        let plus2 = Timestamp::parse_rfc5424("2023-06-01T14:00:00+02:00").unwrap();
        assert_eq!(utc.unix_seconds(), plus2.unix_seconds());
    }

    #[test]
    fn validates_calendar() {
        assert!(Timestamp::new(2023, 2, 29, 0, 0, 0).is_err());
        assert!(Timestamp::new(2024, 2, 29, 0, 0, 0).is_ok());
        assert!(Timestamp::new(2023, 13, 1, 0, 0, 0).is_err());
        assert!(Timestamp::new(2023, 4, 31, 0, 0, 0).is_err());
        assert!(Timestamp::new(2023, 1, 1, 24, 0, 0).is_err());
    }

    #[test]
    fn display_rfc3164_style_when_yearless() {
        let (ts, _) = Timestamp::parse_rfc3164("Oct  5 01:02:03 ").unwrap();
        assert_eq!(ts.to_string(), "Oct  5 01:02:03");
    }

    #[test]
    fn display_iso_when_dated() {
        let ts = Timestamp::parse_rfc5424("2023-10-11T22:14:15Z").unwrap();
        assert_eq!(ts.to_string(), "2023-10-11T22:14:15Z");
    }
}
