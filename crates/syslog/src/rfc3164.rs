//! RFC 3164 (legacy BSD) syslog parser.
//!
//! Grammar (loosely, because real emitters are loose):
//!
//! ```text
//! <PRI>TIMESTAMP HOSTNAME TAG[PID]: MSG
//! ```
//!
//! The TAG and PID are optional in practice; kernel messages on many distros
//! use `kernel:` with no pid, IPMI BMCs frequently omit the tag entirely.

use crate::error::ParseError;
use crate::message::{Protocol, SyslogMessage};
use crate::pri::parse_pri_prefix;
use crate::timestamp::Timestamp;

/// Parse a frame under the RFC 3164 grammar.
pub fn parse_rfc3164(raw: &str) -> Result<SyslogMessage, ParseError> {
    let ((facility, severity), rest) = parse_pri_prefix(raw)?;
    let (timestamp, rest) = Timestamp::parse_rfc3164(rest)?;
    let rest = rest
        .strip_prefix(' ')
        .ok_or(ParseError::MissingField("hostname"))?;

    let (hostname, rest) = take_token(rest).ok_or(ParseError::MissingField("hostname"))?;
    if !is_plausible_hostname(hostname) {
        return Err(ParseError::MissingField("hostname"));
    }
    let rest = rest.strip_prefix(' ').unwrap_or(rest);

    let (app_name, proc_id, message) = split_tag(rest);

    Ok(SyslogMessage {
        protocol: Protocol::Rfc3164,
        facility,
        severity,
        timestamp: Some(timestamp),
        hostname: Some(hostname.to_string()),
        app_name,
        proc_id,
        msg_id: None,
        structured_data: Vec::new(),
        message,
        raw: raw.to_string(),
    })
}

fn take_token(input: &str) -> Option<(&str, &str)> {
    if input.is_empty() {
        return None;
    }
    match input.find(' ') {
        Some(0) => None,
        Some(i) => Some((&input[..i], &input[i..])),
        None => Some((input, "")),
    }
}

fn is_plausible_hostname(token: &str) -> bool {
    !token.is_empty()
        && token.len() <= 255
        && token
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'.' || b == b'_')
}

/// Split `TAG[PID]: MSG` / `TAG: MSG` / bare `MSG`.
///
/// A tag is a short alphanumeric token terminated by `:` or `[`; anything
/// else means the content starts immediately (common for BMC firmware).
fn split_tag(rest: &str) -> (Option<String>, Option<String>, String) {
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() && i < 48 {
        let b = bytes[i];
        if b == b':' || b == b'[' {
            break;
        }
        if !(b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.' || b == b'/') {
            // Not a tag shape; treat everything as the message.
            return (None, None, rest.trim_start().to_string());
        }
        i += 1;
    }
    if i == 0 || i >= bytes.len() || i >= 48 {
        return (None, None, rest.trim_start().to_string());
    }
    let tag = &rest[..i];
    match bytes[i] {
        b':' => {
            let msg = rest[i + 1..].trim_start();
            (Some(tag.to_string()), None, msg.to_string())
        }
        b'[' => {
            let after = &rest[i + 1..];
            if let Some(close) = after.find(']') {
                let pid = &after[..close];
                let tail = &after[close + 1..];
                let msg = tail.strip_prefix(':').unwrap_or(tail).trim_start();
                if pid.bytes().all(|b| b.is_ascii_digit()) && !pid.is_empty() {
                    return (
                        Some(tag.to_string()),
                        Some(pid.to_string()),
                        msg.to_string(),
                    );
                }
            }
            (None, None, rest.trim_start().to_string())
        }
        _ => unreachable!("loop only breaks on ':' or '['"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pri::{Facility, Severity};

    #[test]
    fn classic_frame() {
        let m = parse_rfc3164("<34>Oct 11 22:14:15 mymachine su: 'su root' failed for lonvick")
            .unwrap();
        assert_eq!(m.facility, Facility::Auth);
        assert_eq!(m.severity, Severity::Critical);
        assert_eq!(m.hostname.as_deref(), Some("mymachine"));
        assert_eq!(m.app_name.as_deref(), Some("su"));
        assert_eq!(m.proc_id, None);
        assert_eq!(m.message, "'su root' failed for lonvick");
    }

    #[test]
    fn frame_with_pid() {
        let m =
            parse_rfc3164("<38>Feb  5 17:32:18 cn101 sshd[23541]: Accepted publickey for aquan")
                .unwrap();
        assert_eq!(m.app_name.as_deref(), Some("sshd"));
        assert_eq!(m.proc_id.as_deref(), Some("23541"));
        assert_eq!(m.message, "Accepted publickey for aquan");
    }

    #[test]
    fn kernel_frame_without_pid() {
        let m = parse_rfc3164("<6>Jun  9 10:00:00 gpu07 kernel: CPU3: Core temperature above threshold, cpu clock throttled").unwrap();
        assert_eq!(m.app_name.as_deref(), Some("kernel"));
        assert!(m.message.contains("throttled"));
    }

    #[test]
    fn tagless_bmc_frame() {
        let m = parse_rfc3164("<4>Jan 15 08:01:02 bmc-r3c7 Fan 4 speed below critical threshold")
            .unwrap();
        // "Fan 4 ..." cannot be split into TAG: — it has a space before any colon.
        assert_eq!(m.app_name, None);
        assert_eq!(m.message, "Fan 4 speed below critical threshold");
    }

    #[test]
    fn rejects_missing_timestamp() {
        assert!(parse_rfc3164("<34>no timestamp here").is_err());
    }

    #[test]
    fn rejects_missing_hostname() {
        assert!(parse_rfc3164("<34>Oct 11 22:14:15 ").is_err());
    }

    #[test]
    fn rejects_hostname_with_bad_bytes() {
        assert!(parse_rfc3164("<34>Oct 11 22:14:15 host!name msg").is_err());
    }

    #[test]
    fn bracketed_nonnumeric_pid_is_message() {
        let m = parse_rfc3164("<34>Oct 11 22:14:15 h1 tag[abc]: body").unwrap();
        assert_eq!(m.app_name, None);
        assert_eq!(m.message, "tag[abc]: body");
    }

    #[test]
    fn raw_is_preserved() {
        let raw = "<34>Oct 11 22:14:15 h1 app: body";
        assert_eq!(parse_rfc3164(raw).unwrap().raw, raw);
    }
}
