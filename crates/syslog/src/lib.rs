//! Syslog message model and parsers for heterogeneous test-bed clusters.
//!
//! This crate is the lowest-level substrate of the `hetsyslog` workspace: it
//! defines the wire-level representation of a syslog message and parsers for
//! the two formats actually seen on real clusters — the legacy BSD format
//! ([RFC 3164]) and the modern structured format ([RFC 5424]) — plus a
//! best-effort fallback for the many vendor messages that follow neither.
//!
//! Heterogeneous test-beds such as LANL's Darwin cluster mix hardware from
//! many vendors, and each vendor's firmware emits syslog with its own quirks.
//! The [`dialect`] module provides lightweight detection of the originating
//! subsystem (IPMI/BMC, kernel, slurmd, sshd, …) which downstream crates use
//! to model that heterogeneity.
//!
//! [RFC 3164]: https://www.rfc-editor.org/rfc/rfc3164
//! [RFC 5424]: https://www.rfc-editor.org/rfc/rfc5424
//!
//! # Example
//!
//! ```
//! use syslog_model::{parse, Severity, Facility};
//!
//! let m = parse("<34>Oct 11 22:14:15 cn101 sshd[4721]: Failed password for root").unwrap();
//! assert_eq!(m.severity, Severity::Critical);
//! assert_eq!(m.facility, Facility::Auth);
//! assert_eq!(m.hostname.as_deref(), Some("cn101"));
//! assert_eq!(m.app_name.as_deref(), Some("sshd"));
//! assert_eq!(m.proc_id.as_deref(), Some("4721"));
//! assert!(m.message.starts_with("Failed password"));
//! ```

pub mod dialect;
pub mod error;
pub mod framing;
pub mod message;
pub mod normalize;
pub mod pri;
pub mod rfc3164;
pub mod rfc5424;
pub mod timestamp;

pub use dialect::{detect_dialect, Dialect};
pub use error::ParseError;
pub use framing::{find_byte_scalar, find_byte_swar, split_stream, FrameDecoder};
pub use message::{Protocol, SyslogMessage};
pub use normalize::{mask_variables, normalize_message, NormalizeOptions};
pub use pri::{Facility, Severity};
pub use timestamp::Timestamp;

/// Parse a raw syslog frame, trying RFC 5424 first, then RFC 3164, then a
/// permissive free-form fallback that never fails on valid UTF-8 input.
///
/// This mirrors how a real collector (e.g. Fluentd's syslog input) handles a
/// heterogeneous stream: structured messages are parsed precisely, and
/// anything else is still captured with whatever metadata can be salvaged.
pub fn parse(raw: &str) -> Result<SyslogMessage, ParseError> {
    if raw.is_empty() {
        return Err(ParseError::Empty);
    }
    if let Ok(m) = rfc5424::parse_rfc5424(raw) {
        return Ok(m);
    }
    if let Ok(m) = rfc3164::parse_rfc3164(raw) {
        return Ok(m);
    }
    Ok(message::SyslogMessage::free_form(raw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_prefers_rfc5424() {
        let m = parse(
            "<165>1 2023-10-11T22:14:15.003Z cn12 ipmid 812 TH01 - CPU1 temp above threshold",
        )
        .unwrap();
        assert_eq!(m.protocol, Protocol::Rfc5424);
        assert_eq!(m.msg_id.as_deref(), Some("TH01"));
    }

    #[test]
    fn parse_falls_back_to_rfc3164() {
        let m = parse(
            "<13>Feb  5 17:32:18 gpu-node04 kernel: usb 1-1: new high-speed USB device number 5",
        )
        .unwrap();
        assert_eq!(m.protocol, Protocol::Rfc3164);
        assert_eq!(m.app_name.as_deref(), Some("kernel"));
    }

    #[test]
    fn parse_never_fails_on_nonempty_garbage() {
        let m = parse("completely unstructured vendor gibberish !!").unwrap();
        assert_eq!(m.protocol, Protocol::FreeForm);
        assert_eq!(m.message, "completely unstructured vendor gibberish !!");
    }

    #[test]
    fn parse_rejects_empty() {
        assert!(matches!(parse(""), Err(ParseError::Empty)));
    }
}
