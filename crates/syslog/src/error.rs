//! Parse errors for syslog frames.

use std::fmt;

/// Why a syslog frame could not be parsed under a particular RFC grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input was empty.
    Empty,
    /// The `<PRI>` header was missing or malformed.
    BadPri(String),
    /// The PRI value exceeded the maximum (191 = facility 23, severity 7).
    PriOutOfRange(u16),
    /// The timestamp did not match the expected grammar.
    BadTimestamp(String),
    /// The RFC 5424 version field was not `1`.
    BadVersion(String),
    /// Structured data was malformed (unterminated element, bad escapes…).
    BadStructuredData(String),
    /// A required header field was missing.
    MissingField(&'static str),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty syslog frame"),
            ParseError::BadPri(s) => write!(f, "malformed PRI header: {s:?}"),
            ParseError::PriOutOfRange(v) => write!(f, "PRI value {v} out of range (max 191)"),
            ParseError::BadTimestamp(s) => write!(f, "malformed timestamp: {s:?}"),
            ParseError::BadVersion(s) => write!(f, "unsupported syslog version: {s:?}"),
            ParseError::BadStructuredData(s) => write!(f, "malformed structured data: {s:?}"),
            ParseError::MissingField(name) => write!(f, "missing required field: {name}"),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParseError::PriOutOfRange(500);
        assert!(e.to_string().contains("500"));
        let e = ParseError::MissingField("hostname");
        assert!(e.to_string().contains("hostname"));
    }
}
