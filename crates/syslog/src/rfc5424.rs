//! RFC 5424 (structured) syslog parser.
//!
//! Grammar:
//!
//! ```text
//! <PRI>VERSION SP TIMESTAMP SP HOSTNAME SP APP-NAME SP PROCID SP MSGID SP STRUCTURED-DATA [SP MSG]
//! ```
//!
//! The nil value `-` is accepted for every header field, and structured data
//! supports the three escape sequences the RFC defines (`\"`, `\\`, `\]`).

use crate::error::ParseError;
use crate::message::{Protocol, StructuredElement, SyslogMessage};
use crate::pri::parse_pri_prefix;
use crate::timestamp::Timestamp;
use std::collections::BTreeMap;

/// Parse a frame under the RFC 5424 grammar.
pub fn parse_rfc5424(raw: &str) -> Result<SyslogMessage, ParseError> {
    let ((facility, severity), rest) = parse_pri_prefix(raw)?;

    // VERSION: must be "1" followed by a space.
    let rest = rest
        .strip_prefix('1')
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| ParseError::BadVersion(rest.chars().take(8).collect()))?;

    let (ts_token, rest) = next_field(rest).ok_or(ParseError::MissingField("timestamp"))?;
    let timestamp = if ts_token == "-" {
        None
    } else {
        Some(Timestamp::parse_rfc5424(ts_token)?)
    };

    let (host, rest) = next_field(rest).ok_or(ParseError::MissingField("hostname"))?;
    let (app, rest) = next_field(rest).ok_or(ParseError::MissingField("app-name"))?;
    let (procid, rest) = next_field(rest).ok_or(ParseError::MissingField("procid"))?;
    let (msgid, rest) = next_field(rest).ok_or(ParseError::MissingField("msgid"))?;

    let (structured_data, rest) = parse_structured_data(rest)?;

    let msg = rest.strip_prefix(' ').unwrap_or(rest);
    // RFC 5424 allows a BOM before MSG.
    let message = msg.strip_prefix('\u{FEFF}').unwrap_or(msg).to_string();

    Ok(SyslogMessage {
        protocol: Protocol::Rfc5424,
        facility,
        severity,
        timestamp,
        hostname: nil_opt(host),
        app_name: nil_opt(app),
        proc_id: nil_opt(procid),
        msg_id: nil_opt(msgid),
        structured_data,
        message,
        raw: raw.to_string(),
    })
}

fn next_field(input: &str) -> Option<(&str, &str)> {
    if input.is_empty() {
        return None;
    }
    match input.find(' ') {
        Some(0) => None,
        Some(i) => Some((&input[..i], &input[i + 1..])),
        None => Some((input, "")),
    }
}

fn nil_opt(field: &str) -> Option<String> {
    if field == "-" {
        None
    } else {
        Some(field.to_string())
    }
}

/// Parse STRUCTURED-DATA, which is either `-` or one or more `[...]`
/// elements. Returns the elements and the remaining input (starting at the
/// SP before MSG, if any).
fn parse_structured_data(input: &str) -> Result<(Vec<StructuredElement>, &str), ParseError> {
    if let Some(rest) = input.strip_prefix('-') {
        return Ok((Vec::new(), rest));
    }
    let bad = |what: &str| ParseError::BadStructuredData(what.to_string());
    let mut elements = Vec::new();
    let mut rest = input;
    while rest.starts_with('[') {
        let (element, tail) = parse_sd_element(rest)?;
        elements.push(element);
        rest = tail;
    }
    if elements.is_empty() {
        return Err(bad("expected '-' or '['"));
    }
    Ok((elements, rest))
}

fn parse_sd_element(input: &str) -> Result<(StructuredElement, &str), ParseError> {
    let bad = |what: &str| ParseError::BadStructuredData(what.to_string());
    let mut rest = input.strip_prefix('[').ok_or_else(|| bad("missing '['"))?;

    let id_end = rest
        .find([' ', ']'])
        .ok_or_else(|| bad("unterminated SD element"))?;
    if id_end == 0 {
        return Err(bad("empty SD-ID"));
    }
    let id = rest[..id_end].to_string();
    rest = &rest[id_end..];

    let mut params = BTreeMap::new();
    loop {
        if let Some(tail) = rest.strip_prefix(']') {
            return Ok((StructuredElement { id, params }, tail));
        }
        rest = rest
            .strip_prefix(' ')
            .ok_or_else(|| bad("expected SP or ']'"))?;
        let eq = rest.find('=').ok_or_else(|| bad("param missing '='"))?;
        let name = rest[..eq].to_string();
        if name.is_empty() {
            return Err(bad("empty param name"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| bad("param value must be quoted"))?;
        let (value, tail) = parse_quoted_value(rest)?;
        params.insert(name, value);
        rest = tail;
    }
}

/// Parse a PARAM-VALUE after the opening quote, handling the RFC escapes.
fn parse_quoted_value(input: &str) -> Result<(String, &str), ParseError> {
    let mut value = String::new();
    let mut chars = input.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((value, &input[i + 1..])),
            '\\' => match chars.next() {
                Some((_, esc @ ('"' | '\\' | ']'))) => value.push(esc),
                Some((_, other)) => {
                    // RFC: receiver MAY accept unrecognized escapes literally.
                    value.push('\\');
                    value.push(other);
                }
                None => {
                    return Err(ParseError::BadStructuredData(
                        "dangling escape in param value".to_string(),
                    ))
                }
            },
            _ => value.push(c),
        }
    }
    Err(ParseError::BadStructuredData(
        "unterminated param value".to_string(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pri::{Facility, Severity};

    #[test]
    fn full_frame() {
        let raw = "<165>1 2003-10-11T22:14:15.003Z mymachine.example.com evntslog 812 ID47 [exampleSDID@32473 iut=\"3\" eventSource=\"Application\" eventID=\"1011\"] An application event log entry";
        let m = parse_rfc5424(raw).unwrap();
        assert_eq!(m.facility, Facility::Local4);
        assert_eq!(m.severity, Severity::Notice);
        assert_eq!(m.hostname.as_deref(), Some("mymachine.example.com"));
        assert_eq!(m.app_name.as_deref(), Some("evntslog"));
        assert_eq!(m.proc_id.as_deref(), Some("812"));
        assert_eq!(m.msg_id.as_deref(), Some("ID47"));
        assert_eq!(m.structured_data.len(), 1);
        assert_eq!(m.structured_data[0].params["eventID"], "1011");
        assert_eq!(m.message, "An application event log entry");
    }

    #[test]
    fn nil_fields() {
        let m = parse_rfc5424("<34>1 - - - - - - body").unwrap();
        assert!(m.timestamp.is_none());
        assert!(m.hostname.is_none());
        assert!(m.app_name.is_none());
        assert_eq!(m.message, "body");
    }

    #[test]
    fn multiple_sd_elements() {
        let m = parse_rfc5424("<34>1 - h a p m [a@1 x=\"1\"][b@2 y=\"2\"] msg").unwrap();
        assert_eq!(m.structured_data.len(), 2);
        assert_eq!(m.structured_data[1].id, "b@2");
    }

    #[test]
    fn empty_message_allowed() {
        let m = parse_rfc5424("<34>1 - h a p m -").unwrap();
        assert_eq!(m.message, "");
    }

    #[test]
    fn escaped_values() {
        let m = parse_rfc5424(r#"<34>1 - h a p m [x@1 v="say \"hi\" \] \\ done"] b"#).unwrap();
        assert_eq!(m.structured_data[0].params["v"], r#"say "hi" ] \ done"#);
    }

    #[test]
    fn rejects_version_2() {
        assert!(parse_rfc5424("<34>2 - h a p m - msg").is_err());
    }

    #[test]
    fn rejects_unterminated_sd() {
        assert!(parse_rfc5424("<34>1 - h a p m [x@1 v=\"oops msg").is_err());
        assert!(parse_rfc5424("<34>1 - h a p m [x@1 v=unquoted] msg").is_err());
    }

    #[test]
    fn rejects_bad_timestamp() {
        assert!(parse_rfc5424("<34>1 yesterday h a p m - msg").is_err());
    }
}
