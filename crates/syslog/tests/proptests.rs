//! Property-based tests for the syslog parsers: the top-level `parse` must
//! never panic, and structured round-trips must hold.

use proptest::prelude::*;
use syslog_model::pri::{decode_pri, encode_pri};
use syslog_model::{mask_variables, parse, FrameDecoder, NormalizeOptions, Timestamp};

proptest! {
    /// The permissive entry point must accept any non-empty string without
    /// panicking and must preserve the raw frame.
    #[test]
    fn parse_never_panics(raw in ".{1,400}") {
        if let Ok(m) = parse(&raw) {
            prop_assert_eq!(m.raw, raw);
        }
    }

    /// PRI encode/decode is a bijection on the valid range.
    #[test]
    fn pri_bijection(pri in 0u16..=191) {
        let (f, s) = decode_pri(pri).unwrap();
        prop_assert_eq!(encode_pri(f, s), pri);
    }

    /// Unix-seconds conversion round-trips through civil time.
    #[test]
    fn timestamp_unix_roundtrip(secs in 0i64..=4_102_444_799) {
        let ts = Timestamp::from_unix_seconds(secs);
        prop_assert_eq!(ts.unix_seconds(), secs);
    }

    /// Masking is idempotent: masking an already-masked message changes
    /// nothing.
    #[test]
    fn masking_idempotent(msg in "[ -~]{0,200}") {
        let opts = NormalizeOptions::default();
        let once = mask_variables(&msg, &opts);
        let twice = mask_variables(&once, &opts);
        prop_assert_eq!(once, twice);
    }

    /// Masking never increases the number of whitespace-separated tokens.
    #[test]
    fn masking_preserves_token_count(msg in "[ -~]{0,200}") {
        let masked = mask_variables(&msg, &NormalizeOptions::default());
        prop_assert_eq!(
            masked.split_whitespace().count(),
            msg.split_whitespace().count()
        );
    }

    /// RFC 5424 timestamps we format are re-parseable.
    #[test]
    fn rfc5424_timestamp_roundtrip(secs in 0i64..=4_102_444_799) {
        let ts = Timestamp::from_unix_seconds(secs);
        let formatted = ts.to_string();
        let back = Timestamp::parse_rfc5424(&formatted).unwrap();
        prop_assert_eq!(back.unix_seconds(), secs);
    }

    /// Octet-counted framing round-trips arbitrary frame payloads through
    /// arbitrary chunking of the byte stream.
    #[test]
    fn octet_framing_roundtrip(
        payloads in proptest::collection::vec("<[0-9]{1,3}>[ -~]{1,60}", 1..8),
        chunk in 1usize..32,
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(format!("{} {p}", p.len()).as_bytes());
        }
        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for piece in wire.chunks(chunk) {
            frames.extend(decoder.push(piece));
        }
        if let Some(tail) = decoder.finish() {
            frames.push(tail);
        }
        prop_assert_eq!(frames, payloads);
        prop_assert_eq!(decoder.dropped(), 0);
    }

    /// Non-transparent framing round-trips any LF-free line set.
    #[test]
    fn lf_framing_roundtrip(
        payloads in proptest::collection::vec("<[0-9]{1,3}>[!-~][ -~]{0,50}[!-~]", 1..8),
        chunk in 1usize..32,
    ) {
        let wire: String = payloads.iter().map(|p| format!("{p}\n")).collect();
        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for piece in wire.as_bytes().chunks(chunk) {
            frames.extend(decoder.push(piece));
        }
        prop_assert_eq!(frames, payloads);
    }
}

proptest! {
    /// Arbitrary byte soup — including invalid UTF-8 — through the frame
    /// decoder and parser: no panics, every emitted frame is non-empty,
    /// and the emitted + pending + dropped accounting is conserved at
    /// every step.
    #[test]
    fn decoder_and_parser_survive_byte_soup(
        soup in proptest::collection::vec(0u8..=255u8, 0..2048),
        chunk in 1usize..64,
    ) {
        let mut decoder = FrameDecoder::new();
        let mut emitted = 0u64;
        for piece in soup.chunks(chunk) {
            for frame in decoder.push(piece) {
                emitted += 1;
                prop_assert!(!frame.is_empty());
                // The permissive parser must absorb whatever the decoder
                // emits (lossy UTF-8 conversions included) without panic.
                let _ = parse(&frame);
            }
        }
        let pending_before = decoder.pending();
        let dropped_before = decoder.dropped();
        let mut tail_flushed = 0u64;
        if let Some(tail) = decoder.finish() {
            emitted += 1;
            tail_flushed = 1;
            prop_assert!(!tail.is_empty());
            let _ = parse(&tail);
        }
        // finish() consumes the buffer entirely: a pending tail either
        // became at most one frame, was counted as a dropped count token,
        // or was pure whitespace/framing residue — never silently retained.
        prop_assert_eq!(decoder.pending(), 0);
        let tail_dropped = decoder.dropped() - dropped_before;
        prop_assert!(tail_flushed + tail_dropped <= 1);
        if pending_before == 0 {
            prop_assert_eq!(tail_flushed + tail_dropped, 0);
        }
        // A second finish is a no-op.
        prop_assert_eq!(decoder.finish(), None);
        let _ = emitted;
    }

    /// Timestamp parsers never panic on arbitrary bytes (lossy-converted),
    /// multi-byte UTF-8 included.
    #[test]
    fn timestamp_parsers_survive_byte_soup(
        soup in proptest::collection::vec(0u8..=255u8, 0..64),
    ) {
        let text = String::from_utf8_lossy(&soup).into_owned();
        let _ = Timestamp::parse_rfc3164(&text);
        let _ = Timestamp::parse_rfc5424(&text);
    }

    /// Embedded NULs and multi-kilobyte single tokens pass through octet
    /// framing and the parser intact.
    #[test]
    fn parse_survives_nul_and_giant_tokens(
        repeat in 1usize..10_000,
        byte in 1u8..=255u8,
    ) {
        let mut msg = String::from("<13>Oct 11 22:14:15 cn01 app: \0");
        let filler = char::from(byte);
        for _ in 0..repeat.min(10_000) {
            msg.push(filler);
        }
        let _ = parse(&msg);
        // Round-trip through octet-counted framing: the frame is opaque
        // payload bytes, so NULs and size must survive exactly.
        let mut decoder = FrameDecoder::new();
        let wire = format!("{} {msg}", msg.len());
        let frames = decoder.push(wire.as_bytes());
        prop_assert_eq!(frames, vec![msg]);
        prop_assert_eq!(decoder.pending(), 0);
    }
}
