//! Property-based tests for the syslog parsers: the top-level `parse` must
//! never panic, and structured round-trips must hold.

use proptest::prelude::*;
use syslog_model::pri::{decode_pri, encode_pri};
use syslog_model::{
    find_byte_scalar, find_byte_swar, mask_variables, parse, FrameDecoder, NormalizeOptions,
    Timestamp,
};

/// Drive the same chunked byte stream through the SWAR decoder and the
/// scalar oracle, asserting byte-exact agreement at every step: emitted
/// frames, buffered bytes, drop accounting, and the flushed tail.
fn assert_swar_scalar_parity(wire: &[u8], chunk: usize) -> Result<(), TestCaseError> {
    let mut swar = FrameDecoder::new();
    let mut scalar = FrameDecoder::scalar_oracle();
    for piece in wire.chunks(chunk.max(1)) {
        prop_assert_eq!(swar.push(piece), scalar.push(piece));
        prop_assert_eq!(swar.pending(), scalar.pending());
        prop_assert_eq!(swar.dropped(), scalar.dropped());
    }
    prop_assert_eq!(swar.finish(), scalar.finish());
    prop_assert_eq!(swar.dropped(), scalar.dropped());
    Ok(())
}

proptest! {
    /// The permissive entry point must accept any non-empty string without
    /// panicking and must preserve the raw frame.
    #[test]
    fn parse_never_panics(raw in ".{1,400}") {
        if let Ok(m) = parse(&raw) {
            prop_assert_eq!(m.raw, raw);
        }
    }

    /// PRI encode/decode is a bijection on the valid range.
    #[test]
    fn pri_bijection(pri in 0u16..=191) {
        let (f, s) = decode_pri(pri).unwrap();
        prop_assert_eq!(encode_pri(f, s), pri);
    }

    /// Unix-seconds conversion round-trips through civil time.
    #[test]
    fn timestamp_unix_roundtrip(secs in 0i64..=4_102_444_799) {
        let ts = Timestamp::from_unix_seconds(secs);
        prop_assert_eq!(ts.unix_seconds(), secs);
    }

    /// Masking is idempotent: masking an already-masked message changes
    /// nothing.
    #[test]
    fn masking_idempotent(msg in "[ -~]{0,200}") {
        let opts = NormalizeOptions::default();
        let once = mask_variables(&msg, &opts);
        let twice = mask_variables(&once, &opts);
        prop_assert_eq!(once, twice);
    }

    /// Masking never increases the number of whitespace-separated tokens.
    #[test]
    fn masking_preserves_token_count(msg in "[ -~]{0,200}") {
        let masked = mask_variables(&msg, &NormalizeOptions::default());
        prop_assert_eq!(
            masked.split_whitespace().count(),
            msg.split_whitespace().count()
        );
    }

    /// RFC 5424 timestamps we format are re-parseable.
    #[test]
    fn rfc5424_timestamp_roundtrip(secs in 0i64..=4_102_444_799) {
        let ts = Timestamp::from_unix_seconds(secs);
        let formatted = ts.to_string();
        let back = Timestamp::parse_rfc5424(&formatted).unwrap();
        prop_assert_eq!(back.unix_seconds(), secs);
    }

    /// Octet-counted framing round-trips arbitrary frame payloads through
    /// arbitrary chunking of the byte stream.
    #[test]
    fn octet_framing_roundtrip(
        payloads in proptest::collection::vec("<[0-9]{1,3}>[ -~]{1,60}", 1..8),
        chunk in 1usize..32,
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(format!("{} {p}", p.len()).as_bytes());
        }
        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for piece in wire.chunks(chunk) {
            frames.extend(decoder.push(piece));
        }
        if let Some(tail) = decoder.finish() {
            frames.push(tail);
        }
        prop_assert_eq!(frames, payloads);
        prop_assert_eq!(decoder.dropped(), 0);
    }

    /// Non-transparent framing round-trips any LF-free line set.
    #[test]
    fn lf_framing_roundtrip(
        payloads in proptest::collection::vec("<[0-9]{1,3}>[!-~][ -~]{0,50}[!-~]", 1..8),
        chunk in 1usize..32,
    ) {
        let wire: String = payloads.iter().map(|p| format!("{p}\n")).collect();
        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for piece in wire.as_bytes().chunks(chunk) {
            frames.extend(decoder.push(piece));
        }
        prop_assert_eq!(frames, payloads);
    }
}

proptest! {
    /// Arbitrary byte soup — including invalid UTF-8 — through the frame
    /// decoder and parser: no panics, every emitted frame is non-empty,
    /// and the emitted + pending + dropped accounting is conserved at
    /// every step.
    #[test]
    fn decoder_and_parser_survive_byte_soup(
        soup in proptest::collection::vec(0u8..=255u8, 0..2048),
        chunk in 1usize..64,
    ) {
        let mut decoder = FrameDecoder::new();
        let mut emitted = 0u64;
        for piece in soup.chunks(chunk) {
            for frame in decoder.push(piece) {
                emitted += 1;
                prop_assert!(!frame.is_empty());
                // The permissive parser must absorb whatever the decoder
                // emits (lossy UTF-8 conversions included) without panic.
                let _ = parse(&frame);
            }
        }
        let pending_before = decoder.pending();
        let dropped_before = decoder.dropped();
        let mut tail_flushed = 0u64;
        if let Some(tail) = decoder.finish() {
            emitted += 1;
            tail_flushed = 1;
            prop_assert!(!tail.is_empty());
            let _ = parse(&tail);
        }
        // finish() consumes the buffer entirely: a pending tail either
        // became at most one frame, was counted as a dropped count token,
        // or was pure whitespace/framing residue — never silently retained.
        prop_assert_eq!(decoder.pending(), 0);
        let tail_dropped = decoder.dropped() - dropped_before;
        prop_assert!(tail_flushed + tail_dropped <= 1);
        if pending_before == 0 {
            prop_assert_eq!(tail_flushed + tail_dropped, 0);
        }
        // A second finish is a no-op.
        prop_assert_eq!(decoder.finish(), None);
        let _ = emitted;
    }

    /// SWAR boundary scanner vs the naive byte loop: identical on
    /// arbitrary haystack/needle pairs, including needles absent, repeated,
    /// and sitting in high-bit bytes.
    #[test]
    fn swar_find_byte_matches_scalar(
        hay in proptest::collection::vec(0u8..=255u8, 0..128),
        needle in 0u8..=255u8,
    ) {
        prop_assert_eq!(find_byte_swar(&hay, needle), find_byte_scalar(&hay, needle));
    }

    /// SWAR vs scalar framing on arbitrary byte soup (invalid UTF-8, NULs,
    /// digit runs, embedded LFs) under arbitrary chunking: same frames,
    /// same pending bytes, same dead-letter (dropped) accounting.
    #[test]
    fn swar_framing_parity_on_byte_soup(
        soup in proptest::collection::vec(0u8..=255u8, 0..2048),
        chunk in 1usize..64,
    ) {
        assert_swar_scalar_parity(&soup, chunk)?;
    }

    /// Parity on adversarial structured wire: octet-counted frames whose
    /// `LEN ` headers split across pushes, blank-line floods, corrupt
    /// counts, and NUL-bearing payloads — the inputs where the boundary
    /// scan actually steers framing decisions.
    #[test]
    fn swar_framing_parity_on_hostile_wire(
        payloads in proptest::collection::vec("[ -~]{1,80}", 1..8),
        blanks in 0usize..300,
        corrupt in 0u8..2,
        chunk in 1usize..8,
    ) {
        let corrupt = corrupt == 1;
        let mut wire = Vec::new();
        wire.extend(std::iter::repeat_n(b'\n', blanks));
        for (k, p) in payloads.iter().enumerate() {
            match k % 3 {
                // Octet-counted; the tiny chunk size splits its header.
                0 => wire.extend_from_slice(format!("{} {p}", p.len()).as_bytes()),
                // LF-framed with a NUL spliced in.
                1 => {
                    wire.extend_from_slice(p.as_bytes());
                    wire.push(0);
                    wire.push(b'\n');
                }
                // CRLF-framed.
                _ => wire.extend_from_slice(format!("{p}\r\n").as_bytes()),
            }
            if corrupt {
                wire.extend_from_slice(b"999999 ");
            }
        }
        assert_swar_scalar_parity(&wire, chunk)?;
    }

    /// Timestamp parsers never panic on arbitrary bytes (lossy-converted),
    /// multi-byte UTF-8 included.
    #[test]
    fn timestamp_parsers_survive_byte_soup(
        soup in proptest::collection::vec(0u8..=255u8, 0..64),
    ) {
        let text = String::from_utf8_lossy(&soup).into_owned();
        let _ = Timestamp::parse_rfc3164(&text);
        let _ = Timestamp::parse_rfc5424(&text);
    }

    /// Embedded NULs and multi-kilobyte single tokens pass through octet
    /// framing and the parser intact.
    #[test]
    fn parse_survives_nul_and_giant_tokens(
        repeat in 1usize..10_000,
        byte in 1u8..=255u8,
    ) {
        let mut msg = String::from("<13>Oct 11 22:14:15 cn01 app: \0");
        let filler = char::from(byte);
        for _ in 0..repeat.min(10_000) {
            msg.push(filler);
        }
        let _ = parse(&msg);
        // Round-trip through octet-counted framing: the frame is opaque
        // payload bytes, so NULs and size must survive exactly.
        let mut decoder = FrameDecoder::new();
        let wire = format!("{} {msg}", msg.len());
        let frames = decoder.push(wire.as_bytes());
        prop_assert_eq!(frames, vec![msg]);
        prop_assert_eq!(decoder.pending(), 0);
    }
}
