//! Property-based tests for the syslog parsers: the top-level `parse` must
//! never panic, and structured round-trips must hold.

use proptest::prelude::*;
use syslog_model::pri::{decode_pri, encode_pri};
use syslog_model::{mask_variables, parse, FrameDecoder, NormalizeOptions, Timestamp};

proptest! {
    /// The permissive entry point must accept any non-empty string without
    /// panicking and must preserve the raw frame.
    #[test]
    fn parse_never_panics(raw in ".{1,400}") {
        if let Ok(m) = parse(&raw) {
            prop_assert_eq!(m.raw, raw);
        }
    }

    /// PRI encode/decode is a bijection on the valid range.
    #[test]
    fn pri_bijection(pri in 0u16..=191) {
        let (f, s) = decode_pri(pri).unwrap();
        prop_assert_eq!(encode_pri(f, s), pri);
    }

    /// Unix-seconds conversion round-trips through civil time.
    #[test]
    fn timestamp_unix_roundtrip(secs in 0i64..=4_102_444_799) {
        let ts = Timestamp::from_unix_seconds(secs);
        prop_assert_eq!(ts.unix_seconds(), secs);
    }

    /// Masking is idempotent: masking an already-masked message changes
    /// nothing.
    #[test]
    fn masking_idempotent(msg in "[ -~]{0,200}") {
        let opts = NormalizeOptions::default();
        let once = mask_variables(&msg, &opts);
        let twice = mask_variables(&once, &opts);
        prop_assert_eq!(once, twice);
    }

    /// Masking never increases the number of whitespace-separated tokens.
    #[test]
    fn masking_preserves_token_count(msg in "[ -~]{0,200}") {
        let masked = mask_variables(&msg, &NormalizeOptions::default());
        prop_assert_eq!(
            masked.split_whitespace().count(),
            msg.split_whitespace().count()
        );
    }

    /// RFC 5424 timestamps we format are re-parseable.
    #[test]
    fn rfc5424_timestamp_roundtrip(secs in 0i64..=4_102_444_799) {
        let ts = Timestamp::from_unix_seconds(secs);
        let formatted = ts.to_string();
        let back = Timestamp::parse_rfc5424(&formatted).unwrap();
        prop_assert_eq!(back.unix_seconds(), secs);
    }

    /// Octet-counted framing round-trips arbitrary frame payloads through
    /// arbitrary chunking of the byte stream.
    #[test]
    fn octet_framing_roundtrip(
        payloads in proptest::collection::vec("<[0-9]{1,3}>[ -~]{1,60}", 1..8),
        chunk in 1usize..32,
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(format!("{} {p}", p.len()).as_bytes());
        }
        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for piece in wire.chunks(chunk) {
            frames.extend(decoder.push(piece));
        }
        if let Some(tail) = decoder.finish() {
            frames.push(tail);
        }
        prop_assert_eq!(frames, payloads);
        prop_assert_eq!(decoder.dropped(), 0);
    }

    /// Non-transparent framing round-trips any LF-free line set.
    #[test]
    fn lf_framing_roundtrip(
        payloads in proptest::collection::vec("<[0-9]{1,3}>[!-~][ -~]{0,50}[!-~]", 1..8),
        chunk in 1usize..32,
    ) {
        let wire: String = payloads.iter().map(|p| format!("{p}\n")).collect();
        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for piece in wire.as_bytes().chunks(chunk) {
            frames.extend(decoder.push(piece));
        }
        prop_assert_eq!(frames, payloads);
    }
}
